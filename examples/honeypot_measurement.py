#!/usr/bin/env python
"""Honeypot instrumentation from scratch (Section 4).

Shows the measurement methodology without the Study orchestrator:
build a platform and population directly, stand up a single reciprocity
service, register empty and lived-in honeypots for its follow service,
and measure reciprocation and the lived-in effect by hand.

Run with:  python examples/honeypot_measurement.py
"""

from repro.aas.services import make_boostgram
from repro.behavior import (
    OrganicActivityDriver,
    OrganicPopulation,
    PopulationConfig,
    ReciprocityModel,
    ReciprocityParams,
)
from repro.behavior.degree import DegreeDistribution
from repro.honeypot import HoneypotFramework, ReciprocationExperiment
from repro.netsim import ASNRegistry, NetworkFabric
from repro.platform import InstagramPlatform
from repro.platform.models import ActionType
from repro.util import SeedSequenceFactory
from repro.util.timeutils import days


def main(population_size: int = 400, run_days: int = 3) -> None:
    seeds = SeedSequenceFactory(404)
    platform = InstagramPlatform()
    registry = ASNRegistry()
    fabric = NetworkFabric(registry, seeds.get("fabric"))

    print("Synthesizing an organic population...")
    population = OrganicPopulation.generate(
        platform,
        fabric,
        seeds.get("population"),
        PopulationConfig(size=population_size, out_degree=DegreeDistribution(median=15.0, sigma=1.0)),
    )
    print(
        f"  {len(population)} accounts, median out-degree "
        f"{population.median_out_degree:.0f}, median in-degree "
        f"{population.median_in_degree:.0f}"
    )

    print("\nStanding up one reciprocity-abuse service (Boostgram)...")
    service = make_boostgram(
        platform, fabric, seeds.get("service"), list(population.account_ids), budget_scale=0.4
    )
    organic = OrganicActivityDriver(
        platform,
        population,
        ReciprocityModel(ReciprocityParams(), seeds.get("reciprocity")),
        seeds.get("organic"),
    )

    print("Registering honeypots: 4 empty + 1 lived-in, follow service only...")
    framework = HoneypotFramework(platform, fabric, seeds.get("honeypots"))
    for _ in range(5):
        framework.create_inactive()  # the attribution baseline
    experiment = ReciprocationExperiment(
        framework,
        seeds.get("experiment"),
        high_profile_pool=population.account_ids[:20],
    )
    experiment.register_batch(service, ActionType.FOLLOW, empty=4, lived_in=1)

    print(f"Running the trial period ({run_days} days)...")
    for _ in range(days(run_days)):
        service.tick()
        organic.tick()
        platform.clock.advance(1)

    print(f"\nAttribution baseline quiet: {framework.baseline_is_quiet()}")
    print("Reciprocation measured from honeypot inbound actions:")
    for result in experiment.results():
        print(
            f"  {result.kind.value:<9} outbound follows={result.outbound_count:4d}  "
            f"follow-back rate={result.follow_ratio:6.1%}  "
            f"like-back rate={result.like_ratio:6.1%}"
        )
    print(
        "\n(Expect follow-back rates near the paper's 10-16% band, zero"
        "\nlike-backs, and the lived-in account at or above the empties.)"
    )

    print("\nCleaning up: deleting honeypots scrubs their platform footprint.")
    deleted = experiment.teardown() + framework.delete_all()
    print(f"  deleted {deleted} honeypot accounts")


if __name__ == "__main__":
    main()
