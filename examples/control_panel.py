#!/usr/bin/env python
"""A textual rendering of an AAS customer control panel (paper Figure 1).

The paper's Figure 1 is a screenshot of Instalex's per-account control
panel showing cumulative action counts performed on Instagram. This
example enrolls a customer, runs the automation for a few days, and
renders the equivalent panel from the service's own records.

Run with:  python examples/control_panel.py
"""

from repro.aas.services import make_instalex
from repro.behavior import (
    OrganicActivityDriver,
    OrganicPopulation,
    PopulationConfig,
    ReciprocityModel,
    ReciprocityParams,
)
from repro.behavior.degree import DegreeDistribution
from repro.netsim import ASNRegistry, NetworkFabric
from repro.platform import InstagramPlatform
from repro.platform.models import ActionStatus, ActionType
from repro.util import SeedSequenceFactory
from repro.util.tables import format_table
from repro.util.timeutils import days


def main(population_size: int = 350, run_days: int = 4) -> None:
    seeds = SeedSequenceFactory(1)
    platform = InstagramPlatform()
    fabric = NetworkFabric(ASNRegistry(), seeds.get("fabric"))
    population = OrganicPopulation.generate(
        platform,
        fabric,
        seeds.get("population"),
        PopulationConfig(size=population_size, out_degree=DegreeDistribution(median=14.0)),
    )
    service = make_instalex(
        platform, fabric, seeds.get("svc"), list(population.account_ids), budget_scale=0.4
    )
    organic = OrganicActivityDriver(
        platform,
        population,
        ReciprocityModel(ReciprocityParams(), seeds.get("m")),
        seeds.get("o"),
    )

    customer = platform.create_account("photo_hopeful", "hunter2")
    for _ in range(8):
        platform.media.create(customer.account_id, 0)
    service.register_customer(
        "photo_hopeful",
        "hunter2",
        {ActionType.LIKE, ActionType.FOLLOW, ActionType.UNFOLLOW},
        trial_ticks=days(7),
    )

    print(f"Running the Instalex trial for {run_days} days...\n")
    for _ in range(days(run_days)):
        service.tick()
        organic.tick()
        platform.clock.advance(1)

    outbound = platform.log.by_actor(customer.account_id)
    counts = {t: 0 for t in ActionType}
    for record in outbound:
        if record.status is not ActionStatus.BLOCKED:
            counts[record.action_type] += 1
    inbound = platform.log.inbound(customer.account_id)
    followers = platform.follower_count(customer.account_id)
    engagement = platform.engagement_rate(customer.account_id)

    print(
        format_table(
            ["metric", "value"],
            [
                ["account", "@photo_hopeful"],
                ["plan", "trial (7 days)"],
                ["likes performed", counts[ActionType.LIKE]],
                ["follows performed", counts[ActionType.FOLLOW]],
                ["unfollows performed", counts[ActionType.UNFOLLOW]],
                ["comments performed", counts[ActionType.COMMENT]],
                ["new inbound actions", len(inbound)],
                ["followers now", followers],
                ["engagement rate", f"{engagement:.2f}" if engagement else "n/a"],
            ],
            title="Instalex control panel — @photo_hopeful",
        )
    )
    print("\n(Compare with the paper's Figure 1 screenshot: the panel is the")
    print("service bragging about the actions it performed on your behalf.)")


if __name__ == "__main__":
    main()
