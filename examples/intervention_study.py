#!/usr/bin/env python
"""Intervention experiments: blocking vs delayed removal (Section 6).

Reproduces the paper's central defensive finding at example scale:

* a *synchronous block* is visible to the service — it detects the
  blocks, drops below the activity threshold, and probes it thereafter;
* a *delayed removal* undoes the same actions a day later but gives the
  service nothing to detect, so it keeps operating (and keeps losing
  its product) indefinitely.

Run with:  python examples/intervention_study.py
"""

from repro.core import Study, StudyConfig
from repro.core import experiments as E
from repro.core import reporting as R
from repro.core.study import INSTA_STAR
from repro.interventions.experiment import BroadInterventionPlan, NarrowInterventionPlan
from repro.platform.models import ActionStatus, ActionType


def main(
    config: StudyConfig | None = None,
    measurement_days: int = 6,
    narrow_days: int = 14,
    delay_days: int = 6,
    block_days: int = 8,
    calibration_days: int = 5,
) -> None:
    print("Building the world and measurement pipeline...")
    study = Study(config if config is not None else StudyConfig.tiny(seed=6))
    study.run_honeypot_phase()
    study.learn_signatures()
    study.run_measurement(days_=measurement_days)

    print("\nNarrow intervention: one block bin, one delay bin, one control")
    narrow = study.run_narrow_intervention(
        NarrowInterventionPlan(duration_days=narrow_days), calibration_days=calibration_days
    )
    print(f"  thresholds frozen over {len(narrow.thresholds)} (ASN, action) pairs")
    print()
    print(R.render_fig5(E.fig5_median_follows(narrow, service=INSTA_STAR)))

    removed = sum(
        1
        for activity in narrow.attributed.values()
        for record in activity.records
        if record.status is ActionStatus.REMOVED
    )
    blocked = sum(
        1
        for activity in narrow.attributed.values()
        for record in activity.records
        if record.status is ActionStatus.BLOCKED
    )
    print(f"\n  blocked actions: {blocked}; silently removed follows: {removed}")
    print("  -> both truncate abuse to the threshold; only blocking is visible")

    print("\nBroad intervention: 90% delayed removal, then 90% blocking")
    broad = study.run_broad_intervention(
        BroadInterventionPlan(delay_days=delay_days, block_days=block_days),
        calibration_days=calibration_days,
    )
    print()
    print(R.render_fig7(E.fig7_broad_follows(broad, service=INSTA_STAR)))
    print(
        "\n  The delay week passes without any service reaction; the switch"
        "\n  to blocking is detected within a day and treated accounts"
        "\n  scale back — the paper's argument for deferred interventions."
    )


if __name__ == "__main__":
    main()
