#!/usr/bin/env python
"""Intervention experiments: blocking vs delayed removal (Section 6).

Reproduces the paper's central defensive finding at example scale:

* a *synchronous block* is visible to the service — it detects the
  blocks, drops below the activity threshold, and probes it thereafter;
* a *delayed removal* undoes the same actions a day later but gives the
  service nothing to detect, so it keeps operating (and keeps losing
  its product) indefinitely.

Run with:  python examples/intervention_study.py

Multi-seed mode replicates the experiment across seeds with the
:mod:`repro.fleet` runner — the narrow and broad arms of one seed share
a world snapshot, so each seed pays for its honeypot phase once:

    python examples/intervention_study.py --seeds 6,7,8 --workers 2
"""

from repro.core import Study, StudyConfig
from repro.core import experiments as E
from repro.core import reporting as R
from repro.core.study import INSTA_STAR
from repro.interventions.experiment import BroadInterventionPlan, NarrowInterventionPlan
from repro.platform.models import ActionStatus, ActionType


def main(
    config: StudyConfig | None = None,
    measurement_days: int = 6,
    narrow_days: int = 14,
    delay_days: int = 6,
    block_days: int = 8,
    calibration_days: int = 5,
) -> None:
    print("Building the world and measurement pipeline...")
    study = Study(config if config is not None else StudyConfig.tiny(seed=6))
    study.run_honeypot_phase()
    study.learn_signatures()
    study.run_measurement(days_=measurement_days)

    print("\nNarrow intervention: one block bin, one delay bin, one control")
    narrow = study.run_narrow_intervention(
        NarrowInterventionPlan(duration_days=narrow_days), calibration_days=calibration_days
    )
    print(f"  thresholds frozen over {len(narrow.thresholds)} (ASN, action) pairs")
    print()
    print(R.render_fig5(E.fig5_median_follows(narrow, service=INSTA_STAR)))

    removed = sum(
        1
        for activity in narrow.attributed.values()
        for record in activity.records
        if record.status is ActionStatus.REMOVED
    )
    blocked = sum(
        1
        for activity in narrow.attributed.values()
        for record in activity.records
        if record.status is ActionStatus.BLOCKED
    )
    print(f"\n  blocked actions: {blocked}; silently removed follows: {removed}")
    print("  -> both truncate abuse to the threshold; only blocking is visible")

    print("\nBroad intervention: 90% delayed removal, then 90% blocking")
    broad = study.run_broad_intervention(
        BroadInterventionPlan(delay_days=delay_days, block_days=block_days),
        calibration_days=calibration_days,
    )
    print()
    print(R.render_fig7(E.fig7_broad_follows(broad, service=INSTA_STAR)))
    print(
        "\n  The delay week passes without any service reaction; the switch"
        "\n  to blocking is detected within a day and treated accounts"
        "\n  scale back — the paper's argument for deferred interventions."
    )


def main_fleet(
    seeds: list[int],
    workers: int = 1,
    measurement_days: int = 6,
    narrow_days: int = 14,
    delay_days: int = 6,
    block_days: int = 8,
    calibration_days: int = 5,
) -> None:
    """The same experiment replicated across seeds via repro.fleet.

    Each seed contributes two replicas — a narrow arm and a broad arm —
    that share one prefix snapshot (world + honeypot phase + learned
    signatures), so the expensive setup runs once per seed no matter how
    many arms fork from it.
    """
    from repro.fleet import FleetRunner, ReplicaSpec

    specs = []
    for seed in seeds:
        config = StudyConfig.tiny(seed=seed)
        specs.append(
            ReplicaSpec(
                name=f"seed-{seed}/narrow",
                config=config,
                arm="narrow",
                arm_options=(
                    ("measurement_days", measurement_days),
                    ("narrow_days", narrow_days),
                    ("calibration_days", calibration_days),
                ),
            )
        )
        specs.append(
            ReplicaSpec(
                name=f"seed-{seed}/broad",
                config=config,
                arm="broad",
                arm_options=(
                    ("measurement_days", measurement_days),
                    ("delay_days", delay_days),
                    ("block_days", block_days),
                    ("calibration_days", calibration_days),
                ),
            )
        )
    result = FleetRunner(workers=workers).run(specs)
    print(
        f"Fleet: {len(result.replicas)} replicas, "
        f"{result.prefix_groups} prefix group(s), "
        f"{result.prefix_builds} build(s), "
        f"{result.build_cost_avoided_frac:.0%} of prefix builds avoided"
    )
    for replica in result.replicas:
        print(f"\n=== {replica.name} ===")
        figure = replica.payload.get("fig5") or replica.payload.get("fig7")
        print(figure)
        print(
            f"  blocked actions: {replica.payload['blocked_actions']}; "
            f"removed: {replica.payload['removed_actions']}"
        )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds",
        type=str,
        default="",
        help="comma-separated seeds; runs the fleet mode (default: single seed 6)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="fleet worker processes (fleet mode only)"
    )
    cli_args = parser.parse_args()
    if cli_args.seeds:
        seed_list = [int(part) for part in cli_args.seeds.split(",") if part.strip()]
        main_fleet(seed_list, workers=cli_args.workers)
    else:
        main()
