#!/usr/bin/env python
"""Inside a collusion network (Sections 3.2, 5.2).

Drives Hublaagram directly: enrolls member accounts, exercises the free
tier (with its rate limits and pop-under ads), buys the paid products
(no-outbound fee, one-time like package, monthly tier), and then runs
the paper's revenue-estimation model against the observable activity —
comparing it with the service's ground-truth ledger.

Run with:  python examples/collusion_network_demo.py
"""

from repro.aas.base import ServiceType
from repro.aas.services import make_hublaagram
from repro.analysis.revenue import estimate_hublaagram_revenue
from repro.detection.classifier import AttributedActivity
from repro.netsim import ASNRegistry, NetworkFabric
from repro.platform import InstagramPlatform
from repro.platform.models import ActionType
from repro.util import SeedSequenceFactory


def main(member_count: int = 40, run_hours: int = 48) -> None:
    seeds = SeedSequenceFactory(77)
    platform = InstagramPlatform()
    fabric = NetworkFabric(ASNRegistry(), seeds.get("fabric"))
    service = make_hublaagram(platform, fabric, seeds.get("service"), quantity_scale=0.1)

    print(f"Enrolling {member_count} member accounts (credentials handed to the service)...")
    members = []
    for i in range(member_count):
        account = platform.create_account(f"member{i:02d}", f"pw{i:02d}")
        for _ in range(5):
            platform.media.create(account.account_id, 0)
        service.register_customer(
            f"member{i:02d}", f"pw{i:02d}", {ActionType.LIKE, ActionType.FOLLOW},
            trial_ticks=24 * 30,
        )
        members.append(account)

    print("\nFree tier: two requests per hour, ads on every visit")
    requester = members[0]
    order = service.request_free_service(requester.account_id, ActionType.LIKE)
    print(f"  free order: {order.quantity} likes (scaled from the paper's ~80)")
    print(f"  third request this hour: {service.request_free_service(requester.account_id, ActionType.LIKE)}")
    print(f"  ad impressions so far: {service.ads.impressions}")

    print("\nPaid products:")
    service.purchase_no_outbound(members[1].account_id)
    print("  member01 paid the $15 lifetime no-outbound fee")
    package = service.config.catalog.one_time_packages[0]
    media = platform.media.media_of(members[2].account_id)[0]
    service.purchase_one_time_likes(members[2].account_id, package, media.media_id)
    print(f"  member02 bought {package.likes} one-time likes (${package.cost_cents/100:.0f})")
    tier = service.config.catalog.monthly_tiers[1]
    service.purchase_monthly_plan(members[3].account_id, tier)
    print(
        f"  member03 subscribed to the {tier.likes_low}-{tier.likes_high}"
        f" likes/photo monthly tier (${tier.cost_cents/100:.0f})"
    )

    print(f"\nRunning the network for {run_hours} hours...")
    for _ in range(run_hours):
        service.tick()
        platform.clock.advance(1)

    print(f"  delivered inbound likes to member00: "
          f"{sum(1 for r in platform.log.inbound(requester.account_id) if r.action_type is ActionType.LIKE)}")
    print(f"  one-time post now has {platform.media.like_count(media.media_id)} likes")
    protected_outbound = platform.log.by_actor(members[1].account_id)
    print(f"  no-outbound member01 sourced {len(protected_outbound)} actions (should be 0)")

    print("\nRevenue estimation from observable activity (paper Section 5.2):")
    activity = AttributedActivity(
        service="Hublaagram",
        service_type=ServiceType.COLLUSION_NETWORK,
        records=list(platform.log),
    )
    estimate = estimate_hublaagram_revenue(
        activity,
        service.config.catalog,
        free_like_ceiling_per_hour=service.config.free_like_ceiling_per_hour,
        likes_per_free_request=service.config.likes_per_free_request,
        follows_per_free_request=service.config.follows_per_free_request,
        window_days=2,
    )
    print(f"  estimated no-outbound accounts: {estimate.no_outbound_accounts}")
    print(f"  estimated monthly-tier accounts: {estimate.monthly_tier_accounts}")
    print(f"  estimated ad impressions: {estimate.ad_impressions}")
    print(f"  ground-truth ledger: ${service.ledger.total_cents()/100:.2f} "
          f"({len(service.ledger)} payments)")


if __name__ == "__main__":
    main()
