#!/usr/bin/env python
"""The epilogue arms race (paper Section 6.4).

After the formal experiments, the paper's blocking countermeasure
stayed active for months. The services detected it, moved their like
traffic to new ASNs — one standing up "an extensive proxy network to
drastically increase IP diversity" — and Hublaagram, unable to keep
delivering its paid product, listed everything as "out of stock".

This example runs both sides of that arms race:

* without defender re-learning, the services escape the frozen
  signatures (coverage drops);
* with the defender folding newly-observed infrastructure back in,
  coverage stays high and Hublaagram's business collapses.

Run with:  python examples/epilogue_arms_race.py   (takes ~a minute)
"""

import dataclasses

from repro.core import Study, StudyConfig
from repro.platform.models import ActionType


def build_study(seed: int, config: StudyConfig | None = None, measurement_days: int = 5) -> Study:
    if config is None:
        config = StudyConfig.tiny(seed=seed)
    config = dataclasses.replace(
        config,
        enable_migration=True,
        migration_patience_days=5,
    )
    study = Study(config)
    # shorten Hublaagram's constants so the example finishes quickly
    hub = study.services["Hublaagram"]
    hub.config.detector.deployment_lag_ticks[ActionType.LIKE] = 24 * 3
    hub.config.suspend_sales_after_days = 10
    study.run_honeypot_phase()
    study.learn_signatures()
    study.run_measurement(days_=measurement_days)
    return study


def report(title: str, outcome) -> None:
    print(f"\n{title}")
    for service, moves in outcome.migrations.items():
        if moves:
            print(f"  {service} migrated {len(moves)}x: " + "; ".join(label for _, label in moves))
    print(f"  signature coverage of automation traffic: {outcome.signature_coverage:.1%}")
    print(f"  Hublaagram sales suspended: {outcome.hublaagram_sales_suspended}")


def main(
    config: StudyConfig | None = None,
    measurement_days: int = 5,
    epilogue_days: int = 30,
    relearn_days: int = 4,
) -> None:
    print("Scenario A — frozen defender (signatures never updated)...")
    study_a = build_study(seed=55, config=config, measurement_days=measurement_days)
    outcome_a = study_a.run_epilogue(days_=epilogue_days, calibration_days=4)
    report("A: services escape the original signatures", outcome_a)

    print("\nScenario B — defender keeps probing and re-learning...")
    study_b = build_study(seed=55, config=config, measurement_days=measurement_days)
    outcome_b = study_b.run_epilogue(
        days_=epilogue_days, calibration_days=4, defender_relearn_days=relearn_days
    )
    report("B: re-learning keeps the pressure on", outcome_b)

    print(
        "\nThe paper's conclusion in miniature: a visible countermeasure"
        "\ntrains the adversary — sustained effectiveness needs either"
        "\nopacity (delayed removal) or continuous re-measurement."
    )


if __name__ == "__main__":
    main()
