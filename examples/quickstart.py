#!/usr/bin/env python
"""Quickstart: build a small world, run the measurement pipeline, print
the headline tables.

This walks the paper's whole methodology end to end at test scale:

1. synthesize the platform and organic population,
2. register honeypots with every service and quantify reciprocation,
3. learn attribution signatures from honeypot ground truth,
4. run a measurement window and print the customer/revenue analyses.

Run with:  python examples/quickstart.py
"""

from repro.core import Study, StudyConfig
from repro.core import experiments as E
from repro.core import reporting as R


def main(config: StudyConfig | None = None) -> None:
    print("Building the simulated world (tiny preset)...")
    study = Study(config if config is not None else StudyConfig.tiny(seed=2018))

    print(
        f"  platform: {len(study.population)} organic accounts, "
        f"{study.platform.graph.edge_count} follow edges, "
        f"{len(study.services)} abuse services"
    )

    print("\nPhase 1 — honeypot engagement (Section 4)...")
    results = study.run_honeypot_phase()
    print(f"  {len(study.honeypots.accounts)} honeypots registered")
    print(f"  attribution baseline quiet: {study.honeypots.baseline_is_quiet()}")
    print()
    print(R.render_table5(E.table5_reciprocation(results)))

    print("\nPhase 2 — signature learning (Section 5 preamble)...")
    classifier = study.learn_signatures()
    for signature in classifier.signatures:
        print(
            f"  {signature.service}: {len(signature.asns)} ASN(s), "
            f"variants {sorted(signature.client_variants)}"
        )

    print("\nPhase 3 — measurement window (Section 5)...")
    dataset = study.run_measurement()
    print(
        f"  window: {dataset.window_days} days, "
        f"{sum(len(a.records) for a in dataset.attributed.values())} attributed actions"
    )
    print()
    print(R.render_table6(E.table6_customers(dataset)))
    print()
    print(R.render_table8(E.table8_reciprocity_revenue(study, dataset)))
    print()
    print(R.render_table9(E.table9_hublaagram_revenue(study, dataset)))
    print()
    print(R.render_table11(E.table11_action_mix(dataset)))
    print()
    print(R.render_fig2(E.fig2_geography(study, dataset)))


if __name__ == "__main__":
    main()
