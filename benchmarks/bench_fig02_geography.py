"""Figure 2: customer Instagram-account locations by country.

Paper: each AAS's advertised country is also where the largest share of
its customers live (Boostgram -> USA, Hublaagram -> IDN); Insta* has a
large "OTHER" tail attributed to undiscovered franchises.
"""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R
from repro.core.study import INSTA_STAR


def test_fig02_geography(benchmark, bench_study, bench_dataset):
    result = benchmark.pedantic(
        E.fig2_geography, args=(bench_study, bench_dataset), rounds=2, iterations=1
    )
    emit(R.render_fig2(result))
    for service, shares in result.items():
        assert shares, f"{service} should have located customers"
        total = sum(share for _, share in shares)
        assert abs(total - 1.0) < 1e-6
        # every bar shown is >=5% or the OTHER bucket
        for country, share in shares:
            assert share >= 0.05 or country == "OTHER"
