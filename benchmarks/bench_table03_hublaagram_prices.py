"""Table 3: Hublaagram's price list (quantities scaled for simulation)."""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R

#: Paper Table 3 prices (USD); quantities are scaled in-simulation but
#: prices are preserved exactly.
PAPER_PRICES = [15.0, 10.0, 20.0, 25.0, 20.0, 30.0, 40.0, 70.0]


def test_table03_hublaagram_prices(benchmark, bench_study):
    rows = benchmark(E.table3_hublaagram_pricing, bench_study)
    emit(R.render_table3(rows))
    assert [r["cost_usd"] for r in rows] == PAPER_PRICES
    assert rows[0]["duration"] == "Life"
    assert sum(1 for r in rows if r["duration"] == "Immediate") == 3
    assert sum(1 for r in rows if r["duration"] == "Month") == 4
