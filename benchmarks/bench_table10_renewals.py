"""Table 10: revenue split between new and preexisting paying customers.

Paper: the majority of gross revenue comes from repeat payers — Insta*
68.6%, Boostgram 89.2%, Hublaagram 83.5% preexisting.
"""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R


def test_table10_renewals(benchmark, bench_study, bench_dataset):
    rows = benchmark(E.table10_renewals, bench_study, bench_dataset)
    emit(R.render_table10(rows))
    assert rows, "every service should show revenue in the final month"
    for row in rows:
        # the headline: repeat payers carry the majority of revenue
        assert row["preexisting_pct"] > 0.5
        assert row["new_pct"] + row["preexisting_pct"] == 1.0
