"""Figure 5: median follows per participating user per day under the
narrow intervention (block vs delay vs control bins).

Paper shape: the service reacts immediately to blocking — the block
bin's actions drop below the threshold and probe it thereafter — while
the delay and control bins run at full budget for the whole six weeks.

Plotted for Insta* (the paper plots Boostgram, whose 10% bins hold too
few accounts at simulation scale for stable medians).
"""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R
from repro.core.study import INSTA_STAR


def _mean(series: dict) -> float:
    values = list(series.values())
    return sum(values) / len(values) if values else 0.0


def _halves(series: dict) -> tuple[float, float]:
    days_sorted = sorted(series)
    half = max(len(days_sorted) // 2, 1)
    early = [series[d] for d in days_sorted[:half]]
    late = [series[d] for d in days_sorted[half:]] or early
    return sum(early) / len(early), sum(late) / len(late)


def test_fig05_narrow_follows(benchmark, narrow_outcome):
    result = benchmark.pedantic(
        E.fig5_median_follows,
        args=(narrow_outcome,),
        kwargs={"service": INSTA_STAR},
        rounds=2,
        iterations=1,
    )
    emit(R.render_fig5(result))
    series = result["series"]
    assert result["threshold"] is not None

    block = series.get("block", {})
    control = series.get("control", {}) or series.get("untreated", {})
    delay = series.get("delay", {})
    assert block and control

    # the blocked bin reacts: its level does not recover past its early
    # (pre-adaptation) level, and it ends below the control bin
    block_early, block_late = _halves(block)
    assert block_late <= block_early * 1.15
    _, control_late = _halves(control)
    assert block_late < control_late

    # delayed removal draws no reaction: the delay bin runs like control
    if delay:
        assert _mean(delay) >= 0.5 * _mean(control)
