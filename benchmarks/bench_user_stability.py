"""Section 5.1 "User Stability": birth/death rates, daily active
long-term customers, and the long-term conversion rate.

Paper findings: Boostgram and Hublaagram shrank slightly over the
window, Insta* grew by more than 10%; conversion rates were stable at
12% (Boostgram), 21% (Insta*), 37% (Hublaagram) — ordered by price
(Boostgram, the most expensive, converts worst).
"""

from conftest import emit

from repro.core import experiments as E
from repro.core.study import INSTA_STAR
from repro.util.tables import format_table


def _stability_rows(dataset):
    rows = []
    for name, analytics in dataset.analytics.items():
        rates = analytics.birth_death_rates(window_days=7)
        conversion = analytics.conversion_rate(
            cohort_start_day=dataset.start_day, cohort_days=30
        )
        series = analytics.daily_active_long_term()
        days_sorted = sorted(series)
        first_week = [series[d] for d in days_sorted[:7]]
        last_week = [series[d] for d in days_sorted[-7:]]
        rows.append(
            {
                "service": name,
                "births_per_week": rates["birth_rate"],
                "deaths_per_week": rates["death_rate"],
                "conversion_rate": conversion,
                "active_lt_first_week": sum(first_week) / max(len(first_week), 1),
                "active_lt_last_week": sum(last_week) / max(len(last_week), 1),
            }
        )
    return rows


def test_user_stability(benchmark, bench_dataset):
    rows = benchmark(_stability_rows, bench_dataset)
    emit(
        format_table(
            ["service", "births/wk", "deaths/wk", "conversion", "active LT (wk 1)", "active LT (last wk)"],
            [
                [
                    r["service"],
                    f"{r['births_per_week']:.1f}",
                    f"{r['deaths_per_week']:.1f}",
                    f"{r['conversion_rate']:.1%}",
                    f"{r['active_lt_first_week']:.0f}",
                    f"{r['active_lt_last_week']:.0f}",
                ]
                for r in rows
            ],
            title="Section 5.1: user stability",
        )
    )
    by_service = {r["service"]: r for r in rows}

    # churn exists on both sides for every service
    for row in rows:
        assert row["births_per_week"] > 0
        assert row["deaths_per_week"] >= 0

    # conversion ordering follows price: Boostgram (priciest) converts
    # worst; Hublaagram (free tier) converts best (paper: 12/21/37%)
    assert (
        by_service["Boostgram"]["conversion_rate"]
        < by_service[INSTA_STAR]["conversion_rate"]
        < by_service["Hublaagram"]["conversion_rate"]
    )

    # the long-term stock persists through the window for every service
    for row in rows:
        assert row["active_lt_last_week"] > 0
