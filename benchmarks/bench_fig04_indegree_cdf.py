"""Figure 4: CDF of follower counts (in-degree) — AAS targets vs random
receiving accounts.

Paper medians: Boostgram targets 498, Insta* targets 384, random
Instagram 796 — targets have far *fewer* followers than the baseline
("presumably more open to reciprocating when targeted").
"""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R
from repro.core.study import INSTA_STAR
from repro.util.cdf import EmpiricalCDF


def test_fig04_indegree_cdf(benchmark, bench_study, bench_dataset):
    result = benchmark.pedantic(
        E.fig34_target_bias,
        args=(bench_study, bench_dataset),
        kwargs={"sample_size": 1000},
        rounds=2,
        iterations=1,
    )
    emit(R.render_fig34(result))
    baseline = result["baseline"]["median_in_degree"]
    assert result["Boostgram"]["median_in_degree"] < baseline
    assert result[INSTA_STAR]["median_in_degree"] <= baseline * 1.1
    # the in-degree gap is the more pronounced one (paper Section 5.3)
    out_gap = result["Boostgram"]["median_out_degree"] / max(
        result["baseline"]["median_out_degree"], 1.0
    )
    in_gap = baseline / max(result["Boostgram"]["median_in_degree"], 1.0)
    assert in_gap > 1.0
