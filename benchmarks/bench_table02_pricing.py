"""Table 2: reciprocity AAS trial lengths, minimum paid periods, costs."""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R

#: Paper Table 2: (trial days advertised, min paid days, cost USD).
PAPER_TABLE2 = {
    "Instalex": (7, 7, 3.15),
    "Instazood": (3, 1, 0.34),
    "Boostgram": (3, 30, 99.0),
}


def test_table02_pricing(benchmark):
    rows = benchmark(E.table2_reciprocity_pricing)
    emit(R.render_table2(rows))
    measured = {r["service"]: (r["trial_days"], r["min_paid_days"], r["cost_usd"]) for r in rows}
    assert measured == PAPER_TABLE2
    # the Instazood quirk: advertised 3 days, delivered 7 (Section 4.2)
    instazood = next(r for r in rows if r["service"] == "Instazood")
    assert instazood["trial_days_actual"] == 7
