"""Ablation: what the services' block-detection logic buys them.

Section 6.3 found "an openly available implementation of one of these
services with block detection logic" and observed immediate adaptation.
This bench runs the same blocking countermeasure against two otherwise
identical services — one with the detector, one without — and compares
how many of their attempts end up blocked: the adapting service wastes
far fewer actions once it learns the threshold.
"""

from conftest import emit

from repro.aas.base import IssueOutcome
from repro.aas.blockdetect import BlockDetectorConfig
from repro.aas.reciprocity_service import ReciprocityAbuseService, ReciprocityServiceConfig
from repro.aas.pricing import BOOSTGRAM_PRICING
from repro.aas.services.boostgram import BOOSTGRAM_DESCRIPTOR
from repro.aas.targeting import ReciprocityTargeting
from repro.behavior.degree import DegreeDistribution
from repro.behavior.population import OrganicPopulation, PopulationConfig
from repro.netsim import ASNRegistry, NetworkFabric
from repro.platform import InstagramPlatform
from repro.platform.countermeasures import ActionContext, CountermeasureDecision
from repro.platform.models import ActionType
from repro.util.rng import derive_rng
from repro.util.tables import format_table
from repro.util.timeutils import days


class _BlockAboveDaily:
    """Block follows beyond a fixed daily per-actor budget."""

    def __init__(self, asns, limit):
        self.asns = asns
        self.limit = limit
        self._attempts = {}

    def decide(self, context: ActionContext) -> CountermeasureDecision:
        if context.action_type is not ActionType.FOLLOW or context.endpoint.asn not in self.asns:
            return CountermeasureDecision.ALLOW
        key = (context.actor, context.tick // 24)
        self._attempts[key] = self._attempts.get(key, 0) + 1
        if self._attempts[key] > self.limit:
            return CountermeasureDecision.BLOCK
        return CountermeasureDecision.ALLOW


def _run_world(detector_enabled: bool, seed: int) -> float:
    """Return the blocked fraction of the service's follow attempts."""
    platform = InstagramPlatform()
    fabric = NetworkFabric(ASNRegistry(), derive_rng(seed, "f"))
    population = OrganicPopulation.generate(
        platform,
        fabric,
        derive_rng(seed, "p"),
        PopulationConfig(size=220, out_degree=DegreeDistribution(median=10.0)),
    )
    config = ReciprocityServiceConfig(
        pricing=BOOSTGRAM_PRICING,
        daily_budgets={ActionType.FOLLOW: 30.0},
        detector=BlockDetectorConfig(min_observations=10),
        detector_enabled=detector_enabled,
    )
    targeting = ReciprocityTargeting(platform, list(population.account_ids), derive_rng(seed, "t"))
    service = ReciprocityAbuseService(
        BOOSTGRAM_DESCRIPTOR, platform, fabric, derive_rng(seed, "s"), config, targeting
    )
    for i in range(8):
        account = platform.create_account(f"cust{i}", "pw")
        service.register_customer(f"cust{i}", "pw", {ActionType.FOLLOW}, trial_ticks=days(30))
    platform.countermeasures.add_policy(_BlockAboveDaily(service.current_asns(), limit=12))
    for _ in range(days(10)):
        service.tick()
        platform.clock.advance(1)
    attempts = (
        service.outcome_counts[IssueOutcome.DELIVERED]
        + service.outcome_counts[IssueOutcome.BLOCKED]
    )
    return service.outcome_counts[IssueOutcome.BLOCKED] / max(attempts, 1)


def test_ablation_block_detection(benchmark):
    def run():
        return _run_world(True, seed=301), _run_world(False, seed=301)

    with_detector, without_detector = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["service variant", "blocked fraction of follow attempts"],
            [
                ["with block detection", f"{with_detector:.1%}"],
                ["without block detection", f"{without_detector:.1%}"],
            ],
            title="Ablation: block-detection logic vs wasted (blocked) actions",
        )
    )
    # adaptation cuts the blocked fraction well below the naive service's
    assert with_detector < without_detector * 0.7
