"""Benchmark fixtures.

The expensive simulations run once per session and are shared across all
benchmark files:

* ``bench_study`` / ``bench_dataset`` — the paper-shaped 90-day
  measurement window (Tables 5-11, Figures 2-4).
* ``intervention_outcomes`` — a dedicated world that runs the six-week
  narrow intervention and the two-week broad intervention (Figures 5-7).

Each benchmark measures the *analysis* (the code that regenerates a
table/figure from the measured data) and prints the rendered rows; the
simulation cost is paid once here, mirroring how the paper's numbers
were computed once over a fixed dataset.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import Study, StudyConfig
from repro.core.config import ServicePlans
from repro.interventions.experiment import BroadInterventionPlan, NarrowInterventionPlan

_CACHE: dict[str, object] = {}


def _main_study():
    if "main" not in _CACHE:
        study = Study(StudyConfig.paper_shaped(seed=42))
        study.run_honeypot_phase()
        study.learn_signatures()
        dataset = study.run_measurement()
        _CACHE["main"] = (study, dataset)
    return _CACHE["main"]


def _intervention_study():
    if "intervention" not in _CACHE:
        config = StudyConfig.small(seed=1042).with_measurement_days(7)
        study = Study(config)
        study.run_honeypot_phase()
        study.learn_signatures()
        study.run_measurement()  # pre-intervention window for calibration
        narrow = study.run_narrow_intervention(
            NarrowInterventionPlan(duration_days=42), calibration_days=6
        )
        # washout: let services probe back to full budgets before the
        # broad experiment (at simulation scale the narrow experiment's
        # per-account suppression would otherwise bleed into the broad
        # baseline; at paper scale 10% suppressed barely moves it)
        study.run_days(10)
        broad = study.run_broad_intervention(
            BroadInterventionPlan(delay_days=6, block_days=8), calibration_days=6
        )
        _CACHE["intervention"] = (study, narrow, broad)
    return _CACHE["intervention"]


@pytest.fixture(scope="session")
def bench_study():
    return _main_study()[0]


@pytest.fixture(scope="session")
def bench_dataset():
    return _main_study()[1]


@pytest.fixture(scope="session")
def intervention_study():
    return _intervention_study()[0]


@pytest.fixture(scope="session")
def narrow_outcome():
    return _intervention_study()[1]


@pytest.fixture(scope="session")
def broad_outcome():
    return _intervention_study()[2]


_RENDERED_PATH = Path(__file__).parent / "rendered_tables.txt"
_rendered_initialized = False


def emit(text: str) -> None:
    """Print a rendered table (visible under ``pytest -s``) and append it
    to ``benchmarks/rendered_tables.txt`` so every bench run leaves a
    readable artifact even when pytest captures stdout."""
    global _rendered_initialized
    print("\n" + text)
    mode = "a" if _rendered_initialized else "w"
    with open(_RENDERED_PATH, mode) as handle:
        handle.write(text + "\n\n")
    _rendered_initialized = True
