"""Table 6: customers participating in each AAS over the window.

Paper shapes: Hublaagram >> Insta* >> Boostgram in customer volume;
long-term shares ~34%/33%/50%; and ~90% of actions come from long-term
customers for every service.
"""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R
from repro.core.study import INSTA_STAR


def test_table06_customers(benchmark, bench_dataset):
    rows = benchmark(E.table6_customers, bench_dataset)
    emit(R.render_table6(rows))
    by_service = {r["service"]: r for r in rows}

    # ordering: Hublaagram > Insta* > Boostgram (paper: 1.0M / 122k / 12k)
    assert (
        by_service["Hublaagram"]["customers"]
        > by_service[INSTA_STAR]["customers"]
        > by_service["Boostgram"]["customers"]
    )

    # long-term shares: Hublaagram highest (~50%), reciprocity ~third
    assert 0.15 <= by_service[INSTA_STAR]["long_term_pct"] <= 0.55
    assert 0.15 <= by_service["Boostgram"]["long_term_pct"] <= 0.55
    assert by_service["Hublaagram"]["long_term_pct"] >= 0.30

    # most actions come from long-term customers (paper: ~90%)
    for row in rows:
        assert row["long_term_action_share"] >= 0.55
