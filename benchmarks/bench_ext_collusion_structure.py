"""Extension: the mix-network structure of collusion traffic.

Section 3.2 describes collusion networks as orchestrating actions
*between customers* ("similar, in principle, to the notion of a mix
network"), while reciprocity abuse targets outsiders. This bench
quantifies that structural difference from attributed traffic alone —
a classifier-free way to separate the two abuse families.
"""

from conftest import emit

from repro.analysis.collusion_structure import analyze_structure
from repro.core.study import INSTA_STAR
from repro.util.tables import format_table


def test_ext_collusion_structure(benchmark, bench_dataset):
    def run():
        return {
            name: analyze_structure(activity)
            for name, activity in bench_dataset.attributed.items()
            if name != "Followersgratis"
        }

    structures = benchmark.pedantic(run, rounds=2, iterations=1)
    emit(
        format_table(
            ["service", "actions", "in-network", "dual-role", "edge reciprocity"],
            [
                [
                    s.service,
                    s.actions,
                    f"{s.in_network_fraction:.1%}",
                    f"{s.dual_role_fraction:.1%}",
                    f"{s.edge_reciprocity:.1%}",
                ]
                for s in structures.values()
            ],
            title="Extension: action-graph structure per abuse family",
        )
    )
    hub = structures["Hublaagram"]
    insta = structures[INSTA_STAR]
    boost = structures["Boostgram"]
    # collusion traffic stays in-network; reciprocity traffic leaves it
    assert hub.in_network_fraction > 0.9
    assert insta.in_network_fraction < 0.35
    assert boost.in_network_fraction < 0.35
    # collusion participants both give and receive (the laundering shape)
    assert hub.dual_role_fraction > max(insta.dual_role_fraction, boost.dual_role_fraction)
