"""Figure 3: CDF of accounts followed (out-degree) — AAS targets vs a
random sample of accounts receiving actions.

Paper medians: Boostgram targets 684, Insta* targets 554.5, random
Instagram 465 — i.e. targets follow *more* accounts than the baseline.
"""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R
from repro.core.study import INSTA_STAR


def test_fig03_outdegree_cdf(benchmark, bench_study, bench_dataset):
    result = benchmark.pedantic(
        E.fig34_target_bias,
        args=(bench_study, bench_dataset),
        kwargs={"sample_size": 1000},
        rounds=2,
        iterations=1,
    )
    emit(R.render_fig34(result))
    baseline = result["baseline"]["median_out_degree"]
    assert result["Boostgram"]["median_out_degree"] > baseline
    assert result[INSTA_STAR]["median_out_degree"] >= baseline * 0.9
    # CDF series are well-formed and plottable
    series = result["Boostgram"]["out_cdf"]
    assert series[0][1] <= series[-1][1] == 1.0
