"""Table 11: action-type mix per AAS.

Paper: Insta* is follow-heavy (38.6% follows vs 30.8% likes) with heavy
auto-unfollow (25%) and some comments (5.6%); Boostgram is like-heavy
(64% likes vs 19.3% follows, no comments); Hublaagram is like-heavy
(63% likes, 35.3% follows, no unfollows).
"""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R
from repro.core.study import INSTA_STAR
from repro.platform.models import ActionType


def test_table11_action_mix(benchmark, bench_dataset):
    rows = benchmark(E.table11_action_mix, bench_dataset)
    emit(R.render_table11(rows))
    by_service = {r["service"]: r for r in rows}

    insta = by_service[INSTA_STAR]
    assert insta["follow"] > 0.2  # follow-heavy
    assert insta["unfollow"] > 0.1  # heavy auto-unfollow
    assert insta["comment"] > 0.01  # comments present

    boost = by_service["Boostgram"]
    assert boost["like"] > boost["follow"] * 2  # like-heavy (paper 3.3x)
    assert boost["comment"] == 0.0  # not offered

    hub = by_service["Hublaagram"]
    assert hub["like"] > hub["follow"]  # like-heavy (paper 1.8x)
    assert hub["unfollow"] == 0.0  # collusion networks never unfollow
