"""Table 9: Hublaagram revenue breakdown.

Paper shapes preserved at scale: the one-time no-outbound fee pool is
substantial; monthly like tiers dominate monthly revenue with the
second tier (500-1,000 at full scale) the largest; one-time like
packages are negligible ("reflecting how poor a bargain that option
is"); ad revenue is dwarfed by service fees.
"""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R


def test_table09_revenue_hublaagram(benchmark, bench_study, bench_dataset):
    result = benchmark.pedantic(
        E.table9_hublaagram_revenue, args=(bench_study, bench_dataset), rounds=2, iterations=1
    )
    emit(R.render_table9(result))

    assert result["no_outbound_accounts"] > 0
    assert result["no_outbound_usd"] == result["no_outbound_accounts"] * 15

    tier_usd = result["monthly_tier_usd"]
    assert tier_usd, "monthly tiers should be detected"
    # monthly tiers dominate the monthly total
    assert sum(tier_usd.values()) > 0.5 * result["monthly_total_usd_high"]

    # one-time like packages are a rounding error (paper: 182 buyers of 1M)
    assert result["one_time_like_usd"] <= 0.2 * sum(tier_usd.values())

    # ads are dwarfed by service fees (paper: $3.5k-$23k vs ~$875k)
    assert result["ad_usd_high"] < sum(tier_usd.values())
    assert result["ad_usd_low"] < result["ad_usd_high"]

    # the CPM band spans paper's $0.60-$4.00 ratio
    if result["ad_impressions"] > 0:
        assert result["ad_usd_high"] / max(result["ad_usd_low"], 0.01) <= 7.5
