"""Ablation: the value of degree-biased target selection (Section 5.3).

Reciprocity AASs target accounts with high out-degree and low in-degree
because such users reciprocate more. This bench compares the expected
reciprocation propensity of the biased targeting sampler against
uniform-random targeting over the same universe.
"""

from conftest import emit

from repro.aas.targeting import ReciprocityTargeting
from repro.util.tables import format_table


def test_ablation_targeting(benchmark, bench_study):
    population = bench_study.population
    platform = bench_study.platform
    rng = bench_study.seeds.fresh("ablation-targeting")

    biased = ReciprocityTargeting(
        platform, list(population.account_ids), rng, out_degree_bias=1.4, in_degree_bias=1.4
    )
    unbiased = ReciprocityTargeting(
        platform, list(population.account_ids), rng, out_degree_bias=0.0, in_degree_bias=0.0
    )

    def mean_propensity_of(sampler):
        picks = sampler.select(500, exclude=set())
        values = [
            population.profiles[a].propensity
            for a in picks
            if a in population.profiles
        ]
        return sum(values) / len(values)

    def run():
        return mean_propensity_of(biased), mean_propensity_of(unbiased)

    biased_mean, uniform_mean = benchmark.pedantic(run, rounds=2, iterations=1)
    emit(
        format_table(
            ["targeting", "mean target propensity"],
            [["degree-biased (AAS)", f"{biased_mean:.3f}"], ["uniform", f"{uniform_mean:.3f}"]],
            title="Ablation: targeting bias vs expected reciprocation propensity",
        )
    )
    # the AAS selection bias yields measurably more reciprocal targets
    assert biased_mean > uniform_mean * 1.1
