"""Table 5: reciprocation probabilities per service, action type, and
honeypot kind.

Paper anchors (empty accounts): like->like 1.5-2.1%, like->follow
0.1-0.2% with the Instalex anomaly at 1.4%, follow->follow 10.3-13.0%,
follow->like 0.0%. Lived-in accounts: likes 1.6x-2.6x higher.
"""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R
from repro.honeypot.framework import HoneypotKind
from repro.platform.models import ActionType


def test_table05_reciprocation(benchmark, bench_study):
    rows = benchmark(E.table5_reciprocation, bench_study.reciprocation_results)
    emit(R.render_table5(rows))
    cells = {(r["service"], r["kind"], r["outbound"]): r for r in rows}

    # follow -> follow lands in (a loosened version of) the paper band
    for service in ("Instalex", "Instazood", "Boostgram"):
        cell = cells[(service, "empty", "follow")]
        assert 0.05 <= cell["inbound_follow_ratio"] <= 0.25
        # follow -> like never happens (paper: 0.0% everywhere)
        assert cell["inbound_like_ratio"] == 0.0

    # like -> like small but present
    for service in ("Instalex", "Instazood", "Boostgram"):
        cell = cells[(service, "empty", "like")]
        assert 0.004 <= cell["inbound_like_ratio"] <= 0.06

    # lived-in accounts attract more reciprocal likes than empty ones
    empty_mean = sum(
        cells[(s, "empty", "like")]["inbound_like_ratio"]
        for s in ("Instalex", "Instazood", "Boostgram")
    )
    lived_mean = sum(
        cells[(s, "lived-in", "like")]["inbound_like_ratio"]
        for s in ("Instalex", "Instazood", "Boostgram")
    )
    assert lived_mean > empty_mean

    # the Instalex anomaly: elevated follow-response to likes vs the
    # other services (paper: 1.4% vs 0.1-0.2%). Event counts per cell
    # are small, so pool both honeypot kinds and compare rates.
    def pooled_follow_rate(service):
        outbound = follows = 0
        for kind in ("empty", "lived-in"):
            cell = cells[(service, kind, "like")]
            outbound += cell["outbound_count"]
            follows += cell["inbound_follow_ratio"] * cell["outbound_count"]
        return follows / outbound

    instalex = pooled_follow_rate("Instalex")
    others = [pooled_follow_rate(s) for s in ("Instazood", "Boostgram")]
    assert instalex > 1.2 * (sum(others) / len(others))
