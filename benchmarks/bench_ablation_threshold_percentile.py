"""Ablation: the false-positive bound behind the 99th-percentile choice.

Section 6.2 sets mixed-ASN thresholds at the daily 99th percentile of
benign activity, bounding false positives at 1% of benign account-days.
This bench recomputes thresholds at several percentiles over the bench
dataset's benign traffic and measures the realized benign eligibility
(the false-positive rate the intervention would have incurred).
"""

from collections import defaultdict

from conftest import emit

from repro.interventions.thresholds import CountSubject, compute_thresholds
from repro.interventions import thresholds as thresholds_module
from repro.interventions.metrics import eligible_flags
from repro.platform.models import ActionType
from repro.util.tables import format_table


def _benign_fp_rate(benign_records, aas_records, subject_by_asn, percentile):
    """Fraction of benign (account, day) pairs with an eligible action."""
    original = thresholds_module.MIXED_ASN_PERCENTILE
    thresholds_module.MIXED_ASN_PERCENTILE = percentile
    try:
        table = compute_thresholds(aas_records, benign_records, subject_by_asn)
    finally:
        thresholds_module.MIXED_ASN_PERCENTILE = original
    flagged = eligible_flags(benign_records, table)
    account_days = {(r.actor, r.day) for r in benign_records}
    hit_days = {(record.actor, record.day) for record, _, eligible in flagged if eligible}
    if not account_days:
        return 0.0, table
    return len(hit_days) / len(account_days), table


def test_ablation_threshold_percentile(benchmark, bench_study, bench_dataset):
    classifier = bench_study.classifier
    records = list(bench_study.platform.log)
    benign = classifier.benign_records(records, bench_dataset.start_tick, bench_dataset.end_tick)
    aas = [
        r
        for activity in bench_dataset.attributed.values()
        for r in activity.records
    ]
    subject_by_asn = bench_study._subject_by_asn()
    # restrict benign records to the thresholded ASNs (the VPN users)
    covered = set(subject_by_asn)
    benign_in_scope = [r for r in benign if r.endpoint.asn in covered]

    def sweep():
        rows = []
        for percentile in (50.0, 90.0, 99.0, 100.0):
            rate, _ = _benign_fp_rate(benign_in_scope, aas, subject_by_asn, percentile)
            rows.append((percentile, rate))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        format_table(
            ["benign percentile", "benign FP rate (account-days)"],
            [[p, f"{r:.3%}"] for p, r in rows],
            title="Ablation: threshold percentile vs false-positive rate",
        )
    )
    rates = dict(rows)
    # lower percentiles hurt legitimate users more
    assert rates[50.0] >= rates[90.0] >= rates[99.0] >= rates[100.0]
    # the paper's p99 keeps benign collateral near the 1% design bound
    assert rates[99.0] <= 0.05
