"""Table 8: estimated monthly gross revenue, reciprocity AASs.

The paper reports Boostgram $298,584/mo and Insta* $195,017-$223,785/mo.
At simulation scale the absolute dollars shrink with the customer base;
the preserved shapes are (a) every service carries substantial monthly
revenue, (b) the Insta* low/high estimates bracket a plausible range,
and (c) the activity-based estimator tracks the services' ground-truth
ledgers, a validation the paper could not run.
"""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R
from repro.core.study import INSTA_STAR


def test_table08_revenue_reciprocity(benchmark, bench_study, bench_dataset):
    rows = benchmark(E.table8_reciprocity_revenue, bench_study, bench_dataset)
    emit(R.render_table8(rows))
    by_service = {r["service"]: r for r in rows}

    boost = by_service["Boostgram"]
    assert boost["paying_accounts"] > 0
    assert boost["est_monthly_usd"] > 0

    low = by_service[f"{INSTA_STAR} (Low)"]
    high = by_service[f"{INSTA_STAR} (High)"]
    assert low["paying_accounts"] == high["paying_accounts"] > 0

    # estimator vs ledger ground truth: same order of magnitude
    for row in rows:
        if row["true_monthly_usd"] > 0:
            ratio = row["est_monthly_usd"] / row["true_monthly_usd"]
            assert 0.2 <= ratio <= 5.0
