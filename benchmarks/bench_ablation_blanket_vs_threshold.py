"""Ablation: blanket ASN blocking vs account-level thresholds.

The paper positions its account-level interventions against prior
work's network-level blocking (Section 2, Farooqi et al.): "Instagram
users still use [their accounts] to initiate legitimate actions that
should not be blocked". This bench replays the bench dataset's mixed
ASNs under both policies and compares benign collateral damage: the
blanket block refuses every benign VPN-user action; the 99th-percentile
threshold touches almost none of them while still capping the abuse.
"""

from collections import defaultdict

from conftest import emit

from repro.interventions.metrics import eligible_flags
from repro.interventions.thresholds import CountSubject, compute_thresholds
from repro.util.tables import format_table


def test_ablation_blanket_vs_threshold(benchmark, bench_study, bench_dataset):
    classifier = bench_study.classifier
    records = list(bench_study.platform.log)
    benign = classifier.benign_records(records, bench_dataset.start_tick, bench_dataset.end_tick)
    subject_by_asn = bench_study._subject_by_asn()
    covered = set(subject_by_asn)
    benign_in_scope = [r for r in benign if r.endpoint.asn in covered]
    aas_in_scope = [
        r
        for activity in bench_dataset.attributed.values()
        for r in activity.records
        if r.endpoint.asn in covered
    ]

    def run():
        # blanket: every action from a service ASN is refused
        blanket_benign_hit = len(benign_in_scope)
        blanket_abuse_hit = len(aas_in_scope)
        # threshold: only above-threshold actions are eligible
        table = compute_thresholds(aas_in_scope, benign_in_scope, subject_by_asn)
        benign_eligible = sum(
            1 for _, _, eligible in eligible_flags(benign_in_scope, table) if eligible
        )
        abuse_eligible = sum(
            1 for _, _, eligible in eligible_flags(aas_in_scope, table) if eligible
        )
        return {
            "blanket_benign": blanket_benign_hit,
            "blanket_abuse": blanket_abuse_hit,
            "threshold_benign": benign_eligible,
            "threshold_abuse": abuse_eligible,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["policy", "abusive actions covered", "benign actions hit"],
            [
                ["blanket ASN block", result["blanket_abuse"], result["blanket_benign"]],
                ["per-account threshold", result["threshold_abuse"], result["threshold_benign"]],
            ],
            title="Ablation: network-level blocking vs account-level thresholds",
        )
    )
    assert result["blanket_benign"] > 0, "mixed ASNs must carry benign traffic"
    # the threshold policy spares nearly all benign traffic the blanket hits
    assert result["threshold_benign"] < 0.1 * result["blanket_benign"]
    # while still covering a large share of the abuse volume
    assert result["threshold_abuse"] > 0.3 * result["blanket_abuse"]
