"""Figure 6: proportion of Hublaagram likes eligible for a
countermeasure each day.

Paper shape: Hublaagram only reacts to *blocking*, and only about three
weeks into the intervention ("perhaps because it had to implement
blocked like detection") — after which the eligible-like proportion
drops sharply.
"""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R


def test_fig06_hublaagram_likes(benchmark, narrow_outcome):
    result = benchmark.pedantic(
        E.fig6_hublaagram_likes, args=(narrow_outcome,), rounds=2, iterations=1
    )
    emit(R.render_fig6(result))
    series = result["series"]
    assert series, "the series must cover the experiment window"

    days_sorted = sorted(series)
    start = narrow_outcome.start_day
    # weeks 1-2: no reaction (detection not yet deployed) — eligible
    # proportion stays materially above zero
    weeks12 = [series[d] for d in days_sorted if d < start + 14]
    # final week: after the ~3-week deployment lag the service caps
    # per-recipient delivery and the eligible share falls
    final = [series[d] for d in days_sorted if d >= start + 35]
    assert weeks12 and final
    early_mean = sum(weeks12) / len(weeks12)
    late_mean = sum(final) / len(final)
    assert early_mean > 0.02
    assert late_mean < early_mean
