"""Table 1: services offered to customers of each AAS."""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R

#: Paper Table 1 reference matrix (like, follow, comment, post, unfollow).
PAPER_TABLE1 = {
    "Instalex": (True, True, True, False, True),
    "Instazood": (True, True, True, True, True),
    "Boostgram": (True, True, False, True, True),
    "Hublaagram": (True, True, True, False, False),
    "Followersgratis": (True, True, False, False, False),
}


def test_table01_services(benchmark, bench_study):
    rows = benchmark(E.table1_services, bench_study)
    emit(R.render_table1(rows))
    measured = {
        r["service"]: (r["like"], r["follow"], r["comment"], r["post"], r["unfollow"])
        for r in rows
    }
    assert measured == PAPER_TABLE1
