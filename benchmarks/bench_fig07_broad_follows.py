"""Figure 7: the broad intervention — delayed removal for 90% of
accounts for ~a week, then switching to blocking.

Paper shape: no reaction during the delay week even though the
countermeasure now covers nearly all users; once blocking starts, the
service detects it and scales back to the threshold. The 10% control
bin holds ~10% of above-threshold actions during the unreactive phase.
"""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R
from repro.core.study import INSTA_STAR


def test_fig07_broad_follows(benchmark, broad_outcome):
    # The paper plots Boostgram; at simulation scale Boostgram's 10%
    # control bin holds only a couple of accounts, so we plot the larger
    # Insta* population (identical mechanics, usable statistics).
    result = benchmark.pedantic(
        E.fig7_broad_follows,
        args=(broad_outcome,),
        kwargs={"service": INSTA_STAR},
        rounds=2,
        iterations=1,
    )
    emit(R.render_fig7(result))
    assert result["switch_day"] == broad_outcome.start_day + 6

    shares = result["weekly_group_shares"]
    assert 0 in shares
    # delay week: the treated 90% carries the bulk of eligible actions
    # (no adaptation), control near its 10% population share
    week0_control = shares[0].get("control", 0.0)
    assert week0_control <= 0.35

    # block week: treated eligible volume collapses as the service backs
    # off, so control's share of the remainder grows
    if 1 in shares:
        assert shares[1].get("control", 0.0) >= week0_control

    daily = result["daily_eligible_proportion"]
    pre_switch = [v for d, v in daily.items() if d < result["switch_day"]]
    post_switch = [v for d, v in daily.items() if d >= result["switch_day"] + 2]
    if pre_switch and post_switch:
        # overall eligible proportion falls after blocking begins
        assert (sum(post_switch) / len(post_switch)) <= (sum(pre_switch) / len(pre_switch)) * 1.1
