"""Extension: do customers get what they pay for?

Section 2 motivates the market — influencer status needs followers and
engagement. The paper measures the services' mechanics and revenue but
not customer outcomes; the simulation can close the loop: enrolled
accounts should end the window with more followers and more inbound
likes than a matched organic baseline.
"""

from conftest import emit

from repro.analysis.outcomes import customer_vs_organic
from repro.core.study import INSTA_STAR
from repro.util.tables import format_table


def test_ext_customer_outcomes(benchmark, bench_study, bench_dataset):
    def run():
        out = {}
        for name in (INSTA_STAR, "Hublaagram"):
            out[name] = customer_vs_organic(
                bench_study.platform,
                bench_dataset.attributed[name].customers,
                bench_study.population.account_ids,
                bench_dataset.start_tick,
                bench_dataset.end_tick,
                bench_study.seeds.fresh(f"outcomes-{name}"),
            )
        return out

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    rows = []
    for name, (customers, organic) in results.items():
        rows.append(
            [
                name,
                customers.accounts,
                customers.median_followers,
                organic.median_followers,
                customers.median_inbound_likes,
                organic.median_inbound_likes,
            ]
        )
    emit(
        format_table(
            [
                "service",
                "N (each group)",
                "followers (cust)",
                "followers (organic)",
                "inbound likes (cust)",
                "inbound likes (organic)",
            ],
            rows,
            title="Extension: customer outcomes vs matched organic baseline",
        )
    )
    for name, (customers, organic) in results.items():
        # the purchased product is visible in the metrics customers buy
        assert customers.median_inbound_likes > organic.median_inbound_likes
    insta_customers, insta_organic = results[INSTA_STAR]
    # reciprocity abuse buys followers too
    assert insta_customers.median_followers >= insta_organic.median_followers
