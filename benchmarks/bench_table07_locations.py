"""Table 7: operating country and observed ASN locations per AAS."""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R
from repro.core.study import INSTA_STAR

#: Paper Table 7.
PAPER = {
    INSTA_STAR: ("RUS", {"USA"}),
    "Boostgram": ("USA", {"USA"}),
    "Hublaagram": ("IDN", {"GBR", "USA"}),
}


def test_table07_locations(benchmark, bench_study, bench_dataset):
    rows = benchmark(E.table7_locations, bench_study, bench_dataset)
    emit(R.render_table7(rows))
    for row in rows:
        operating, asn_countries = PAPER[row["service"]]
        assert row["operating_country"] == operating
        assert set(row["asn_locations"]) == asn_countries
