"""Table 4: Followersgratis payment options."""

from conftest import emit

from repro.core import experiments as E
from repro.core import reporting as R

PAPER_PRICES = [3.15, 5.25, 2.10, 5.25]


def test_table04_followersgratis_prices(benchmark):
    rows = benchmark(E.table4_followersgratis_pricing)
    emit(R.render_table4(rows))
    assert [r["cost_usd"] for r in rows] == PAPER_PRICES
    follows_options = [r for r in rows if "follows" in r["description"]]
    assert len(follows_options) == 2
