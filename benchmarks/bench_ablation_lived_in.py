"""Ablation: the lived-in honeypot effect (Section 4.3).

"Empty accounts have a significantly smaller probability of receiving
reciprocal inbound actions than lived-in accounts, particularly for
likes. Lived-in accounts range from 1.6x to 2.6x as likely..."

This bench sweeps account attractiveness through the response model and
verifies the like-response gain is monotone and hits the configured
lived-in multiplier at the lived-in anchor.
"""

from conftest import emit

from repro.behavior.reciprocity import (
    EMPTY_ATTRACTIVENESS,
    LIVED_IN_ATTRACTIVENESS,
    ReciprocityModel,
    ReciprocityParams,
)
from repro.platform.models import ActionType
from repro.util.rng import derive_rng
from repro.util.tables import format_table


def test_ablation_lived_in(benchmark):
    params = ReciprocityParams()
    model = ReciprocityModel(params, derive_rng(7, "ablation-lived-in"))

    def sweep():
        rows = []
        steps = 6
        for i in range(steps + 1):
            attractiveness = EMPTY_ATTRACTIVENESS + i * (
                LIVED_IN_ATTRACTIVENESS - EMPTY_ATTRACTIVENESS
            ) / steps
            probs = model.response_probabilities(ActionType.LIKE, attractiveness, 1.0)
            rows.append((attractiveness, probs[ActionType.LIKE]))
        return rows

    rows = benchmark(sweep)
    emit(
        format_table(
            ["attractiveness", "P(like back)"],
            [[f"{a:.2f}", f"{p:.4f}"] for a, p in rows],
            title="Ablation: account attractiveness vs like reciprocation",
        )
    )
    probabilities = [p for _, p in rows]
    assert probabilities == sorted(probabilities)  # monotone gain
    gain = probabilities[-1] / probabilities[0]
    assert abs(gain - params.lived_in_like_gain) < 0.05
    assert 1.6 <= gain <= 2.6  # the paper's observed band
