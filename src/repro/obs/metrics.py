"""Deterministic metric instruments and the registry that owns them.

Three instrument kinds, mirroring the usual telemetry trinity but with
the simulator's constraints baked in:

* :class:`Counter` — monotonically increasing integer (index hits,
  sweep-tier selections, rate-limit rejections, ...).
* :class:`Gauge` — last-write-wins float (registered agents, signature
  counts).
* :class:`Histogram` — raw observations kept in arrival order;
  percentiles are computed only at snapshot time via
  :func:`repro.util.stats.percentile` so the hot path is one append.

Instruments are keyed by ``(dotted name, sorted label items)``. The
registry hands out the *same* instrument object for the same key, which
lets instrumented code resolve its instruments once at construction
time and then touch a plain attribute on the hot path.

Snapshots are plain JSON-serializable dicts carrying
``schema_version`` (:data:`SNAPSHOT_SCHEMA_VERSION`); entries are
sorted by name then labels so serialization is byte-stable.

The ``Null*`` subclasses back :data:`repro.obs.facade.NULL_OBS`: they
accept writes and drop them, so disabled observability costs one dead
method call per instrumented event and registers nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.util.stats import percentile

#: bumped whenever the snapshot payload shape changes incompatibly
SNAPSHOT_SCHEMA_VERSION = 1

#: percentiles reported for every histogram, in snapshot order
HISTOGRAM_PERCENTILES: Tuple[int, ...] = (50, 90, 99)

LabelItems = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelItems]
Instrument = Union["Counter", "Gauge", "Histogram"]


def _label_items(labels: Dict[str, str]) -> LabelItems:
    for key, value in labels.items():
        if not isinstance(value, str):
            raise TypeError(f"metric label {key!r} must map to str, got {type(value).__name__}")
    return tuple(sorted(labels.items()))


def format_metric(name: str, labels: Dict[str, str]) -> str:
    """``name{a=b,c=d}`` — the human-readable key used by reports."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for signed values")
        self.value += amount

    #: the bound-handle spelling: batch call sites resolve the counter
    #: once (``obs.bound_counter(...)``) and then do ``handle.add(n)``
    add = inc


class Gauge:
    """A last-write-wins float."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += float(amount)


class Histogram:
    """Raw observations; summary statistics are computed at snapshot time."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return float(sum(self._values))

    def summary(self) -> Dict[str, object]:
        """JSON-ready stats block; null min/max/percentiles when empty."""
        if not self._values:
            return {"count": 0, "sum": 0.0, "min": None, "max": None, "percentiles": None}
        percentiles = {
            f"p{pct}": float(percentile(self._values, pct)) for pct in HISTOGRAM_PERCENTILES
        }
        return {
            "count": len(self._values),
            "sum": self.total,
            "min": min(self._values),
            "max": max(self._values),
            "percentiles": percentiles,
        }


class NullCounter(Counter):
    """Accepts increments and drops them."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None

    add = inc  # the class-body alias binds early; re-alias the override


class NullGauge(Gauge):
    """Accepts writes and drops them."""

    __slots__ = ()

    def set(self, value: float) -> None:
        return None

    def inc(self, amount: float = 1.0) -> None:
        return None


class NullHistogram(Histogram):
    """Accepts observations and drops them."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


#: shared no-op instruments handed out by disabled Observability handles
NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class MetricsRegistry:
    """Owns every instrument; get-or-create keyed by name + labels."""

    def __init__(self) -> None:
        self._instruments: Dict[MetricKey, Tuple[str, Instrument]] = {}

    def _get_or_create(self, kind: str, name: str, labels: Dict[str, str]) -> Instrument:
        key: MetricKey = (name, _label_items(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            existing_kind, instrument = existing
            if existing_kind != kind:
                raise ValueError(
                    f"metric {format_metric(name, labels)} already registered "
                    f"as {existing_kind}, requested {kind}"
                )
            return instrument
        instrument = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}[kind]()
        self._instruments[key] = (kind, instrument)
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        instrument = self._get_or_create("counter", name, labels)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        instrument = self._get_or_create("gauge", name, labels)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        instrument = self._get_or_create("histogram", name, labels)
        assert isinstance(instrument, Histogram)
        return instrument

    def bound_counter(self, name: str, **labels: str) -> Counter:
        """Resolve a counter once for a hot loop.

        Identical to :meth:`counter` — the registry already hands out a
        shared instance per key — but named for the batched call sites:
        the label dict is hashed here, exactly once, and the returned
        handle is then driven with ``handle.add(n)`` per batch instead
        of a labeled lookup per action.
        """
        return self.counter(name, **labels)

    def get_counter_value(self, name: str, **labels: str) -> Optional[int]:
        """Read a counter without creating it; ``None`` when unregistered."""
        entry = self._instruments.get((name, _label_items(labels)))
        if entry is None or entry[0] != "counter":
            return None
        instrument = entry[1]
        assert isinstance(instrument, Counter)
        return instrument.value

    def counter_items(self) -> List[Tuple[str, int]]:
        """``(name, value)`` for every counter, labels folded together.

        The cost profiler's read surface: it only needs per-name totals
        (kind classification ignores labels), so labeled series collapse
        into one entry per name here. Iteration order follows insertion,
        which is itself deterministic, but callers aggregate rather than
        rely on order.
        """
        items: List[Tuple[str, int]] = []
        for (name, _label_items_key), (kind, instrument) in self._instruments.items():
            if kind == "counter":
                assert isinstance(instrument, Counter)
                items.append((name, instrument.value))
        return items

    def snapshot(self) -> Dict[str, object]:
        """Schema-versioned, JSON-serializable, deterministically ordered."""
        entries: List[Dict[str, object]] = []
        for (name, label_items), (kind, instrument) in sorted(self._instruments.items()):
            entry: Dict[str, object] = {
                "name": name,
                "type": kind,
                "labels": dict(label_items),
            }
            if isinstance(instrument, Counter):
                entry["value"] = instrument.value
            elif isinstance(instrument, Gauge):
                entry["value"] = instrument.value
            else:
                entry.update(instrument.summary())
            entries.append(entry)
        return {"schema_version": SNAPSHOT_SCHEMA_VERSION, "metrics": entries}
