"""The only obs module allowed to read the host clock.

Everything else in ``repro.obs`` is a pure function of simulation
state; wall-clock span durations are an explicit, opt-in extra for
humans profiling a run. Reading the host clock violates DET003
(``repro.lint``), so this module carries the standing module-scoped
waiver for ``repro.obs.walltime`` (see ``repro/lint/waivers.py``) —
the same mechanism ``repro.bench`` uses for its timers.

Containment rules, mirrored by the waiver's reason string:

* nothing here feeds back into simulation state — callers only ever
  attach the readings to closed span records;
* the resulting ``wall_s`` fields are stripped by
  :func:`repro.obs.trace.canonical_lines`, so canonical traces remain
  bit-identical across hosts and runs.
"""

from __future__ import annotations

import time


def read_wall_seconds() -> float:
    """Monotonic host seconds; only meaningful as a difference."""
    return time.perf_counter()
