"""The only obs module allowed to probe the host (clock + RSS).

Everything else in ``repro.obs`` is a pure function of simulation
state; wall-clock span durations and RSS high-water marks are an
explicit, opt-in extra for humans profiling a run. Reading the host
clock violates DET003, and importing ``time``/``resource`` anywhere
else violates OBS003 (``repro.lint``) — this module carries the
standing module-scoped DET003 waiver for ``repro.obs.walltime`` (see
``repro/lint/waivers.py``) and is OBS003's sole exempt path, so every
host probe in the tree funnels through here.

Containment rules, mirrored by the waiver's reason string:

* nothing here feeds back into simulation state — callers only ever
  attach the readings to closed span records or bench payloads;
* the resulting ``wall_s`` / ``peak_rss_kb`` fields are stripped by
  :func:`repro.obs.trace.canonical_lines`, so canonical traces remain
  bit-identical across hosts and runs.
"""

from __future__ import annotations

import resource
import time


def read_wall_seconds() -> float:
    """Monotonic host seconds; only meaningful as a difference."""
    return time.perf_counter()


def read_peak_rss_kb() -> int:
    """Process peak resident set size in KiB (Linux ``ru_maxrss`` unit).

    A high-water mark, not a current reading: within one process it is
    monotonically non-decreasing, so per-span values attribute peaks to
    the first span that reached them.
    """
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
