"""Flamegraph views over the span cost tree.

Turns a trace's span lines back into the phase tree and renders it as a
text flamegraph (depth-indented, TOTAL/SELF columns) or a JSON payload.
Costs come from the :mod:`repro.obs.prof` attrs when the trace was
recorded with profiling on; otherwise the renderer falls back to tick
spans, so ``repro.obs flame`` works on any trace, just with a coarser
basis. Both bases are deterministic — the flamegraph of a seeded run
is byte-identical across repeats.

Reconstruction is necessarily two-pass: spans are serialized in
*completion* order, so a child's line precedes its parent's. The
builder indexes every span first, then links children to parents in
span-id (open) order, which is exactly the order in which the phases
started.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.prof import COST_SELF_ATTR, COST_TOTAL_ATTR, KIND_NAMES

#: bumped whenever the JSON flame payload shape changes incompatibly
FLAME_SCHEMA_VERSION = 1

#: cost basis: deterministic work units from the cost profiler
BASIS_COST = "cost-units"
#: fallback basis: simulation ticks spanned (profiler was off)
BASIS_TICKS = "ticks"


@dataclass
class FlameNode:
    """One span in the reconstructed phase tree, with per-kind costs."""

    name: str
    span_id: int
    depth: int
    total: Dict[str, int]
    self_cost: Dict[str, int]
    children: List["FlameNode"] = field(default_factory=list)

    @property
    def total_units(self) -> int:
        return sum(self.total.values())

    @property
    def self_units(self) -> int:
        return sum(self.self_cost.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "depth": self.depth,
            "total": dict(self.total),
            "self": dict(self.self_cost),
            "total_units": self.total_units,
            "self_units": self.self_units,
            "children": [child.to_dict() for child in self.children],
        }


def _cost_dict(value: object) -> Optional[Dict[str, int]]:
    """A validated per-kind cost dict, or ``None`` if ``value`` isn't one."""
    if not isinstance(value, dict):
        return None
    costs: Dict[str, int] = {}
    for key, units in value.items():
        if not isinstance(key, str) or not isinstance(units, int) or isinstance(units, bool):
            return None
        costs[key] = units
    return costs


def build_forest(span_lines: Sequence[Dict[str, object]]) -> Tuple[str, List[FlameNode]]:
    """Reconstruct the phase tree from span lines; returns (basis, roots).

    The cost basis is used only when *every* span carries valid
    profiler attrs — a mixed trace (e.g. spans recorded before a
    profiler attached) degrades wholesale to ticks rather than silently
    mixing units.
    """
    parsed: List[Tuple[int, Optional[int], str, int, int, int, object, object]] = []
    for line in span_lines:
        span_id = line.get("id")
        if not isinstance(span_id, int) or isinstance(span_id, bool):
            continue
        parent = line.get("parent")
        parent_id = parent if isinstance(parent, int) and not isinstance(parent, bool) else None
        name = str(line.get("name", ""))
        depth = line.get("depth")
        start = line.get("start_tick")
        end = line.get("end_tick")
        raw_attrs = line.get("attrs")
        attrs: Dict[str, object] = raw_attrs if isinstance(raw_attrs, dict) else {}
        parsed.append(
            (
                span_id,
                parent_id,
                name,
                depth if isinstance(depth, int) else 0,
                start if isinstance(start, int) else 0,
                end if isinstance(end, int) else 0,
                attrs.get(COST_TOTAL_ATTR),
                attrs.get(COST_SELF_ATTR),
            )
        )

    costed: Dict[int, Tuple[Dict[str, int], Dict[str, int]]] = {}
    for span_id, _parent, _name, _depth, _start, _end, raw_total, raw_self in parsed:
        total = _cost_dict(raw_total)
        self_cost = _cost_dict(raw_self)
        if total is None or self_cost is None:
            break
        costed[span_id] = (total, self_cost)
    basis = BASIS_COST if parsed and len(costed) == len(parsed) else BASIS_TICKS

    nodes: Dict[int, FlameNode] = {}
    parents: Dict[int, Optional[int]] = {}
    for span_id, parent_id, name, depth, start, end, _raw_total, _raw_self in parsed:
        if basis == BASIS_COST:
            total, self_cost = costed[span_id]
        else:
            total = {"ticks": max(end - start, 0)}
            self_cost = dict(total)  # children subtracted below
        nodes[span_id] = FlameNode(
            name=name, span_id=span_id, depth=depth, total=total, self_cost=self_cost
        )
        parents[span_id] = parent_id

    roots: List[FlameNode] = []
    for span_id in sorted(nodes):  # span-id order == phase open order
        parent_id = parents[span_id]
        if parent_id is not None and parent_id in nodes:
            nodes[parent_id].children.append(nodes[span_id])
        else:
            roots.append(nodes[span_id])

    if basis == BASIS_TICKS:
        for node in nodes.values():
            child_ticks = sum(child.total.get("ticks", 0) for child in node.children)
            node.self_cost = {"ticks": max(node.total.get("ticks", 0) - child_ticks, 0)}
    return basis, roots


def _walk(roots: Sequence[FlameNode]) -> List[FlameNode]:
    ordered: List[FlameNode] = []
    stack = list(reversed(list(roots)))
    while stack:
        node = stack.pop()
        ordered.append(node)
        stack.extend(reversed(node.children))
    return ordered


def _paths(roots: Sequence[FlameNode]) -> Dict[int, str]:
    """span_id -> "root / ... / name" hot-path labels."""
    labels: Dict[int, str] = {}

    def visit(node: FlameNode, prefix: str) -> None:
        path = f"{prefix} / {node.name}" if prefix else node.name
        labels[node.span_id] = path
        for child in node.children:
            visit(child, path)

    for root in roots:
        visit(root, "")
    return labels


def _kind_suffix(costs: Dict[str, int]) -> str:
    parts = [f"{kind}={costs[kind]}" for kind in KIND_NAMES if costs.get(kind)]
    return f"  [{' '.join(parts)}]" if parts else ""


def render_text(basis: str, roots: Sequence[FlameNode], top: int = 10) -> str:
    """The text flamegraph: tree view + ranked hot-span list."""
    ordered = _walk(roots)
    out: List[str] = [f"Flame ({basis}):"]
    if not ordered:
        out.append("  (no spans)")
        return "\n".join(out) + "\n"
    width = max(len(str(node.total_units)) for node in ordered)
    width = max(width, len("TOTAL"))
    out.append(f"  {'TOTAL':>{width}}  {'SELF':>{width}}  SPAN")
    for node in ordered:
        indent = "  " * node.depth
        suffix = _kind_suffix(node.self_cost) if basis == BASIS_COST else ""
        out.append(
            f"  {node.total_units:>{width}}  {node.self_units:>{width}}  "
            f"{indent}{node.name}{suffix}"
        )
    labels = _paths(roots)
    ranked = sorted(ordered, key=lambda n: (-n.self_units, labels[n.span_id], n.span_id))
    if top > 0:
        ranked = ranked[:top]
    out.append("")
    out.append(f"Hot spans by self {basis}:")
    for rank, node in enumerate(ranked, start=1):
        out.append(f"  {rank:>2}. {node.self_units:>{width}}  {labels[node.span_id]}")
    return "\n".join(out) + "\n"


def flame_payload(segments: Sequence[Tuple[str, str, Sequence[FlameNode]]]) -> Dict[str, object]:
    """JSON payload for one or more (replica, basis, roots) segments."""
    return {
        "kind": "flame",
        "schema_version": FLAME_SCHEMA_VERSION,
        "segments": [
            {
                "replica": replica,
                "basis": basis,
                "roots": [root.to_dict() for root in roots],
            }
            for replica, basis, roots in segments
        ],
    }
