"""Console span reporter — the CLI's ``--verbose`` progress lines.

A deliberately thin :class:`repro.obs.spans.SpanListener`: span starts
become indented, tick-stamped progress lines on the given stream, and
top-level span ends report how many simulated ticks the phase covered.
This file (with the CLIs) is one of the sanctioned output sites exempt
from the OBS001 no-direct-print lint rule.
"""

from __future__ import annotations

from typing import TextIO

from repro.obs.spans import Span, SpanListener


class ConsoleReporter(SpanListener):
    """Prints span progress to a stream (the CLI passes stderr)."""

    def __init__(self, stream: TextIO) -> None:
        self._stream = stream

    def span_started(self, span: Span) -> None:
        attrs = " ".join(f"{key}={value}" for key, value in sorted(span.attrs.items()))
        suffix = f"  [{attrs}]" if attrs else ""
        indent = "  " * span.depth
        print(f"[tick {span.start_tick:>6}] {indent}{span.name}{suffix}", file=self._stream)

    def span_ended(self, span: Span) -> None:
        if span.depth == 0:
            print(
                f"[tick {span.end_tick:>6}] {span.name} done (+{span.tick_span} ticks)",
                file=self._stream,
            )
