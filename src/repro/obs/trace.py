"""JSONL trace sink and readers.

A trace is newline-delimited JSON, dumped at the end of a run (spans
are buffered in memory; nothing streams to disk mid-simulation):

* line 0 — ``{"kind": "header", "schema_version": ..., "meta": {...}}``
* lines 1..n-1 — span records in completion order
  (:meth:`repro.obs.spans.Span.to_line`)
* line n — ``{"kind": "snapshot", "snapshot": <metrics snapshot>}``

Serialization uses ``sort_keys`` and fixed separators, so for one
seeded config the file is byte-identical run to run — except the
opt-in ``wall_s`` span fields, which :func:`canonical_lines` strips
before any comparison (that is the entire scope of the
``repro.obs.walltime`` determinism waiver).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.obs.schema import TRACE_SCHEMA_VERSION

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.facade import Observability


def trace_lines(
    obs: "Observability", meta: Optional[Dict[str, object]] = None
) -> List[Dict[str, object]]:
    """Header + finished spans + metrics snapshot, as JSON-ready dicts."""
    lines: List[Dict[str, object]] = [
        {"kind": "header", "schema_version": TRACE_SCHEMA_VERSION, "meta": dict(meta or {})}
    ]
    for span in obs.tracer.finished:
        lines.append(span.to_line())
    lines.append({"kind": "snapshot", "snapshot": obs.metrics.snapshot()})
    return lines


def render_trace(lines: Sequence[Dict[str, object]]) -> str:
    """Canonical JSONL text: sorted keys, fixed separators, trailing \\n."""
    return "".join(json.dumps(line, sort_keys=True, separators=(",", ":")) + "\n" for line in lines)


def write_trace(
    path: Union[str, Path], obs: "Observability", meta: Optional[Dict[str, object]] = None
) -> Path:
    """Dump a trace for ``obs`` to ``path``; returns the path written."""
    target = Path(path)
    target.write_text(render_trace(trace_lines(obs, meta)), encoding="utf-8")
    return target


def read_trace_lines(path: Union[str, Path]) -> List[object]:
    """Parse a JSONL trace; raises ``ValueError`` with the offending line."""
    lines: List[object] = []
    text = Path(path).read_text(encoding="utf-8")
    for number, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip():
            continue
        try:
            lines.append(json.loads(raw))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{number}: not valid JSON ({exc})") from exc
    return lines


def label_replica(lines: Sequence[object], replica: str) -> List[object]:
    """Copy of ``lines`` with a ``replica`` label stamped on every record.

    Fleet runs (:mod:`repro.fleet`) concatenate one trace segment per
    replica into a single merged file; the label is what keeps each
    segment attributable after the merge, and what ``split_segments``
    groups by when summarizing.
    """
    labeled: List[object] = []
    for line in lines:
        if isinstance(line, dict):
            stamped = dict(line)
            stamped["replica"] = replica
            labeled.append(stamped)
        else:
            labeled.append(line)
    return labeled


def split_segments(lines: Sequence[object]) -> List[List[object]]:
    """Split a (possibly merged) trace into per-segment line lists.

    A segment starts at each ``header`` record. A single-run trace
    yields one segment; a fleet-merged trace yields one per replica, in
    merge (= spec) order. Lines before the first header — a malformed
    trace — land in a leading headerless segment so validators can
    reject them explicitly.
    """
    segments: List[List[object]] = []
    for line in lines:
        if isinstance(line, dict) and line.get("kind") == "header":
            segments.append([line])
        elif segments:
            segments[-1].append(line)
        else:
            segments.append([line])
    return segments


#: span fields sourced from host probes (repro.obs.walltime) rather
#: than simulation state; everything else in a trace is deterministic
NONCANONICAL_SPAN_FIELDS = ("wall_s", "peak_rss_kb")


def canonical_lines(lines: Sequence[object]) -> List[object]:
    """Copy of ``lines`` with the waived host-probe fields removed.

    Canonical traces are what determinism comparisons operate on: two
    runs of the same seeded config must agree byte-for-byte once
    ``wall_s`` and ``peak_rss_kb`` are gone.
    """
    cleaned: List[object] = []
    for line in lines:
        if isinstance(line, dict) and line.get("kind") == "span":
            cleaned.append(
                {
                    key: value
                    for key, value in line.items()
                    if key not in NONCANONICAL_SPAN_FIELDS
                }
            )
        else:
            cleaned.append(line)
    return cleaned
