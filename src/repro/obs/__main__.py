"""Entry point for ``python -m repro.obs``."""

from __future__ import annotations

from repro.obs.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
