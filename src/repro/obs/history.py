"""Append-only bench history and noise-floor-aware regression verdicts.

``BENCH_*.json`` files are latest-only snapshots: a perf regression
between two PRs is invisible once the newer file overwrites the older.
This module keeps the trajectory: every bench run appends one compact
JSONL record to ``BENCH_HISTORY.jsonl`` (scenario, schema version,
config digest, git SHA, stats, derived speedups), and
``python -m repro.obs regress`` diffs the newest record against a
baseline.

Verdicts reuse the bench-v3 noise methodology: the harness's min-of-N
estimator bounds its own noise by the ``best_s``/``runnerup_s`` gap and
the ``cv`` of the repetitions. A ratio shift smaller than the larger of
those (on either side, floored at ``min_noise``) is noise, not a
regression — ``regress`` exits nonzero only for off-noise-floor slowdowns.

Records are compared only against records with the same ``benchmark``,
``mode``, and (by default) ``config_digest`` — changing bench settings
starts a new comparable lineage rather than producing a bogus verdict.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: bumped whenever the history record shape changes incompatibly
HISTORY_SCHEMA_VERSION = 1

#: the canonical history file name, appended next to the BENCH_*.json files
HISTORY_FILE_NAME = "BENCH_HISTORY.jsonl"

#: smallest relative shift ever treated as signal; measured noise
#: (cv / runner-up gap) widens the band beyond this floor
DEFAULT_MIN_NOISE = 0.05


def config_digest(settings: Dict[str, object]) -> str:
    """Short stable digest of a bench settings block."""
    canonical = json.dumps(settings, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()


def read_git_sha(start: Union[str, Path] = ".") -> str:
    """Current commit SHA by reading ``.git`` directly; "unknown" if none.

    Deliberately subprocess-free (and clock-free — OBS003 applies here
    too): walks up from ``start`` for a ``.git`` directory, resolves
    ``HEAD`` through one level of ref indirection, and falls back to
    ``packed-refs``. Any surprise shape yields "unknown" rather than an
    exception — history append must never fail a bench run.
    """
    try:
        current = Path(start).resolve()
        for candidate in (current, *current.parents):
            git_dir = candidate / ".git"
            if not git_dir.is_dir():
                continue
            head = (git_dir / "HEAD").read_text(encoding="utf-8").strip()
            if not head.startswith("ref: "):
                return head or "unknown"
            ref = head[len("ref: "):].strip()
            ref_path = git_dir / ref
            if ref_path.is_file():
                return ref_path.read_text(encoding="utf-8").strip() or "unknown"
            packed = git_dir / "packed-refs"
            if packed.is_file():
                for raw in packed.read_text(encoding="utf-8").splitlines():
                    line = raw.strip()
                    if line.endswith(" " + ref):
                        return line.split(" ", 1)[0]
            return "unknown"
    except OSError:
        pass
    return "unknown"


def history_record(
    payload: Dict[str, object],
    git_sha: Optional[str] = None,
    source_dir: Union[str, Path] = ".",
) -> Dict[str, object]:
    """One history record distilled from a bench payload.

    Keeps the stats and derived speedups (the comparable signal) and
    drops the bulky per-scenario extras; provenance is the settings
    digest plus the git SHA.
    """
    settings = payload.get("settings")
    derived = payload.get("derived")
    results = payload.get("results")
    record: Dict[str, object] = {
        "kind": "bench-history",
        "schema_version": HISTORY_SCHEMA_VERSION,
        "benchmark": payload.get("benchmark"),
        "bench_schema_version": payload.get("schema_version"),
        "mode": payload.get("mode"),
        "config_digest": config_digest(settings if isinstance(settings, dict) else {}),
        "git_sha": git_sha if git_sha is not None else read_git_sha(source_dir),
        "results": [
            {"name": entry.get("name"), "stats": entry.get("stats")}
            for entry in (results if isinstance(results, list) else [])
            if isinstance(entry, dict)
        ],
        "derived_speedups": {
            key: value
            for key, value in (derived if isinstance(derived, dict) else {}).items()
            if isinstance(value, dict) and "value" in value
        },
    }
    return record


def append_history(path: Union[str, Path], record: Dict[str, object]) -> Path:
    """Append one compact JSON line; creates the file (and parents)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    with target.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")
    return target


def read_history(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a history file; raises ``ValueError`` with the bad line."""
    records: List[Dict[str, object]] = []
    text = Path(path).read_text(encoding="utf-8")
    for number, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip():
            continue
        try:
            parsed = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{number}: not valid JSON ({exc})") from exc
        if isinstance(parsed, dict):
            records.append(parsed)
    return records


@dataclass(frozen=True)
class RegressVerdict:
    """One scenario's newest-vs-baseline comparison."""

    benchmark: str
    mode: str
    result: str
    baseline_best_s: float
    current_best_s: float
    #: current / baseline best_s; > 1 means slower
    ratio: float
    #: the noise band the shift must exceed to count as signal
    noise: float
    #: "ok", "regressed", or "improved"
    status: str

    @property
    def regressed(self) -> bool:
        return self.status == "regressed"


def _stats_of(record: Dict[str, object], name: str) -> Optional[Dict[str, object]]:
    results = record.get("results")
    if not isinstance(results, list):
        return None
    for entry in results:
        if isinstance(entry, dict) and entry.get("name") == name:
            stats = entry.get("stats")
            return stats if isinstance(stats, dict) else None
    return None


def _float_field(stats: Dict[str, object], key: str) -> Optional[float]:
    value = stats.get(key)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def _gap(stats: Dict[str, object]) -> float:
    """Relative best-to-runnerup gap — the estimator's own noise bound."""
    best = _float_field(stats, "best_s")
    runnerup = _float_field(stats, "runnerup_s")
    if best is None or runnerup is None or best <= 0.0:
        return 0.0
    return max((runnerup - best) / best, 0.0)


def compare_stats(
    name: str,
    benchmark: str,
    mode: str,
    baseline: Dict[str, object],
    current: Dict[str, object],
    min_noise: float = DEFAULT_MIN_NOISE,
) -> Optional[RegressVerdict]:
    """Noise-floor-aware verdict for one result's stats pair."""
    base_best = _float_field(baseline, "best_s")
    cur_best = _float_field(current, "best_s")
    if base_best is None or cur_best is None or base_best <= 0.0:
        return None
    noise = max(
        _gap(baseline),
        _gap(current),
        _float_field(baseline, "cv") or 0.0,
        _float_field(current, "cv") or 0.0,
        min_noise,
    )
    ratio = cur_best / base_best
    if ratio - 1.0 > noise:
        status = "regressed"
    elif 1.0 - ratio > noise:
        status = "improved"
    else:
        status = "ok"
    return RegressVerdict(
        benchmark=benchmark,
        mode=mode,
        result=name,
        baseline_best_s=base_best,
        current_best_s=cur_best,
        ratio=ratio,
        noise=noise,
        status=status,
    )


def compare_records(
    baseline: Dict[str, object],
    current: Dict[str, object],
    min_noise: float = DEFAULT_MIN_NOISE,
) -> List[RegressVerdict]:
    """Verdicts for every result name present in both records."""
    verdicts: List[RegressVerdict] = []
    benchmark = str(current.get("benchmark"))
    mode = str(current.get("mode"))
    results = current.get("results")
    for entry in results if isinstance(results, list) else []:
        if not isinstance(entry, dict):
            continue
        name = entry.get("name")
        if not isinstance(name, str):
            continue
        cur_stats = _stats_of(current, name)
        base_stats = _stats_of(baseline, name)
        if cur_stats is None or base_stats is None:
            continue
        verdict = compare_stats(name, benchmark, mode, base_stats, cur_stats, min_noise)
        if verdict is not None:
            verdicts.append(verdict)
    return verdicts


def regress(
    records: Sequence[Dict[str, object]],
    benchmark: Optional[str] = None,
    baseline_offset: Optional[int] = None,
    min_noise: float = DEFAULT_MIN_NOISE,
) -> Tuple[List[RegressVerdict], List[str]]:
    """Newest-vs-baseline verdicts per (benchmark, mode) lineage.

    The newest record of each group is "current". The default baseline
    is the latest earlier record sharing its ``config_digest`` (same
    settings → comparable); ``baseline_offset=N`` instead picks the
    record N places before the newest regardless of digest. Groups with
    no usable baseline produce a note, not a verdict.
    """
    groups: Dict[Tuple[str, str], List[Dict[str, object]]] = {}
    for record in records:
        if record.get("kind") != "bench-history":
            continue
        name = str(record.get("benchmark"))
        if benchmark is not None and name != benchmark:
            continue
        groups.setdefault((name, str(record.get("mode"))), []).append(record)

    verdicts: List[RegressVerdict] = []
    notes: List[str] = []
    for (name, mode), group in sorted(groups.items()):
        current = group[-1]
        baseline: Optional[Dict[str, object]] = None
        if baseline_offset is not None:
            index = len(group) - 1 - baseline_offset
            if 0 <= index < len(group) - 1:
                baseline = group[index]
            else:
                notes.append(f"{name}/{mode}: no record at baseline offset {baseline_offset}")
                continue
        else:
            digest = current.get("config_digest")
            for candidate in reversed(group[:-1]):
                if candidate.get("config_digest") == digest:
                    baseline = candidate
                    break
            if baseline is None:
                notes.append(
                    f"{name}/{mode}: no earlier record with config digest {digest}; "
                    "nothing to compare"
                )
                continue
        verdicts.extend(compare_records(baseline, current, min_noise))
    return verdicts, notes
