"""``python -m repro.obs`` — summarize, flame, regress, diff, validate.

Subcommands:

* ``summarize TRACE [TRACE ...]`` — top spans by total tick-span (with
  per-phase ``peak_rss_kb`` when the trace has RSS stamps),
  counter/gauge tables, histogram percentile rows. Several traces (or
  one fleet-merged multi-segment file) are merged: counters sum, gauges
  average, histograms combine count/min/max.
* ``flame TRACE`` — render the span tree as a text (or ``--json``)
  flamegraph with self/total cost columns and a ``--top N`` hot-path
  ranking; uses the deterministic cost-model attrs when the trace was
  recorded with ``--profile``, tick spans otherwise. (This replaced
  the old ``summarize --hot-phases`` view.)
* ``regress HISTORY`` — diff the newest ``BENCH_HISTORY.jsonl`` record
  against its baseline with noise-floor-aware verdicts; exits 1 only
  on off-noise-floor regressions.
* ``diff OLD NEW`` — compare the instrument coverage and span names of
  two traces; exits 1 when NEW *lost* coverage (a span name or metric
  series present in OLD is gone), the regression CI should catch.
* ``validate TRACE [TRACE ...]`` — schema-check traces; exits 1 on any
  failure.

Exit codes: 0 success, 1 validation failure / coverage or perf
regression, 2 usage error. Mirrors the ``repro.bench`` CLI conventions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.flame import FlameNode, build_forest, flame_payload, render_text
from repro.obs.history import DEFAULT_MIN_NOISE, read_history, regress
from repro.obs.metrics import format_metric
from repro.obs.schema import validate_trace
from repro.obs.trace import read_trace_lines, split_segments

_SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...], str]


def _load(path: str) -> List[object]:
    lines = read_trace_lines(path)
    errors = validate_trace(lines)
    if errors:
        raise ValueError("\n".join(f"{path}: {error}" for error in errors))
    return lines


def _span_lines(lines: Sequence[object]) -> List[Dict[str, object]]:
    return [
        line
        for line in lines
        if isinstance(line, dict) and line.get("kind") == "span"
    ]


def _metric_entries(lines: Sequence[object]) -> List[Dict[str, object]]:
    tail = lines[-1]
    assert isinstance(tail, dict)
    snapshot = tail["snapshot"]
    assert isinstance(snapshot, dict)
    metrics = snapshot["metrics"]
    assert isinstance(metrics, list)
    return [entry for entry in metrics if isinstance(entry, dict)]


def _all_snapshot_entries(lines: Sequence[object]) -> List[List[Dict[str, object]]]:
    """Metric entries of *every* snapshot line (one list per segment)."""
    collected: List[List[Dict[str, object]]] = []
    for line in lines:
        if isinstance(line, dict) and line.get("kind") == "snapshot":
            snapshot = line.get("snapshot")
            if isinstance(snapshot, dict) and isinstance(snapshot.get("metrics"), list):
                collected.append(
                    [entry for entry in snapshot["metrics"] if isinstance(entry, dict)]
                )
    return collected


def _merge_entries(snapshots: List[List[Dict[str, object]]]) -> List[Dict[str, object]]:
    """Merge per-replica snapshots: counters sum, gauges average,
    histograms combine count/sum/min/max (per-segment percentiles are
    not mergeable and are dropped).

    A single snapshot passes through untouched, so summarizing one
    ordinary trace prints exactly what it always has.
    """
    if len(snapshots) == 1:
        return snapshots[0]
    merged: Dict[_SeriesKey, Dict[str, object]] = {}
    gauge_counts: Dict[_SeriesKey, int] = defaultdict(int)
    for entries in snapshots:
        for entry in entries:
            key = _series_key(entry)
            kind = key[2]
            slot = merged.get(key)
            if slot is None:
                slot = {k: v for k, v in entry.items() if k != "percentiles"}
                merged[key] = slot
                if kind == "gauge":
                    gauge_counts[key] = 1
                continue
            if kind == "counter":
                slot["value"] = (slot.get("value") or 0) + (entry.get("value") or 0)
            elif kind == "gauge":
                slot["value"] = (slot.get("value") or 0) + (entry.get("value") or 0)
                gauge_counts[key] += 1
            else:
                slot["count"] = (slot.get("count") or 0) + (entry.get("count") or 0)
                slot["sum"] = (slot.get("sum") or 0) + (entry.get("sum") or 0)
                for pick, field_ in ((min, "min"), (max, "max")):
                    ours, theirs = slot.get(field_), entry.get(field_)
                    if theirs is None:
                        continue
                    slot[field_] = theirs if ours is None else pick(ours, theirs)
    for key, count in gauge_counts.items():
        if count > 1:
            value = merged[key].get("value")
            assert isinstance(value, (int, float))
            merged[key]["value"] = value / count
    return [merged[key] for key in sorted(merged)]


def _series_key(entry: Dict[str, object]) -> _SeriesKey:
    labels = entry.get("labels")
    label_items = tuple(sorted(labels.items())) if isinstance(labels, dict) else ()
    return (str(entry.get("name")), label_items, str(entry.get("type")))


def _entry_display(entry: Dict[str, object]) -> str:
    labels = entry.get("labels")
    return format_metric(str(entry.get("name")), labels if isinstance(labels, dict) else {})


def _fmt_number(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _sweep_view(paths: Sequence[str]) -> int:
    """One table for a whole sweep: the fleet roll-up + per-replica rows.

    A sweep trace (``python -m repro sweep --trace``) leads with a
    fleet-level segment whose header meta carries the orchestrator's
    cost ledger and whose snapshot carries the ``fleet.*`` counters;
    every later segment is one replica. Ordinary multi-segment fleet
    traces (no fleet segment) still get the per-replica table.
    """
    fleet_meta: Optional[Dict[str, object]] = None
    fleet_entries: List[Dict[str, object]] = []
    rows: List[Tuple[str, str, str, int, int]] = []
    segments = 0
    for path in paths:
        lines = _load(path)
        for segment in split_segments(lines):
            segments += 1
            header = segment[0]
            assert isinstance(header, dict)
            meta = header.get("meta")
            meta = meta if isinstance(meta, dict) else {}
            fleet_block = meta.get("fleet")
            if isinstance(fleet_block, dict):
                fleet_meta = fleet_block
                fleet_entries = [
                    entry
                    for entries in _all_snapshot_entries(segment)
                    for entry in entries
                ]
                continue
            span_lines = _span_lines(segment)
            ticks = 0
            for span in span_lines:
                start, end = span.get("start_tick"), span.get("end_tick")
                if isinstance(start, int) and isinstance(end, int):
                    ticks += end - start
            replica = meta.get("replica") or header.get("replica") or "?"
            reused = meta.get("prefix_reused")
            rows.append(
                (
                    str(replica),
                    str(meta.get("arm", "-")),
                    "yes" if reused else ("no" if reused is not None else "-"),
                    len(span_lines),
                    ticks,
                )
            )
    sections: List[str] = []
    if fleet_meta is not None:
        avoided = fleet_meta.get("build_cost_avoided_frac")
        avoided_text = (
            f"{float(avoided):.1%}" if isinstance(avoided, (int, float)) else "-"
        )
        sections.append(
            f"Sweep: {fleet_meta.get('replica_count')} replicas  "
            f"strategy={fleet_meta.get('strategy')}  "
            f"groups={fleet_meta.get('prefix_groups')}  "
            f"phase builds {fleet_meta.get('phase_builds')}/"
            f"{fleet_meta.get('phase_units')}  "
            f"build cost avoided {avoided_text}"
        )
    else:
        sections.append(f"Sweep: {segments} trace segment(s), no fleet roll-up segment")
    counter_rows = [
        (_entry_display(entry), entry.get("value"))
        for entry in fleet_entries
        if entry.get("type") in ("counter", "gauge")
    ]
    if counter_rows:
        width = max(len(display) for display, _ in counter_rows)
        body = ["Fleet counters:"] + [
            f"  {display:<{width}}  {_fmt_number(value)}" for display, value in counter_rows
        ]
        sections.append("\n".join(body))
    if rows:
        name_width = max(max(len(row[0]) for row in rows), len("replica"))
        arm_width = max(max(len(row[1]) for row in rows), len("arm"))
        body = ["Replicas:"]
        body.append(
            f"  {'replica':<{name_width}}  {'arm':<{arm_width}}  reused  spans  ticks"
        )
        for name, arm, reused, spans, ticks in rows:
            body.append(
                f"  {name:<{name_width}}  {arm:<{arm_width}}  "
                f"{reused:<6}  {spans:>5}  {ticks}"
            )
        sections.append("\n".join(body))
    print("\n\n".join(sections))
    return 0


def cmd_summarize(args: argparse.Namespace) -> int:
    if getattr(args, "sweep", False):
        return _sweep_view(args.traces)
    spans: List[Dict[str, object]] = []
    snapshots: List[List[Dict[str, object]]] = []
    for path in args.traces:
        lines = _load(path)
        spans.extend(_span_lines(lines))
        snapshots.extend(_all_snapshot_entries(lines))
    entries = _merge_entries(snapshots)

    if len(args.traces) == 1 and len(snapshots) == 1:
        title = f"Trace: {args.traces[0]}  ({len(spans)} spans)"
    else:
        title = (
            f"Merged {len(snapshots)} trace segment(s) from "
            f"{len(args.traces)} file(s)  ({len(spans)} spans)"
        )
    sections: List[str] = [title]

    by_name: Dict[str, List[int]] = defaultdict(list)
    rss_by_name: Dict[str, int] = {}
    for span in spans:
        start, end = span.get("start_tick"), span.get("end_tick")
        assert isinstance(start, int) and isinstance(end, int)
        name = str(span.get("name"))
        by_name[name].append(end - start)
        rss = span.get("peak_rss_kb")
        if isinstance(rss, int) and not isinstance(rss, bool):
            # ru_maxrss is a process high-water mark: the per-phase
            # attribution is "the peak as of this phase's close", so the
            # max across same-named spans is the honest roll-up
            rss_by_name[name] = max(rss_by_name.get(name, 0), rss)
    ranked = sorted(by_name.items(), key=lambda item: (-sum(item[1]), item[0]))
    if args.top > 0:
        ranked = ranked[: args.top]
    if ranked:
        rows = ["Top spans by total tick-span:"]
        width = max(len(name) for name, _ in ranked)
        for name, tick_spans in ranked:
            row = (
                f"  {name:<{width}}  count={len(tick_spans)}"
                f"  ticks={sum(tick_spans)}  max={max(tick_spans)}"
            )
            if name in rss_by_name:
                row += f"  peak_rss_kb={rss_by_name[name]}"
            rows.append(row)
        sections.append("\n".join(rows))

    for kind, title in (("counter", "Counters:"), ("gauge", "Gauges:")):
        rows = [
            (_entry_display(entry), entry.get("value"))
            for entry in entries
            if entry.get("type") == kind
        ]
        if rows:
            width = max(len(display) for display, _ in rows)
            body = [title] + [
                f"  {display:<{width}}  {_fmt_number(value)}" for display, value in rows
            ]
            sections.append("\n".join(body))

    histogram_rows: List[str] = []
    for entry in entries:
        if entry.get("type") != "histogram":
            continue
        percentiles = entry.get("percentiles")
        if isinstance(percentiles, dict):
            stats = "  ".join(
                f"{key}={_fmt_number(value)}" for key, value in sorted(percentiles.items())
            )
            stats += f"  min={_fmt_number(entry.get('min'))}  max={_fmt_number(entry.get('max'))}"
        elif entry.get("count"):
            # merged histograms: percentiles are per-segment and dropped
            stats = f"min={_fmt_number(entry.get('min'))}  max={_fmt_number(entry.get('max'))}"
        else:
            stats = "(empty)"
        histogram_rows.append(
            f"  {_entry_display(entry)}  count={entry.get('count')}  {stats}"
        )
    if histogram_rows:
        sections.append("\n".join(["Histograms:"] + histogram_rows))

    print("\n\n".join(sections))
    return 0


def cmd_flame(args: argparse.Namespace) -> int:
    lines = _load(args.trace)
    segments: List[Tuple[str, str, List[FlameNode]]] = []
    for segment in split_segments(lines):
        header = segment[0]
        assert isinstance(header, dict)
        meta = header.get("meta")
        meta = meta if isinstance(meta, dict) else {}
        replica = str(meta.get("replica") or header.get("replica") or "")
        basis, roots = build_forest(_span_lines(segment))
        segments.append((replica, basis, roots))
    if args.json:
        print(json.dumps(flame_payload(segments), indent=2, sort_keys=True))
        return 0
    blocks: List[str] = []
    for replica, basis, roots in segments:
        text = render_text(basis, roots, top=args.top)
        if len(segments) > 1:
            text = f"segment {replica or '?'}:\n{text}"
        blocks.append(text)
    print("\n".join(blocks), end="")
    return 0


def cmd_regress(args: argparse.Namespace) -> int:
    records = read_history(args.history)
    if not records:
        print(f"{args.history}: no history records; nothing to compare")
        return 0
    verdicts, notes = regress(
        records,
        benchmark=args.benchmark,
        baseline_offset=args.baseline,
        min_noise=args.min_noise,
    )
    for note in notes:
        print(f"note: {note}")
    failed = 0
    for verdict in verdicts:
        if verdict.regressed:
            failed += 1
            flag = "REGRESSED"
        elif verdict.status == "improved":
            flag = "improved"
        else:
            flag = "ok"
        print(
            f"{verdict.benchmark}/{verdict.mode} {verdict.result}: "
            f"best {verdict.baseline_best_s:.6g}s -> {verdict.current_best_s:.6g}s  "
            f"ratio={verdict.ratio:.3f}  noise<={verdict.noise:.3f}  {flag}"
        )
    if not verdicts:
        print("no comparable record pairs")
    elif failed:
        print(f"{failed} regression(s) beyond the noise floor")
    return 1 if failed else 0


def cmd_diff(args: argparse.Namespace) -> int:
    old_lines, new_lines = _load(args.old), _load(args.new)
    old_metrics = {_series_key(entry): entry for entry in _metric_entries(old_lines)}
    new_metrics = {_series_key(entry): entry for entry in _metric_entries(new_lines)}
    old_spans = {str(span.get("name")) for span in _span_lines(old_lines)}
    new_spans = {str(span.get("name")) for span in _span_lines(new_lines)}

    removed_spans = sorted(old_spans - new_spans)
    added_spans = sorted(new_spans - old_spans)
    removed_metrics = sorted(set(old_metrics) - set(new_metrics))
    added_metrics = sorted(set(new_metrics) - set(old_metrics))

    for name in removed_spans:
        print(f"- span {name}")
    for name in added_spans:
        print(f"+ span {name}")
    for key in removed_metrics:
        print(f"- metric {_entry_display(old_metrics[key])}")
    for key in added_metrics:
        print(f"+ metric {_entry_display(new_metrics[key])}")

    changed = 0
    for key in sorted(set(old_metrics) & set(new_metrics)):
        old_entry, new_entry = old_metrics[key], new_metrics[key]
        if key[2] == "histogram":
            old_value, new_value = old_entry.get("count"), new_entry.get("count")
            what = "count"
        else:
            old_value, new_value = old_entry.get("value"), new_entry.get("value")
            what = "value"
        if old_value != new_value:
            changed += 1
            print(
                f"~ metric {_entry_display(new_entry)} "
                f"{what} {_fmt_number(old_value)} -> {_fmt_number(new_value)}"
            )

    if not (removed_spans or added_spans or removed_metrics or added_metrics or changed):
        print("traces are equivalent (identical coverage and values)")
    if removed_spans or removed_metrics:
        print(
            f"coverage regression: {len(removed_spans)} span name(s) and "
            f"{len(removed_metrics)} metric series lost"
        )
        return 1
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    failures = 0
    for path in args.traces:
        try:
            lines = read_trace_lines(path)
        except (OSError, ValueError) as exc:
            print(f"{path}: {exc}")
            failures += 1
            continue
        errors = validate_trace(lines)
        if errors:
            failures += 1
            for error in errors:
                print(f"{path}: {error}")
        else:
            print(f"{path}: ok ({len(_span_lines(lines))} spans)")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize, diff, and validate repro.obs JSONL traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser("summarize", help="report top spans, counters, histograms")
    summarize.add_argument(
        "traces",
        nargs="+",
        help="JSONL trace path(s); several (or a fleet-merged file) are merged",
    )
    summarize.add_argument(
        "--top",
        type=int,
        default=20,
        help="span rows to show (default 20; 0 or less shows all)",
    )
    summarize.add_argument(
        "--sweep",
        action="store_true",
        help=(
            "sweep view: print the fleet roll-up segment (strategy, phase "
            "ledger, fleet.* counters) plus one row per replica segment"
        ),
    )

    flame = sub.add_parser(
        "flame",
        help="render the span tree as a flamegraph with self/total costs",
    )
    flame.add_argument("trace", help="JSONL trace path (single or fleet-merged)")
    flame.add_argument(
        "--top",
        type=int,
        default=10,
        help="hot spans to rank by self cost (default 10; 0 or less shows all)",
    )
    flame.add_argument(
        "--json",
        action="store_true",
        help="emit the flame tree as a JSON payload instead of text",
    )

    regress_cmd = sub.add_parser(
        "regress",
        help="diff the newest BENCH_HISTORY.jsonl record against a baseline",
    )
    regress_cmd.add_argument("history", help="path to BENCH_HISTORY.jsonl")
    regress_cmd.add_argument(
        "--benchmark", default=None, help="only check this scenario (default: all)"
    )
    regress_cmd.add_argument(
        "--min-noise",
        type=float,
        default=DEFAULT_MIN_NOISE,
        help=(
            "smallest relative shift treated as signal (default "
            f"{DEFAULT_MIN_NOISE}); measured cv/runner-up gaps widen the band"
        ),
    )
    regress_cmd.add_argument(
        "--baseline",
        type=int,
        default=None,
        help=(
            "compare against the record N places before the newest instead "
            "of the latest same-config-digest record"
        ),
    )

    diff = sub.add_parser("diff", help="compare coverage/values of two traces")
    diff.add_argument("old", help="baseline trace")
    diff.add_argument("new", help="candidate trace")

    validate = sub.add_parser("validate", help="schema-check one or more traces")
    validate.add_argument("traces", nargs="+", help="paths to JSONL traces")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "summarize": cmd_summarize,
        "flame": cmd_flame,
        "regress": cmd_regress,
        "diff": cmd_diff,
        "validate": cmd_validate,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # the reader (e.g. `summarize ... | head`) went away mid-write;
        # point stdout at devnull so the interpreter's exit flush is quiet
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1
    except (OSError, ValueError) as exc:
        print(f"error: {exc}")
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
