"""Deterministic observability: metrics, tick-pinned spans, JSONL traces.

The simulator's determinism contract (DESIGN.md §7) forbids ambient
inputs, which historically also meant the pipeline ran blind: progress
was a handful of stderr prints and the bench harness captured only
end-to-end wall time. ``repro.obs`` is the telemetry substrate that
fixes this without perturbing determinism:

* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms keyed by dotted names with labels, snapshotting to a
  schema-versioned JSON payload.
* :mod:`repro.obs.spans` — phase/span tracing pinned to the simulation
  clock (tick-stamped start/end, nested). Optional wall-clock durations
  come only from :mod:`repro.obs.walltime`, the one module waived from
  the DET003 wall-clock lint rule; they are stripped by
  :func:`repro.obs.trace.canonical_lines` so canonical traces are a
  pure function of the seed.
* :mod:`repro.obs.facade` — :class:`Observability`, the handle threaded
  through the study; disabled instances hand out no-op instruments so
  instrumented hot paths cost one dead method call.
* :mod:`repro.obs.trace` / :mod:`repro.obs.schema` — the JSONL trace
  sink and the pure-python validators CI runs over emitted traces.
* :mod:`repro.obs.prof` — the deterministic cost-model profiler:
  work-unit counters (RNG derivations, log appends, graph edge ops,
  classifier comparisons, scheduler agent-runs) charged to the
  enclosing span as ``cost_total``/``cost_self`` attrs.
* :mod:`repro.obs.flame` — flamegraph rendering over the span cost
  tree (text and JSON).
* :mod:`repro.obs.history` — the append-only ``BENCH_HISTORY.jsonl``
  store and noise-floor-aware regression verdicts.
* ``python -m repro.obs`` (:mod:`repro.obs.cli`) — summarize a trace,
  diff two traces for coverage regressions, validate schemas, render
  flamegraphs, gate on bench-history regressions.

Telemetry is strictly write-only from the simulation's perspective:
nothing in this package is ever read back by simulation code, which is
why obs-on and obs-off runs are bit-identical (test-enforced by the
fast-path equivalence suite).
"""

from __future__ import annotations

from repro.obs.facade import NULL_OBS, Observability
from repro.obs.flame import FLAME_SCHEMA_VERSION, FlameNode, build_forest, flame_payload
from repro.obs.history import (
    HISTORY_FILE_NAME,
    HISTORY_SCHEMA_VERSION,
    RegressVerdict,
    append_history,
    history_record,
    read_history,
    regress,
)
from repro.obs.metrics import (
    SNAPSHOT_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.prof import COST_SELF_ATTR, COST_TOTAL_ATTR, CostProfiler, strip_cost_attrs
from repro.obs.report import ConsoleReporter
from repro.obs.schema import TRACE_SCHEMA_VERSION, validate_snapshot, validate_trace
from repro.obs.spans import Span, SpanListener, Tracer
from repro.obs.trace import (
    canonical_lines,
    label_replica,
    read_trace_lines,
    split_segments,
    trace_lines,
    write_trace,
)

__all__ = [
    "COST_SELF_ATTR",
    "COST_TOTAL_ATTR",
    "FLAME_SCHEMA_VERSION",
    "HISTORY_FILE_NAME",
    "HISTORY_SCHEMA_VERSION",
    "NULL_OBS",
    "SNAPSHOT_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "ConsoleReporter",
    "CostProfiler",
    "Counter",
    "FlameNode",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "RegressVerdict",
    "Span",
    "SpanListener",
    "Tracer",
    "append_history",
    "build_forest",
    "canonical_lines",
    "flame_payload",
    "history_record",
    "label_replica",
    "read_history",
    "read_trace_lines",
    "regress",
    "split_segments",
    "strip_cost_attrs",
    "trace_lines",
    "validate_snapshot",
    "validate_trace",
    "write_trace",
]
