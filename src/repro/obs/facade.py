"""The :class:`Observability` handle threaded through the pipeline.

One object bundles the metrics registry and the span tracer so
instrumented layers take a single optional ``obs`` parameter. Two
disciplines keep it deterministic and free when unused:

* **Null-object pattern** — a disabled handle (``enabled=False``, or
  the shared :data:`NULL_OBS` default used by un-wired constructors)
  hands out shared no-op instruments and a null span context. Call
  sites resolve instruments once at construction time, so the hot-path
  cost of disabled observability is a dead attribute call — never an
  ``if``.
* **Write-only telemetry** — simulation code only ever writes to the
  handle; nothing reads metrics back into control flow. That is what
  makes obs-on and obs-off runs bit-identical (test-enforced).
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.obs import trace as trace_mod
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.prof import CostProfiler
from repro.obs.spans import Span, SpanListener, Tracer


class Observability:
    """Metrics + tracing behind one enable switch.

    ``profile=True`` attaches a :class:`~repro.obs.prof.CostProfiler`
    to the tracer: every span closed thereafter carries deterministic
    ``cost_total``/``cost_self`` attrs. The profiler only *adds* span
    attrs — metrics and control flow are untouched, so profiled and
    unprofiled runs produce bit-identical payloads (test-enforced).
    """

    def __init__(
        self,
        enabled: bool = True,
        tick_source: Optional[Callable[[], int]] = None,
        wall_source: Optional[Callable[[], float]] = None,
        rss_source: Optional[Callable[[], int]] = None,
        profile: bool = False,
    ) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(
            tick_source=tick_source, wall_source=wall_source, rss_source=rss_source
        )
        self.profiler: Optional[CostProfiler] = None
        if profile and enabled:
            self.profiler = CostProfiler(self.metrics)
            self.tracer.add_listener(self.profiler)

    def __getstate__(self) -> Dict[str, object]:
        # plain dict capture; the asymmetry lives in the Tracer, which
        # drops its listeners (the profiler among them) on pickle
        return dict(self.__dict__)

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Re-attach the profiler listener after unpickling.

        :class:`Tracer` drops its listeners on pickle (they are
        per-process wiring); the profiler, however, is part of the
        deterministic run configuration and must survive a snapshot
        restore, so the handle re-registers it here.
        """
        self.__dict__.update(state)
        self.__dict__.setdefault("profiler", None)
        if self.profiler is not None:
            self.tracer.add_listener(self.profiler)

    def bind_tick_source(self, tick_source: Callable[[], int]) -> None:
        """Pin span timestamps to a simulation clock (e.g. SimClock.now)."""
        self.tracer.bind_tick_source(tick_source)

    def add_listener(self, listener: SpanListener) -> None:
        """Attach a live span observer (console reporters and the like)."""
        self.tracer.add_listener(listener)

    # -- instruments ----------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        return self.metrics.counter(name, **labels) if self.enabled else NULL_COUNTER

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self.metrics.gauge(name, **labels) if self.enabled else NULL_GAUGE

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self.metrics.histogram(name, **labels) if self.enabled else NULL_HISTOGRAM

    def bound_counter(self, name: str, **labels: str) -> Counter:
        """A counter handle pre-resolved for a batched hot loop.

        Same instrument as :meth:`counter`; the distinct spelling marks
        call sites that resolve once and then ``handle.add(n)`` per
        batch (DESIGN.md §15).
        """
        return self.metrics.bound_counter(name, **labels) if self.enabled else NULL_COUNTER

    # -- spans ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Optional[Span]]:
        """Open a phase span; yields ``None`` when disabled."""
        if not self.enabled:
            yield None
            return
        with self.tracer.span(name, **attrs) as record:
            yield record

    # -- trace sink -----------------------------------------------------

    def trace_lines(self, meta: Optional[Dict[str, object]] = None) -> List[Dict[str, object]]:
        """JSON-ready trace lines (header, spans, snapshot)."""
        return trace_mod.trace_lines(self, meta)

    def dump_trace(
        self, path: Union[str, Path], meta: Optional[Dict[str, object]] = None
    ) -> Path:
        """Write the JSONL trace for this handle to ``path``."""
        return trace_mod.write_trace(path, self, meta)


#: shared disabled handle — the default for constructors not wired by a Study
NULL_OBS = Observability(enabled=False)
