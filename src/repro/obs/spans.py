"""Tick-pinned phase spans.

A span marks one phase of the pipeline (honeypot phase, measurement
window, a sweep, an intervention, ...) with its start and end stamped
in **simulation ticks**, never wall time. Nesting is tracked with an
explicit stack, so a trace reconstructs the phase tree exactly:

    honeypot-phase
      register-honeypots
    measurement-window
      sweep
    intervention
      calibrate
      sweep

Span identifiers are sequential integers in open order, and spans are
recorded in *completion* order — both pure functions of control flow,
so two runs of the same seeded config emit byte-identical span streams.

Wall-clock durations and RSS high-water marks are opt-in: a tracer
built with a ``wall_source`` (the CLI threads
:func:`repro.obs.walltime.read_wall_seconds` through when asked)
attaches a ``wall_s`` field to each span, and one built with an
``rss_source`` (:func:`repro.obs.walltime.read_peak_rss_kb`) stamps
``peak_rss_kb`` at span close. Those are the *only* nondeterministic
outputs and both are stripped by
:func:`repro.obs.trace.canonical_lines` before trace comparisons.

Listeners observe span starts/ends live; the CLI's ``--verbose``
console reporter is one.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple


def _zero_tick() -> int:
    return 0


@dataclass
class Span:
    """One tick-stamped phase. ``end_tick`` is set when the span closes."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_tick: int
    depth: int
    attrs: Dict[str, object] = field(default_factory=dict)
    end_tick: Optional[int] = None
    wall_s: Optional[float] = None
    peak_rss_kb: Optional[int] = None

    @property
    def tick_span(self) -> int:
        """Ticks elapsed inside the span (0 while still open)."""
        if self.end_tick is None:
            return 0
        return self.end_tick - self.start_tick

    def to_line(self) -> Dict[str, object]:
        """The JSONL trace record; ``wall_s`` only when measured."""
        line: Dict[str, object] = {
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_tick": self.start_tick,
            "end_tick": self.end_tick,
            "attrs": dict(self.attrs),
        }
        if self.wall_s is not None:
            line["wall_s"] = self.wall_s
        if self.peak_rss_kb is not None:
            line["peak_rss_kb"] = self.peak_rss_kb
        return line


class SpanListener:
    """Live span observer; subclass and override either hook."""

    def span_started(self, span: Span) -> None:
        return None

    def span_ended(self, span: Span) -> None:
        return None


class Tracer:
    """Opens/closes spans against a bound tick source."""

    def __init__(
        self,
        tick_source: Optional[Callable[[], int]] = None,
        wall_source: Optional[Callable[[], float]] = None,
        rss_source: Optional[Callable[[], int]] = None,
    ) -> None:
        self._tick_source: Callable[[], int] = tick_source or _zero_tick
        self._wall_source = wall_source
        self._rss_source = rss_source
        self._stack: List[Span] = []
        self._finished: List[Span] = []
        self._next_id = 0
        self._listeners: List[SpanListener] = []

    def bind_tick_source(self, tick_source: Callable[[], int]) -> None:
        """Late-bind the simulation clock (the Study owns the clock)."""
        self._tick_source = tick_source

    # -- snapshot support ----------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        """Span history travels through a snapshot; wiring does not.

        The tick source is a closure over the owning study's clock and
        the listeners hold live I/O handles — neither serializes, and
        both are per-process wiring rather than trace state. Whoever
        restores a tracer must call :meth:`bind_tick_source` again
        (``Study.__setstate__`` does).
        """
        state = dict(self.__dict__)
        state["_tick_source"] = None
        state["_wall_source"] = None
        state["_rss_source"] = None
        state["_listeners"] = []
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_rss_source", None)
        if self._tick_source is None:  # type: ignore[redundant-expr]
            self._tick_source = _zero_tick

    def add_listener(self, listener: SpanListener) -> None:
        self._listeners.append(listener)

    @property
    def finished(self) -> Tuple[Span, ...]:
        """Closed spans, in completion order."""
        return tuple(self._finished)

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        parent = self._stack[-1] if self._stack else None
        record = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_tick=self._tick_source(),
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self._next_id += 1
        wall_start = self._wall_source() if self._wall_source is not None else None
        self._stack.append(record)
        for listener in self._listeners:
            listener.span_started(record)
        try:
            yield record
        finally:
            self._stack.pop()
            record.end_tick = self._tick_source()
            if wall_start is not None and self._wall_source is not None:
                record.wall_s = self._wall_source() - wall_start
            if self._rss_source is not None:
                record.peak_rss_kb = self._rss_source()
            self._finished.append(record)
            for listener in self._listeners:
                listener.span_ended(record)
