"""Deterministic cost-model profiler: work units attributed to spans.

Wall-clock profiles are useless under the determinism contract — they
vary across hosts and are stripped from canonical traces. What *is*
stable is the count of work units the simulation executes: RNG stream
derivations, ActionLog appends and window queries, follower-graph edge
operations, classifier signature comparisons, scheduler agent-runs.
Those are already ordinary counters in the :class:`MetricsRegistry`;
the profiler turns them into a per-span cost tree.

Mechanics: :class:`CostProfiler` is a :class:`SpanListener`. On span
start it snapshots the per-kind counter totals; on span end it charges
the delta to the span — ``cost_total`` (everything inside the span,
children included) and ``cost_self`` (total minus the children's
totals) land in ``span.attrs`` and therefore in the trace line. Both
are pure functions of control flow, so the cost tree is byte-identical
across repeats, hosts, and worker counts — unlike ``wall_s`` /
``peak_rss_kb``, cost attrs survive :func:`~repro.obs.trace.canonical_lines`.

Counter-to-kind mapping lives in :data:`COST_KINDS`. The "rng" unit is
stream derivations/lookups (``util.rng.*``), not individual numpy
draws — counting draws would mean wrapping every Generator method,
which the hot paths cannot afford; derivations are the stable proxy
for "how much randomness machinery ran here".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, SpanListener

#: span attr carrying the inclusive per-kind cost dict
COST_TOTAL_ATTR = "cost_total"
#: span attr carrying the exclusive (self) per-kind cost dict
COST_SELF_ATTR = "cost_self"
#: every attr the profiler writes, for strip/equivalence helpers
COST_ATTRS = (COST_TOTAL_ATTR, COST_SELF_ATTR)

#: ``(kind, counter-name patterns)`` — a pattern ending in ``.`` is a
#: prefix match, anything else an exact match. Order fixes the kind
#: order everywhere downstream (cost dicts, flamegraph columns).
COST_KINDS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("rng", ("util.rng.",)),
    # "log_batch" counts rows routed through ActionLog.append_batch. It
    # must precede the "log" prefix entry: the counter lives under the
    # platform.actionlog namespace, and first-match order is what keeps
    # it out of the "log" bucket. Rows appended via a batch still charge
    # the ordinary per-row "log" units (appends/column_appends), so the
    # "log" kind is identical whether batching is on or off; "log_batch"
    # measures the batching machinery itself and — like "sched", which
    # only the wheel emits — is zero when the feature is off.
    ("log_batch", ("platform.actionlog.batch_rows",)),
    ("log", ("platform.actionlog.",)),
    ("graph", ("platform.graph.",)),
    ("classifier", ("detection.classifier.comparisons", "detection.classifier.memo")),
    ("sched", ("core.scheduler.agent_runs",)),
)

#: kind labels in canonical order
KIND_NAMES: Tuple[str, ...] = tuple(kind for kind, _patterns in COST_KINDS)


def classify_counter(name: str) -> str | None:
    """The cost kind a counter feeds, or ``None`` if it is not a cost."""
    for kind, patterns in COST_KINDS:
        for pattern in patterns:
            if name == pattern or (pattern.endswith(".") and name.startswith(pattern)):
                return kind
    return None


class _Frame:
    """Per-open-span bookkeeping: baseline totals + children's charges."""

    __slots__ = ("span_id", "baseline", "children")

    def __init__(self, span_id: int, baseline: Dict[str, int]) -> None:
        self.span_id = span_id
        self.baseline = baseline
        self.children: Dict[str, int] = {kind: 0 for kind in KIND_NAMES}


class CostProfiler(SpanListener):
    """Attributes registry counter deltas to the enclosing span.

    Attach via ``tracer.add_listener`` *before* the spans of interest
    open; a span that was already open when the profiler attached (e.g.
    right after a snapshot restore) is left uncharged rather than
    charged a bogus delta.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._frames: List[_Frame] = []
        #: counter name -> kind (or None), memoized; registry keys are
        #: append-only so entries never go stale
        self._kind_index: Dict[str, str | None] = {}

    def _totals(self) -> Dict[str, int]:
        totals = {kind: 0 for kind in KIND_NAMES}
        for name, value in self._registry.counter_items():
            kind = self._kind_index.get(name, "")
            if kind == "":
                kind = classify_counter(name)
                self._kind_index[name] = kind
            if kind is not None:
                totals[kind] += value
        return totals

    def span_started(self, span: Span) -> None:
        self._frames.append(_Frame(span.span_id, self._totals()))

    def span_ended(self, span: Span) -> None:
        if not self._frames or self._frames[-1].span_id != span.span_id:
            # the span opened before we attached; nothing to charge
            return
        frame = self._frames.pop()
        now = self._totals()
        total = {kind: now[kind] - frame.baseline[kind] for kind in KIND_NAMES}
        self_cost = {kind: total[kind] - frame.children[kind] for kind in KIND_NAMES}
        span.attrs[COST_TOTAL_ATTR] = total
        span.attrs[COST_SELF_ATTR] = self_cost
        if self._frames:
            parent = self._frames[-1]
            for kind in KIND_NAMES:
                parent.children[kind] += total[kind]


def strip_cost_attrs(lines: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Copies of ``lines`` with profiler attrs removed from span lines.

    The equivalence suite compares a profiled trace against a plain one:
    after stripping, the two must be byte-identical.
    """
    stripped: List[Dict[str, object]] = []
    for line in lines:
        attrs = line.get("attrs")
        if line.get("kind") == "span" and isinstance(attrs, dict):
            kept = {key: value for key, value in attrs.items() if key not in COST_ATTRS}
            stripped.append({**line, "attrs": kept})
        else:
            stripped.append(dict(line))
    return stripped
