"""Pure-python validators for obs payloads.

Same philosophy as :mod:`repro.bench.schema`: no ``jsonschema``
dependency, just explicit checks that return a list of human-readable
error strings (empty means valid). Two payload shapes:

* **snapshot** — the metrics registry dump embedded in traces and
  ``BENCH_*.json`` files (``schema_version``
  :data:`repro.obs.metrics.SNAPSHOT_SCHEMA_VERSION`).
* **trace** — a parsed JSONL trace: a header line, zero or more span
  lines, and a final snapshot line (``schema_version``
  :data:`TRACE_SCHEMA_VERSION` on the header).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.obs.metrics import SNAPSHOT_SCHEMA_VERSION

#: bumped whenever the JSONL trace layout changes incompatibly
TRACE_SCHEMA_VERSION = 1

_METRIC_TYPES = ("counter", "gauge", "histogram")


def _check(condition: bool, message: str, errors: List[str]) -> bool:
    if not condition:
        errors.append(message)
    return condition


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_histogram_entry(entry: Dict[str, object], where: str, errors: List[str]) -> None:
    count = entry.get("count")
    if not _check(isinstance(count, int) and not isinstance(count, bool) and count >= 0,
                  f"{where}: histogram count must be a non-negative int", errors):
        return
    _check(_is_number(entry.get("sum")), f"{where}: histogram sum must be a number", errors)
    empty = count == 0
    for key in ("min", "max"):
        value = entry.get(key)
        if empty:
            _check(value is None, f"{where}: {key} must be null for an empty histogram", errors)
        else:
            _check(_is_number(value), f"{where}: {key} must be a number", errors)
    percentiles = entry.get("percentiles")
    if empty:
        _check(percentiles is None,
               f"{where}: percentiles must be null for an empty histogram", errors)
    elif _check(isinstance(percentiles, dict) and bool(percentiles),
                f"{where}: percentiles must be a non-empty object", errors):
        assert isinstance(percentiles, dict)
        for pct_key, pct_value in percentiles.items():
            _check(isinstance(pct_key, str) and pct_key.startswith("p"),
                   f"{where}: percentile key {pct_key!r} must look like 'p50'", errors)
            _check(_is_number(pct_value),
                   f"{where}: percentile {pct_key} must be a number", errors)


def validate_snapshot(payload: object) -> List[str]:
    """Validate a metrics snapshot; returns error strings (empty = ok)."""
    errors: List[str] = []
    if not _check(isinstance(payload, dict), "snapshot: payload must be an object", errors):
        return errors
    assert isinstance(payload, dict)
    _check(payload.get("schema_version") == SNAPSHOT_SCHEMA_VERSION,
           f"snapshot: schema_version must be {SNAPSHOT_SCHEMA_VERSION}", errors)
    metrics = payload.get("metrics")
    if not _check(isinstance(metrics, list), "snapshot: metrics must be a list", errors):
        return errors
    assert isinstance(metrics, list)
    for index, entry in enumerate(metrics):
        where = f"snapshot.metrics[{index}]"
        if not _check(isinstance(entry, dict), f"{where}: must be an object", errors):
            continue
        assert isinstance(entry, dict)
        name = entry.get("name")
        _check(isinstance(name, str) and bool(name), f"{where}: name must be a non-empty str",
               errors)
        kind = entry.get("type")
        if not _check(kind in _METRIC_TYPES,
                      f"{where}: type must be one of {_METRIC_TYPES}", errors):
            continue
        labels = entry.get("labels")
        if _check(isinstance(labels, dict), f"{where}: labels must be an object", errors):
            assert isinstance(labels, dict)
            for label_key, label_value in labels.items():
                _check(isinstance(label_key, str) and isinstance(label_value, str),
                       f"{where}: labels must map str to str", errors)
        if kind == "counter":
            value = entry.get("value")
            _check(isinstance(value, int) and not isinstance(value, bool) and value >= 0,
                   f"{where}: counter value must be a non-negative int", errors)
        elif kind == "gauge":
            _check(_is_number(entry.get("value")), f"{where}: gauge value must be a number",
                   errors)
        else:
            _validate_histogram_entry(entry, where, errors)
    return errors


def _validate_segment(lines: Sequence[object], label: str, errors: List[str]) -> None:
    """Validate one header..snapshot segment, prefixing errors with ``label``."""
    if not _check(len(lines) >= 2,
                  f"{label}: expected at least a header and a snapshot line", errors):
        return

    header = lines[0]
    if _check(isinstance(header, dict) and header.get("kind") == "header",
              f"{label}[0]: first line must be the header", errors):
        assert isinstance(header, dict)
        _check(header.get("schema_version") == TRACE_SCHEMA_VERSION,
               f"{label}[0]: schema_version must be {TRACE_SCHEMA_VERSION}", errors)
        _check(isinstance(header.get("meta"), dict), f"{label}[0]: meta must be an object",
               errors)

    tail = lines[-1]
    if _check(isinstance(tail, dict) and tail.get("kind") == "snapshot",
              f"{label}[-1]: last line must be the metrics snapshot", errors):
        assert isinstance(tail, dict)
        for error in validate_snapshot(tail.get("snapshot")):
            errors.append(f"{label}[-1]: {error}")

    seen_ids = set()
    for index, line in enumerate(lines[1:-1], start=1):
        where = f"{label}[{index}]"
        if not _check(isinstance(line, dict) and line.get("kind") == "span",
                      f"{where}: interior lines must be spans", errors):
            continue
        assert isinstance(line, dict)
        span_id = line.get("id")
        if _check(isinstance(span_id, int) and not isinstance(span_id, bool),
                  f"{where}: id must be an int", errors):
            _check(span_id not in seen_ids, f"{where}: duplicate span id {span_id}", errors)
            seen_ids.add(span_id)
        parent = line.get("parent")
        _check(parent is None or (isinstance(parent, int) and not isinstance(parent, bool)),
               f"{where}: parent must be an int or null", errors)
        _check(isinstance(line.get("name"), str) and bool(line.get("name")),
               f"{where}: name must be a non-empty str", errors)
        _check(isinstance(line.get("attrs"), dict), f"{where}: attrs must be an object", errors)
        depth = line.get("depth")
        _check(isinstance(depth, int) and not isinstance(depth, bool) and depth >= 0,
               f"{where}: depth must be a non-negative int", errors)
        start_tick = line.get("start_tick")
        end_tick = line.get("end_tick")
        ticks_ok = True
        for key, value in (("start_tick", start_tick), ("end_tick", end_tick)):
            ticks_ok = _check(isinstance(value, int) and not isinstance(value, bool),
                              f"{where}: {key} must be an int", errors) and ticks_ok
        if ticks_ok:
            assert isinstance(start_tick, int) and isinstance(end_tick, int)
            _check(end_tick >= start_tick, f"{where}: end_tick must be >= start_tick", errors)
        if "wall_s" in line:
            _check(_is_number(line["wall_s"]), f"{where}: wall_s must be a number", errors)
        if "peak_rss_kb" in line:
            rss = line["peak_rss_kb"]
            _check(isinstance(rss, int) and not isinstance(rss, bool) and rss >= 0,
                   f"{where}: peak_rss_kb must be a non-negative int", errors)


def _split_segments(lines: Sequence[object]) -> List[List[object]]:
    # local copy of repro.obs.trace.split_segments — trace.py imports
    # this module, so importing it back would be a cycle
    segments: List[List[object]] = []
    for line in lines:
        if isinstance(line, dict) and line.get("kind") == "header":
            segments.append([line])
        elif segments:
            segments[-1].append(line)
        else:
            segments.append([line])
    return segments


def validate_trace(lines: Sequence[object]) -> List[str]:
    """Validate parsed JSONL trace lines; returns error strings (empty = ok).

    A single-run trace is one header..snapshot segment. A fleet-merged
    trace (:meth:`repro.fleet.spec.FleetResult.merged_trace_lines`) is
    several such segments concatenated in replica order; each segment is
    validated independently, with errors labelled ``trace.segment[i]``.
    """
    errors: List[str] = []
    segments = _split_segments(lines)
    if len(segments) <= 1:
        _validate_segment(list(lines), "trace", errors)
        return errors
    for index, segment in enumerate(segments):
        _validate_segment(segment, f"trace.segment[{index}]", errors)
    return errors
