"""Phase one of the whole-program analyzer: the project index.

The per-file rules (DET/ARCH/API001-002/OBS001) see one AST at a time;
the cross-module invariants the determinism contract now rests on — RNG
values flowing only from ``SeedSequenceFactory`` roots, the fleet spawn
surface staying pickle-safe, ``repro.obs`` staying write-only — need a
view of the *whole* package. This module builds that view:

* :func:`extract_module_facts` digests one parsed module into a
  JSON-serializable :class:`ModuleFacts` record: an import-resolution
  table, module-level symbol table, an approximate call graph, class /
  attribute maps, and pre-located *sites* (potential RNG bindings, obs
  state reads, ``fast_path``-conditional draws, fleet spawn-surface
  values) that the project rules in :mod:`repro.lint.rules.taint`,
  :mod:`repro.lint.rules.snap`, and :mod:`repro.lint.rules.obs` judge
  with cross-module knowledge.
* :class:`IndexCache` persists those records on disk keyed by file
  content digest, so the tier-1 zero-findings gate pays the AST walk
  only for files that actually changed (hit/miss/parse counts are
  reported through ``repro.obs`` counters — see ``--stats``).
* :class:`ProjectIndex` holds every module's facts plus the resolution
  helpers the rules share: re-export chasing, the class index, the
  RNG-returning-function fixpoint, and the project-wide set of
  obs-instrument attribute names.

Soundness caveats (DESIGN.md §12): the call graph is name-based and
flow-insensitive, attribute taint is recognized by convention-derived
patterns (``obs``/``_obs`` receivers, ``rng``-suffixed names), and
dynamic dispatch/re-binding are invisible. The rules are therefore
tuned to the codebase's enforced conventions — which the per-file rules
themselves keep true — and every approximation widens *detection*, not
silence, wherever the two conflict.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple, Union

from repro.lint.sources import content_digest, iter_python_files, module_name_for, parse_suppressions
from repro.obs.facade import NULL_OBS, Observability

#: bumped whenever ModuleFacts' serialized shape changes incompatibly;
#: a cache written by another version is ignored wholesale, never trusted
INDEX_SCHEMA_VERSION = 3

#: default on-disk location of the incremental index cache
DEFAULT_CACHE_PATH = ".repro_lint_cache.json"

#: generator constructors that mint RNG state outside the sanctioned
#: SeedSequenceFactory roots (canonical, post-import-resolution names)
RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
    }
)

#: fallback injection roots when ``repro.util.rng`` is outside the
#: analyzed tree (fixture packages); the real list is read from that
#: module's ``RNG_ROOTS`` declaration at index time
DEFAULT_RNG_ROOT_NAMES = ("derive_rng", "SeedSequenceFactory")

#: generator methods that advance RNG stream state (used by API004)
RNG_DRAW_METHODS = frozenset(
    {
        "random",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "normal",
        "standard_normal",
        "uniform",
        "poisson",
        "exponential",
        "binomial",
        "geometric",
        "beta",
        "gamma",
        "bytes",
    }
)

#: obs facade methods that *create* instruments (write handles)
_INSTRUMENT_FACTORIES = frozenset({"counter", "gauge", "histogram"})


def _dotted_parts(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` attribute chain as parts; ``None`` for non-Name roots."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return list(reversed(parts))
    return None


def _attr_segments(node: ast.expr) -> List[str]:
    """Attribute names along a chain regardless of its root expression.

    Unlike :func:`_dotted_parts` this tolerates subscripted / call roots
    (``built[True].obs.metrics`` → ``["obs", "metrics"]``) — enough to
    recognize obs-flavored access paths.
    """
    segments: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        segments.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        segments.append(current.id)
    return list(reversed(segments))


# -- serializable fact records ----------------------------------------------


@dataclass(frozen=True)
class FunctionFacts:
    """One function or method: location, shape, and RNG return behavior."""

    name: str
    line: int
    col: int
    #: defined inside another function (not picklable by qualified name)
    nested: bool
    params: Tuple[str, ...]
    #: a return statement locally evaluates to an RNG-producing call
    returns_rng_direct: bool
    #: resolved callees whose return value this function returns — the
    #: edges the RNG-returning fixpoint propagates over
    return_calls: Tuple[str, ...]


@dataclass(frozen=True)
class ClassFacts:
    """One class: pickle-relevant surface plus attribute type edges."""

    name: str
    line: int
    col: int
    nested: bool
    bases: Tuple[str, ...]
    methods: Tuple[str, ...]
    has_slots: bool
    has_getstate: bool
    has_setstate: bool
    #: attr name -> resolved type names assigned or annotated to it
    attr_types: Dict[str, Tuple[str, ...]]
    #: attrs holding obs instruments (``self.x = obs.counter(...)``)
    instrument_attrs: Tuple[str, ...]


@dataclass(frozen=True)
class RngSite:
    """A location where an RNG value may be minted or captured.

    ``kind``: ``"ctor"`` (unsanctioned constructor call), ``"global"``
    (module-level name bound to a call result), ``"default"`` (function
    parameter defaulting to a call result). For ``global``/``default``
    the taint verdict needs the project-level RNG-returning set, so the
    resolved ``callee`` is recorded and judged later.
    """

    kind: str
    line: int
    col: int
    symbol: str
    callee: str


@dataclass(frozen=True)
class FastPathSite:
    """One ``fast_path``-conditional with the draw sequence per branch."""

    line: int
    col: int
    fast_draws: Tuple[str, ...]
    naive_draws: Tuple[str, ...]


@dataclass(frozen=True)
class ObsReadSite:
    """A read of metrics/tracer state. ``attr`` empty = locally proven;
    otherwise the receiver attribute name, confirmed against the
    project-wide instrument-attribute set at rule time."""

    line: int
    col: int
    expr: str
    attr: str


@dataclass(frozen=True)
class SpawnSite:
    """A value placed on the fleet spawn/pickle surface (registry entry,
    ReplicaSpec argument, or pool submission)."""

    line: int
    col: int
    context: str
    #: "name" | "dotted" | "lambda" | "partial" | "call" | "other"
    value_kind: str
    value_ref: str


@dataclass
class ModuleFacts:
    """Everything the project rules may know about one module."""

    path: str
    module: Optional[str]
    digest: str
    is_package: bool
    #: local name -> canonical dotted target (import resolution table)
    imports: Dict[str, str] = field(default_factory=dict)
    #: absolute ``repro.*`` modules imported (the ARCH001 DAG edges)
    repro_imports: List[str] = field(default_factory=list)
    #: module-level string-tuple constants (e.g. ``RNG_ROOTS``)
    constants: Dict[str, List[str]] = field(default_factory=dict)
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    classes: Dict[str, ClassFacts] = field(default_factory=dict)
    #: approximate call graph: caller qualname -> resolved callees
    calls: Dict[str, List[str]] = field(default_factory=dict)
    rng_sites: List[RngSite] = field(default_factory=list)
    fastpath_sites: List[FastPathSite] = field(default_factory=list)
    obs_reads: List[ObsReadSite] = field(default_factory=list)
    spawn_sites: List[SpawnSite] = field(default_factory=list)
    #: line (as str for JSON round-tripping) -> suppressed rule ids
    suppressions: Dict[str, List[str]] = field(default_factory=dict)

    def suppression_map(self) -> Dict[int, FrozenSet[str]]:
        return {int(line): frozenset(ids) for line, ids in self.suppressions.items()}

    # -- cache round trip ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "module": self.module,
            "digest": self.digest,
            "is_package": self.is_package,
            "imports": dict(sorted(self.imports.items())),
            "repro_imports": list(self.repro_imports),
            "constants": {k: list(v) for k, v in sorted(self.constants.items())},
            "functions": {
                name: {
                    "name": fn.name,
                    "line": fn.line,
                    "col": fn.col,
                    "nested": fn.nested,
                    "params": list(fn.params),
                    "returns_rng_direct": fn.returns_rng_direct,
                    "return_calls": list(fn.return_calls),
                }
                for name, fn in sorted(self.functions.items())
            },
            "classes": {
                name: {
                    "name": cls.name,
                    "line": cls.line,
                    "col": cls.col,
                    "nested": cls.nested,
                    "bases": list(cls.bases),
                    "methods": list(cls.methods),
                    "has_slots": cls.has_slots,
                    "has_getstate": cls.has_getstate,
                    "has_setstate": cls.has_setstate,
                    "attr_types": {a: list(t) for a, t in sorted(cls.attr_types.items())},
                    "instrument_attrs": list(cls.instrument_attrs),
                }
                for name, cls in sorted(self.classes.items())
            },
            "calls": {k: list(v) for k, v in sorted(self.calls.items())},
            "rng_sites": [vars(site) for site in self.rng_sites],
            "fastpath_sites": [
                {
                    "line": s.line,
                    "col": s.col,
                    "fast_draws": list(s.fast_draws),
                    "naive_draws": list(s.naive_draws),
                }
                for s in self.fastpath_sites
            ],
            "obs_reads": [vars(site) for site in self.obs_reads],
            "spawn_sites": [vars(site) for site in self.spawn_sites],
            "suppressions": {k: list(v) for k, v in sorted(self.suppressions.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleFacts":
        functions = {
            name: FunctionFacts(
                name=str(fn["name"]),
                line=int(fn["line"]),  # type: ignore[call-overload]
                col=int(fn["col"]),  # type: ignore[call-overload]
                nested=bool(fn["nested"]),
                params=tuple(fn["params"]),  # type: ignore[arg-type]
                returns_rng_direct=bool(fn["returns_rng_direct"]),
                return_calls=tuple(fn["return_calls"]),  # type: ignore[arg-type]
            )
            for name, fn in dict(data.get("functions", {})).items()  # type: ignore[arg-type]
        }
        classes = {
            name: ClassFacts(
                name=str(c["name"]),
                line=int(c["line"]),  # type: ignore[call-overload]
                col=int(c["col"]),  # type: ignore[call-overload]
                nested=bool(c["nested"]),
                bases=tuple(c["bases"]),  # type: ignore[arg-type]
                methods=tuple(c["methods"]),  # type: ignore[arg-type]
                has_slots=bool(c["has_slots"]),
                has_getstate=bool(c["has_getstate"]),
                has_setstate=bool(c["has_setstate"]),
                attr_types={
                    a: tuple(t) for a, t in dict(c["attr_types"]).items()  # type: ignore[arg-type]
                },
                instrument_attrs=tuple(c["instrument_attrs"]),  # type: ignore[arg-type]
            )
            for name, c in dict(data.get("classes", {})).items()  # type: ignore[arg-type]
        }
        return cls(
            path=str(data["path"]),
            module=data["module"] if data["module"] is None else str(data["module"]),
            digest=str(data["digest"]),
            is_package=bool(data.get("is_package", False)),
            imports=dict(data.get("imports", {})),  # type: ignore[arg-type]
            repro_imports=list(data.get("repro_imports", [])),  # type: ignore[arg-type]
            constants={
                k: list(v)
                for k, v in dict(data.get("constants", {})).items()  # type: ignore[arg-type]
            },
            functions=functions,
            classes=classes,
            calls={k: list(v) for k, v in dict(data.get("calls", {})).items()},  # type: ignore[arg-type]
            rng_sites=[RngSite(**site) for site in data.get("rng_sites", [])],  # type: ignore[arg-type, union-attr]
            fastpath_sites=[
                FastPathSite(
                    line=int(s["line"]),
                    col=int(s["col"]),
                    fast_draws=tuple(s["fast_draws"]),
                    naive_draws=tuple(s["naive_draws"]),
                )
                for s in data.get("fastpath_sites", [])  # type: ignore[union-attr, index, call-overload, arg-type]
            ],
            obs_reads=[ObsReadSite(**site) for site in data.get("obs_reads", [])],  # type: ignore[arg-type, union-attr]
            spawn_sites=[SpawnSite(**site) for site in data.get("spawn_sites", [])],  # type: ignore[arg-type, union-attr]
            suppressions={
                k: list(v)
                for k, v in dict(data.get("suppressions", {})).items()  # type: ignore[arg-type]
            },
        )


# -- extraction --------------------------------------------------------------


class _ModuleExtractor:
    """One pass over a parsed module producing its :class:`ModuleFacts`."""

    def __init__(self, tree: ast.Module, path: str, module: Optional[str], source: str):
        self.tree = tree
        self.path = path
        self.module = module
        self.is_package = path.endswith("__init__.py")
        self.facts = ModuleFacts(
            path=path,
            module=module,
            digest=content_digest(source),
            is_package=self.is_package,
            suppressions={
                str(line): sorted(ids)
                for line, ids in parse_suppressions(source).items()
            },
        )
        #: module-level names defined here (functions/classes/constants)
        self._module_symbols: set[str] = set()

    # -- name resolution ----------------------------------------------------

    def _package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.module is None:
            return ""
        if self.is_package:
            return self.module
        return self.module.rsplit(".", 1)[0] if "." in self.module else ""

    def _record_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.facts.imports[local] = target
                    if alias.name == "repro" or alias.name.startswith("repro."):
                        self.facts.repro_imports.append(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level > 0:
                    package = self._package()
                    for _ in range(node.level - 1):
                        package = package.rsplit(".", 1)[0] if "." in package else ""
                    base = f"{package}.{node.module}" if node.module else package
                if not base:
                    continue
                if base == "repro" or base.startswith("repro."):
                    self.facts.repro_imports.append(base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.facts.imports[local] = f"{base}.{alias.name}"

    def resolve(self, name: str) -> str:
        """Canonicalize a dotted name through the import table.

        Local module-level symbols resolve to ``<module>.<name>``;
        imported heads are substituted; everything else passes through.
        """
        head, _, rest = name.partition(".")
        if head in self.facts.imports:
            target = self.facts.imports[head]
            return f"{target}.{rest}" if rest else target
        if self.module is not None and head in self._module_symbols:
            return f"{self.module}.{name}"
        return name

    def _resolve_expr(self, node: ast.expr) -> str:
        parts = _dotted_parts(node)
        if parts is None:
            return ""
        return self.resolve(".".join(parts))

    # -- RNG-expression classification --------------------------------------

    def _rng_root_names(self) -> FrozenSet[str]:
        names = set(DEFAULT_RNG_ROOT_NAMES)
        return frozenset(f"repro.util.rng.{name}" for name in names)

    def _is_rng_producing_call(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        resolved = self._resolve_expr(node.func)
        return resolved in RNG_CONSTRUCTORS or resolved in self._rng_root_names()

    def _is_rng_receiver(self, node: ast.expr, rng_vars: set[str]) -> bool:
        """Whether a draw-call receiver plausibly holds an RNG."""
        segments = _attr_segments(node)
        if not segments:
            return False
        terminal = segments[-1]
        if terminal in rng_vars and len(segments) == 1:
            return True
        return terminal == "rng" or terminal.endswith("_rng") or terminal.endswith("rng")

    # -- obs-expression classification --------------------------------------

    @staticmethod
    def _is_obs_segment(segment: str) -> bool:
        return segment in ("obs", "_obs") or segment.endswith("_obs") or segment.endswith(".obs")

    def _chain_is_obs_flavored(self, segments: List[str], obs_vars: set[str]) -> bool:
        if not segments:
            return False
        if segments[0] in obs_vars:
            return True
        return any(self._is_obs_segment(segment) for segment in segments)

    # -- top-level walk ------------------------------------------------------

    def extract(self) -> ModuleFacts:
        self._record_imports()
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self._module_symbols.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._module_symbols.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                self._module_symbols.add(node.target.id)

        module_rng_vars: set[str] = set()
        module_obs_vars: set[str] = set()
        toplevel_calls: List[str] = []
        for node in self.tree.body:
            self._extract_statement(
                node,
                scope="<module>",
                at_module_level=True,
                rng_vars=module_rng_vars,
                obs_vars=module_obs_vars,
                calls_out=toplevel_calls,
            )
        if toplevel_calls:
            self.facts.calls["<module>"] = sorted(set(toplevel_calls))
        return self.facts

    # -- statement dispatch --------------------------------------------------

    def _extract_statement(
        self,
        node: ast.stmt,
        scope: str,
        at_module_level: bool,
        rng_vars: set[str],
        obs_vars: set[str],
        calls_out: List[str],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._extract_function(node, scope=scope)
            return
        if isinstance(node, ast.ClassDef):
            self._extract_class(node, nested=scope != "<module>")
            return
        if at_module_level:
            self._extract_module_assignment(node, rng_vars, obs_vars)
        self._scan_expressions(node, scope, rng_vars, obs_vars, calls_out)

    def _extract_module_assignment(
        self, node: ast.stmt, rng_vars: set[str], obs_vars: set[str]
    ) -> None:
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            targets: List[ast.expr] = [node.target]
            value: Optional[ast.expr] = node.value
        elif isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        else:
            return
        if value is None:
            return
        name_targets = [t.id for t in targets if isinstance(t, ast.Name)]
        if not name_targets:
            # module-level registry mutation: ``ARMS["x"] = value``
            for target in targets:
                if isinstance(target, ast.Subscript):
                    self._record_registry_entry(target, value)
            return
        # string-tuple constants (RNG_ROOTS and friends)
        if isinstance(value, (ast.Tuple, ast.List)) and value.elts:
            strings = [
                elt.value
                for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ]
            if len(strings) == len(value.elts):
                for name in name_targets:
                    self.facts.constants[name] = list(strings)
        # registry dict literal (fleet spawn surface)
        if isinstance(value, ast.Dict):
            for name in name_targets:
                self._record_registry_dict(name, value)
        # call-valued globals: potential RNG laundering, judged at rule time
        if isinstance(value, ast.Call):
            callee = self._resolve_expr(value.func)
            for name in name_targets:
                self.facts.rng_sites.append(
                    RngSite(
                        kind="global",
                        line=value.lineno,
                        col=value.col_offset,
                        symbol=name,
                        callee=callee,
                    )
                )
            if self._is_rng_producing_call(value):
                rng_vars.update(name_targets)
        elif isinstance(value, ast.Name) and value.id in rng_vars:
            for name in name_targets:
                self.facts.rng_sites.append(
                    RngSite(
                        kind="global",
                        line=value.lineno,
                        col=value.col_offset,
                        symbol=name,
                        callee="<alias>",
                    )
                )

    # -- functions -----------------------------------------------------------

    def _qualname(self, scope: str, name: str) -> str:
        return name if scope == "<module>" else f"{scope}.{name}"

    def _extract_function(
        self,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        scope: str,
    ) -> None:
        nested = "." in scope or (scope != "<module>" and not self._is_class_scope(scope))
        qual = self._qualname(scope, node.name)
        args = node.args
        params = tuple(
            a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)
        )
        # RNG defaults (API003): parameters defaulting to a call result
        positional = args.posonlyargs + args.args
        defaults = list(args.defaults)
        pairs = list(zip(positional[len(positional) - len(defaults):], defaults))
        pairs += [
            (arg, default)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None
        ]
        for arg, default in pairs:
            if isinstance(default, ast.Call):
                self.facts.rng_sites.append(
                    RngSite(
                        kind="default",
                        line=default.lineno,
                        col=default.col_offset,
                        symbol=f"{qual}.{arg.arg}",
                        callee=self._resolve_expr(default.func),
                    )
                )

        rng_vars = {p for p in params if p == "rng" or p.endswith("_rng")}
        obs_vars = {p for p in params if p in ("obs", "_obs")}
        calls: List[str] = []
        returns_rng_direct = False
        return_calls: List[str] = []

        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_inner_function(stmt, qual)
                continue
            if isinstance(stmt, ast.ClassDef):
                self._extract_class(stmt, nested=True)
                continue
            self._scan_expressions(stmt, qual, rng_vars, obs_vars, calls)
        # local taint + return classification in statement order
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign):
                if isinstance(stmt.value, ast.Call) and self._is_rng_producing_call(stmt.value):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            rng_vars.add(target.id)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                value = stmt.value
                if isinstance(value, ast.Call):
                    if self._is_rng_producing_call(value):
                        returns_rng_direct = True
                    else:
                        resolved = self._resolve_expr(value.func)
                        if resolved:
                            return_calls.append(resolved)
                elif isinstance(value, ast.Name) and value.id in rng_vars:
                    returns_rng_direct = True

        self.facts.functions[qual] = FunctionFacts(
            name=qual,
            line=node.lineno,
            col=node.col_offset,
            nested=nested,
            params=params,
            returns_rng_direct=returns_rng_direct,
            return_calls=tuple(sorted(set(return_calls))),
        )
        if calls:
            self.facts.calls[qual] = sorted(set(calls))

    def _extract_inner_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef], parent_qual: str
    ) -> None:
        qual = f"{parent_qual}.<locals>.{node.name}"
        self.facts.functions[qual] = FunctionFacts(
            name=qual,
            line=node.lineno,
            col=node.col_offset,
            nested=True,
            params=tuple(a.arg for a in node.args.args),
            returns_rng_direct=False,
            return_calls=(),
        )
        # a closure is still scanned: an unsanctioned ctor hidden inside a
        # nested def is just as ambient as one at module scope
        calls: List[str] = []
        rng_vars: set[str] = set()
        obs_vars: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_inner_function(stmt, qual)
                continue
            self._scan_expressions(stmt, qual, rng_vars, obs_vars, calls)
        if calls:
            self.facts.calls[qual] = sorted(set(calls))

    def _is_class_scope(self, scope: str) -> bool:
        return scope in self.facts.classes

    # -- classes -------------------------------------------------------------

    def _extract_class(self, node: ast.ClassDef, nested: bool) -> None:
        bases = tuple(
            resolved
            for resolved in (self._resolve_expr(base) for base in node.bases)
            if resolved
        )
        methods: List[str] = []
        attr_types: Dict[str, List[str]] = {}
        instrument_attrs: List[str] = []
        has_slots = False
        # dataclass-style field annotations
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                names = self._annotation_type_names(stmt.annotation)
                if names:
                    attr_types.setdefault(stmt.target.id, []).extend(names)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        has_slots = True
        # register the class symbol before walking methods so self-references resolve
        self.facts.classes[node.name] = ClassFacts(
            name=node.name,
            line=node.lineno,
            col=node.col_offset,
            nested=nested,
            bases=bases,
            methods=(),
            has_slots=has_slots,
            has_getstate=False,
            has_setstate=False,
            attr_types={},
            instrument_attrs=(),
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
                self._extract_method(stmt, node.name, attr_types, instrument_attrs)
        self.facts.classes[node.name] = ClassFacts(
            name=node.name,
            line=node.lineno,
            col=node.col_offset,
            nested=nested,
            bases=bases,
            methods=tuple(methods),
            has_slots=has_slots,
            has_getstate="__getstate__" in methods,
            has_setstate="__setstate__" in methods,
            attr_types={a: tuple(dict.fromkeys(t)) for a, t in sorted(attr_types.items())},
            instrument_attrs=tuple(dict.fromkeys(instrument_attrs)),
        )

    def _annotation_type_names(self, node: ast.expr) -> List[str]:
        """Resolved identifiers inside an annotation (incl. subscripts)."""
        names: List[str] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                names.append(self.resolve(sub.id))
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                # string annotation: resolve the head identifier
                head = sub.value.split("[")[0].strip()
                if head.isidentifier():
                    names.append(self.resolve(head))
        return [n for n in names if n]

    def _extract_method(
        self,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        class_name: str,
        attr_types: Dict[str, List[str]],
        instrument_attrs: List[str],
    ) -> None:
        self._extract_function(node, scope=class_name)
        params = {a.arg for a in node.args.args}
        obs_vars = {p for p in params if p in ("obs", "_obs")}
        for stmt in ast.walk(node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if isinstance(stmt, ast.AnnAssign):
                    names = self._annotation_type_names(stmt.annotation)
                    if names:
                        attr_types.setdefault(attr, []).extend(names)
                if value is None:
                    continue
                for call in self._constructor_calls(value):
                    resolved = self._resolve_expr(call.func)
                    if resolved:
                        attr_types.setdefault(attr, []).append(resolved)
                if self._is_instrument_factory_call(value, obs_vars):
                    instrument_attrs.append(attr)

    def _constructor_calls(self, value: ast.expr) -> List[ast.Call]:
        """Direct constructor-looking calls in an assigned expression.

        Covers plain calls and conditional expressions (the columnar /
        naive twin selection pattern: ``A() if fast else B()``).
        """
        if isinstance(value, ast.Call):
            return [value]
        if isinstance(value, ast.IfExp):
            return self._constructor_calls(value.body) + self._constructor_calls(value.orelse)
        return []

    def _is_instrument_factory_call(self, value: ast.expr, obs_vars: set[str]) -> bool:
        for call in self._constructor_calls(value):
            if isinstance(call.func, ast.Attribute) and call.func.attr in _INSTRUMENT_FACTORIES:
                segments = _attr_segments(call.func.value)
                if self._chain_is_obs_flavored(segments, obs_vars):
                    return True
        return False

    # -- expression scanning (calls, obs reads, fast_path, spawn sites) ------

    def _scan_expressions(
        self,
        node: ast.stmt,
        scope: str,
        rng_vars: set[str],
        obs_vars: set[str],
        calls_out: List[str],
    ) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                resolved = self._resolve_expr(sub.func)
                if resolved:
                    calls_out.append(resolved)
                    if resolved in RNG_CONSTRUCTORS:
                        self.facts.rng_sites.append(
                            RngSite(
                                kind="ctor",
                                line=sub.lineno,
                                col=sub.col_offset,
                                symbol=scope,
                                callee=resolved,
                            )
                        )
                    if resolved.endswith(".ReplicaSpec") or resolved == "ReplicaSpec":
                        self._record_spec_call(sub)
                self._maybe_record_obs_call_read(sub, obs_vars)
                self._maybe_record_submit(sub)
            elif isinstance(sub, ast.Assign):
                if isinstance(sub.value, ast.Call) and self._is_rng_producing_call(sub.value):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            rng_vars.add(target.id)
                if self._is_obs_source(sub.value, obs_vars):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            obs_vars.add(target.id)
            elif isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
                self._maybe_record_obs_attr_read(sub, obs_vars)
            elif isinstance(sub, ast.If):
                self._maybe_record_fastpath(sub, rng_vars)
            elif isinstance(sub, ast.IfExp):
                self._maybe_record_fastpath_expr(sub, rng_vars)

    def _is_obs_source(self, value: ast.expr, obs_vars: set[str]) -> bool:
        if isinstance(value, ast.Call):
            resolved = self._resolve_expr(value.func)
            if resolved.endswith("Observability") or resolved.endswith("NULL_OBS"):
                return True
            return False
        segments = _attr_segments(value)
        return bool(segments) and (
            segments[-1] in ("obs", "_obs") or (len(segments) == 1 and segments[0] in obs_vars)
        )

    def _maybe_record_obs_call_read(self, call: ast.Call, obs_vars: set[str]) -> None:
        if not isinstance(call.func, ast.Attribute):
            return
        attr = call.func.attr
        segments = _attr_segments(call.func.value)
        if attr == "snapshot" and (
            "metrics" in segments and self._chain_is_obs_flavored(segments, obs_vars)
        ):
            self.facts.obs_reads.append(
                ObsReadSite(
                    line=call.lineno,
                    col=call.col_offset,
                    expr=".".join(segments + [attr]),
                    attr="",
                )
            )

    def _maybe_record_obs_attr_read(self, node: ast.Attribute, obs_vars: set[str]) -> None:
        if node.attr == "value":
            segments = _attr_segments(node.value)
            if not segments:
                return
            if self._chain_is_obs_flavored(segments, obs_vars):
                self.facts.obs_reads.append(
                    ObsReadSite(
                        line=node.lineno,
                        col=node.col_offset,
                        expr=".".join(segments + ["value"]),
                        attr="",
                    )
                )
            elif len(segments) >= 2:
                # deferred: confirmed iff the receiver attr is a known
                # obs-instrument attribute anywhere in the project
                self.facts.obs_reads.append(
                    ObsReadSite(
                        line=node.lineno,
                        col=node.col_offset,
                        expr=".".join(segments + ["value"]),
                        attr=segments[-1],
                    )
                )
        elif node.attr == "records" and "tracer" in _attr_segments(node.value):
            segments = _attr_segments(node.value)
            self.facts.obs_reads.append(
                ObsReadSite(
                    line=node.lineno,
                    col=node.col_offset,
                    expr=".".join(segments + ["records"]),
                    attr="",
                )
            )

    # -- fast_path twin-draw extraction --------------------------------------

    @staticmethod
    def _test_mentions_fast_path(test: ast.expr) -> Optional[bool]:
        """None if the test is fast_path-free; else True when the *body*
        is the fast branch (False when the test is negated)."""
        inverted = False
        inner = test
        while isinstance(inner, ast.UnaryOp) and isinstance(inner.op, ast.Not):
            inverted = not inverted
            inner = inner.operand
        for sub in ast.walk(inner):
            if isinstance(sub, ast.Name) and sub.id == "fast_path":
                return not inverted
            if isinstance(sub, ast.Attribute) and sub.attr == "fast_path":
                return not inverted
        return None

    def _collect_draws(self, nodes: List[ast.stmt], rng_vars: set[str]) -> List[str]:
        draws: List[str] = []

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.Call):
                    func = child.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in RNG_DRAW_METHODS
                        and self._is_rng_receiver(func.value, rng_vars)
                    ):
                        draws.append(func.attr)
                visit(child)

        for stmt in nodes:
            visit(stmt)
        return draws

    def _maybe_record_fastpath(self, node: ast.If, rng_vars: set[str]) -> None:
        body_is_fast = self._test_mentions_fast_path(node.test)
        if body_is_fast is None:
            return
        body_draws = self._collect_draws(node.body, rng_vars)
        orelse_draws = self._collect_draws(node.orelse, rng_vars)
        fast, naive = (body_draws, orelse_draws) if body_is_fast else (orelse_draws, body_draws)
        if fast or naive:
            self.facts.fastpath_sites.append(
                FastPathSite(
                    line=node.lineno,
                    col=node.col_offset,
                    fast_draws=tuple(fast),
                    naive_draws=tuple(naive),
                )
            )

    def _maybe_record_fastpath_expr(self, node: ast.IfExp, rng_vars: set[str]) -> None:
        body_is_fast = self._test_mentions_fast_path(node.test)
        if body_is_fast is None:
            return
        body_draws = self._collect_draws([ast.Expr(value=node.body)], rng_vars)
        orelse_draws = self._collect_draws([ast.Expr(value=node.orelse)], rng_vars)
        fast, naive = (body_draws, orelse_draws) if body_is_fast else (orelse_draws, body_draws)
        if fast or naive:
            self.facts.fastpath_sites.append(
                FastPathSite(
                    line=node.lineno,
                    col=node.col_offset,
                    fast_draws=tuple(fast),
                    naive_draws=tuple(naive),
                )
            )

    # -- fleet spawn surface --------------------------------------------------

    def _classify_spawn_value(self, value: ast.expr) -> Tuple[str, str]:
        if isinstance(value, ast.Lambda):
            return "lambda", ""
        if isinstance(value, ast.Name):
            return "name", self.resolve(value.id)
        if isinstance(value, ast.Attribute):
            return "dotted", self._resolve_expr(value)
        if isinstance(value, ast.Call):
            resolved = self._resolve_expr(value.func)
            if resolved in ("functools.partial", "partial"):
                return "partial", resolved
            return "call", resolved
        if isinstance(value, ast.Constant):
            return "constant", ""
        return "other", ""

    def _in_fleet(self) -> bool:
        return self.module is not None and (
            self.module == "repro.fleet" or self.module.startswith("repro.fleet.")
        )

    def _record_registry_dict(self, name: str, value: ast.Dict) -> None:
        if not self._in_fleet():
            return
        for key, entry in zip(value.keys, value.values):
            kind, ref = self._classify_spawn_value(entry)
            if kind == "constant":
                continue
            key_repr = (
                repr(key.value)
                if isinstance(key, ast.Constant)
                else "?"
            )
            self.facts.spawn_sites.append(
                SpawnSite(
                    line=entry.lineno,
                    col=entry.col_offset,
                    context=f"{name}[{key_repr}]",
                    value_kind=kind,
                    value_ref=ref,
                )
            )

    def _record_registry_entry(self, target: ast.Subscript, value: ast.expr) -> None:
        if not self._in_fleet():
            return
        if not isinstance(target.value, ast.Name):
            return
        kind, ref = self._classify_spawn_value(value)
        if kind == "constant":
            return
        key_repr = (
            repr(target.slice.value)
            if isinstance(target.slice, ast.Constant)
            else "?"
        )
        self.facts.spawn_sites.append(
            SpawnSite(
                line=value.lineno,
                col=value.col_offset,
                context=f"{target.value.id}[{key_repr}]",
                value_kind=kind,
                value_ref=ref,
            )
        )

    def _record_spec_call(self, call: ast.Call) -> None:
        values = list(call.args) + [kw.value for kw in call.keywords]
        for value in values:
            for sub in ast.walk(value):
                if isinstance(sub, ast.Lambda):
                    self.facts.spawn_sites.append(
                        SpawnSite(
                            line=sub.lineno,
                            col=sub.col_offset,
                            context="ReplicaSpec(...)",
                            value_kind="lambda",
                            value_ref="",
                        )
                    )

    def _maybe_record_submit(self, call: ast.Call) -> None:
        if not self._in_fleet():
            return
        if not (isinstance(call.func, ast.Attribute) and call.func.attr == "submit"):
            return
        if not call.args:
            return
        kind, ref = self._classify_spawn_value(call.args[0])
        if kind == "constant":
            return
        self.facts.spawn_sites.append(
            SpawnSite(
                line=call.lineno,
                col=call.col_offset,
                context="pool.submit(...)",
                value_kind=kind,
                value_ref=ref,
            )
        )


def extract_module_facts(source: str, path: str) -> ModuleFacts:
    """Parse and digest one module; unparseable files yield bare facts.

    The per-file pass owns reporting syntax errors (``PARSE``); the
    index just records the digest so the cache stays consistent.
    """
    normalized = path.replace("\\", "/")
    module = module_name_for(normalized)
    try:
        tree = ast.parse(source, filename=normalized)
    except SyntaxError:
        return ModuleFacts(
            path=normalized,
            module=module,
            digest=content_digest(source),
            is_package=normalized.endswith("__init__.py"),
        )
    return _ModuleExtractor(tree, normalized, module, source).extract()


# -- the on-disk incremental cache -------------------------------------------


class IndexCache:
    """Digest-keyed per-file facts cache persisted as sorted JSON.

    The key is ``(path, content digest, schema version)``: editing a
    file orphans exactly its own entry, and bumping
    :data:`INDEX_SCHEMA_VERSION` orphans everything at once. The cache
    is a pure accelerator — a corrupt or missing file silently degrades
    to a full re-parse, never to wrong facts.
    """

    def __init__(self, path: Optional[Path]):
        self.path = path
        self._entries: Dict[str, Dict[str, object]] = {}
        self.dirty = False
        if path is not None and path.exists():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                payload = {}
            if (
                isinstance(payload, dict)
                and payload.get("version") == INDEX_SCHEMA_VERSION
                and isinstance(payload.get("entries"), dict)
            ):
                self._entries = payload["entries"]

    def lookup(self, path: str, digest: str) -> Optional[ModuleFacts]:
        entry = self._entries.get(path)
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            return None
        try:
            return ModuleFacts.from_dict(dict(entry["facts"]))  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            return None

    def store(self, facts: ModuleFacts) -> None:
        self._entries[facts.path] = {"digest": facts.digest, "facts": facts.to_dict()}
        self.dirty = True

    def save(self) -> None:
        if self.path is None or not self.dirty:
            return
        payload = {"version": INDEX_SCHEMA_VERSION, "entries": self._entries}
        self.path.write_text(
            json.dumps(payload, sort_keys=True, indent=None, separators=(",", ":")),
            encoding="utf-8",
        )
        self.dirty = False


# -- the assembled project view ----------------------------------------------


class ProjectIndex:
    """Every module's facts plus the cross-module resolution helpers."""

    def __init__(self, modules: List[ModuleFacts]):
        self.modules = sorted(modules, key=lambda facts: facts.path)
        self._by_path: Dict[str, ModuleFacts] = {facts.path: facts for facts in self.modules}
        self._by_module: Dict[str, ModuleFacts] = {
            facts.module: facts for facts in self.modules if facts.module is not None
        }
        self._class_index: Dict[str, Tuple[ModuleFacts, ClassFacts]] = {}
        self._function_index: Dict[str, Tuple[ModuleFacts, FunctionFacts]] = {}
        for facts in self.modules:
            if facts.module is None:
                continue
            for name, cls in facts.classes.items():
                self._class_index[f"{facts.module}.{name}"] = (facts, cls)
            for name, fn in facts.functions.items():
                self._function_index[f"{facts.module}.{name}"] = (facts, fn)
        self._rng_returning: Optional[FrozenSet[str]] = None

    # -- lookups -------------------------------------------------------------

    def facts_for_path(self, path: str) -> Optional[ModuleFacts]:
        return self._by_path.get(path)

    def facts_for_module(self, module: str) -> Optional[ModuleFacts]:
        return self._by_module.get(module)

    def iter_repro_modules(self) -> Iterator[ModuleFacts]:
        for facts in self.modules:
            if facts.module is not None:
                yield facts

    # -- re-export chasing ---------------------------------------------------

    def resolve_export(self, dotted: str) -> str:
        """Chase package re-exports to a defining module's qualname.

        ``repro.platform.InstagramPlatform`` (imported via the package
        API) resolves to ``repro.platform.instagram.InstagramPlatform``.
        Stops after a bounded number of hops; unknown names return
        unchanged.
        """
        seen: set[str] = set()
        current = dotted
        while current not in seen:
            seen.add(current)
            if current in self._class_index or current in self._function_index:
                return current
            head, _, leaf = current.rpartition(".")
            facts = self._by_module.get(head)
            if facts is None or leaf not in facts.imports:
                return current
            current = facts.imports[leaf]
        return current

    def class_facts(self, dotted: str) -> Optional[Tuple[ModuleFacts, ClassFacts]]:
        return self._class_index.get(self.resolve_export(dotted))

    def function_facts(self, dotted: str) -> Optional[Tuple[ModuleFacts, FunctionFacts]]:
        return self._function_index.get(self.resolve_export(dotted))

    def iter_classes(self) -> Iterator[Tuple[str, ModuleFacts, ClassFacts]]:
        for qual, (facts, cls) in sorted(self._class_index.items()):
            yield qual, facts, cls

    # -- RNG taint helpers ---------------------------------------------------

    def rng_roots(self) -> FrozenSet[str]:
        """Sanctioned injection-point qualnames, read from the shim.

        ``repro.util.rng`` declares its roots in ``RNG_ROOTS``; when the
        shim is outside the analyzed tree the convention's default names
        stand in so fixture packages resolve identically.
        """
        shim = self._by_module.get("repro.util.rng")
        names: Iterable[str] = DEFAULT_RNG_ROOT_NAMES
        if shim is not None and shim.constants.get("RNG_ROOTS"):
            names = shim.constants["RNG_ROOTS"]
        return frozenset(f"repro.util.rng.{name}" for name in names)

    def rng_returning(self) -> FrozenSet[str]:
        """Functions whose return value is (transitively) an RNG.

        Fixpoint over return-call edges: a function returns an RNG if a
        return statement produces one directly, or if it returns the
        result of a call that resolves to an RNG-returning function or
        to an injection root / constructor.
        """
        if self._rng_returning is not None:
            return self._rng_returning
        producers: set[str] = set(self.rng_roots()) | set(RNG_CONSTRUCTORS)
        for qual, (_, fn) in self._function_index.items():
            if fn.returns_rng_direct:
                producers.add(qual)
        changed = True
        while changed:
            changed = False
            for qual, (_, fn) in self._function_index.items():
                if qual in producers:
                    continue
                for callee in fn.return_calls:
                    if self.resolve_export(callee) in producers:
                        producers.add(qual)
                        changed = True
                        break
        self._rng_returning = frozenset(producers)
        return self._rng_returning

    # -- obs helpers ---------------------------------------------------------

    def instrument_attrs(self) -> FrozenSet[str]:
        """Attribute names holding obs instruments anywhere in the tree."""
        attrs: set[str] = set()
        for facts in self.modules:
            for cls in facts.classes.values():
                attrs.update(cls.instrument_attrs)
        return frozenset(attrs)


# -- build -------------------------------------------------------------------


def build_index(
    paths: Iterable[Union[str, Path]],
    cache_path: Union[str, Path, None] = None,
    obs: Optional[Observability] = None,
) -> ProjectIndex:
    """Index every python file under ``paths``, reusing cached facts.

    Per-file work is skipped when the cache holds an entry for the same
    path *and* content digest; hit/miss/parse counts land on the
    ``lint.index.*`` counters of ``obs`` (the linter's own telemetry —
    the warm-vs-cold test asserts on these, not wall-clock).
    """
    handle = obs if obs is not None else NULL_OBS
    files = handle.counter("lint.index.files")
    hits = handle.counter("lint.index.cache_hits")
    misses = handle.counter("lint.index.cache_misses")
    parses = handle.counter("lint.index.parses")

    cache = IndexCache(Path(cache_path) if cache_path is not None else None)
    modules: List[ModuleFacts] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        normalized = file_path.as_posix()
        digest = content_digest(source)
        files.inc()
        cached = cache.lookup(normalized, digest)
        if cached is not None:
            hits.inc()
            modules.append(cached)
            continue
        misses.inc()
        parses.inc()
        facts = extract_module_facts(source, normalized)
        cache.store(facts)
        modules.append(facts)
    cache.save()
    return ProjectIndex(modules)


__all__ = [
    "DEFAULT_CACHE_PATH",
    "INDEX_SCHEMA_VERSION",
    "RNG_CONSTRUCTORS",
    "RNG_DRAW_METHODS",
    "ClassFacts",
    "FastPathSite",
    "FunctionFacts",
    "IndexCache",
    "ModuleFacts",
    "ObsReadSite",
    "ProjectIndex",
    "RngSite",
    "SpawnSite",
    "build_index",
    "extract_module_facts",
]
