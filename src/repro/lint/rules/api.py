"""API rules: randomness is injected, never manufactured, downstream.

The analysis/detection/interventions layers consume the simulated event
stream; if any of them minted its own generator, the same study object
could yield different tables depending on call order. Their public
surface therefore takes ``rng``/``seeds`` parameters and the Study
orchestrator (the composition root) is the only place generators are
derived from the root seed.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleContext, Rule, dotted_name

#: layers whose public functions must be handed their randomness
_OBSERVER_LAYERS = frozenset({"analysis", "detection", "interventions"})

#: calls that manufacture a generator or seed-derivation factory
_GENERATOR_FACTORIES = frozenset(
    {
        "derive_rng",
        "SeedSequenceFactory",
        "np.random.default_rng",
        "numpy.random.default_rng",
        "default_rng",
    }
)

#: parameter names the convention reserves for injected randomness
_RNG_PARAM_NAMES = frozenset({"rng", "seeds", "seed_factory"})


class RngInjectionRule(Rule):
    """API001 — observer layers never create their own generators."""

    rule_id: ClassVar[str] = "API001"
    summary: ClassVar[str] = (
        "analysis/detection/interventions must accept an explicit "
        "rng/seeds parameter; deriving a generator locally decouples the "
        "result from the study's root seed"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.layer not in _OBSERVER_LAYERS:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _GENERATOR_FACTORIES:
                    yield self.finding(
                        ctx,
                        node,
                        f"`{name}(...)` creates randomness inside the "
                        f"'{ctx.layer}' layer; take an `rng` (or `seeds`) "
                        "parameter and let the Study derive it from the root seed",
                    )


def _iter_rng_params_with_defaults(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.arg, ast.expr]]:
    """Yield ``(arg, default)`` for rng-convention params that have one."""
    positional = fn.args.posonlyargs + fn.args.args
    defaults = fn.args.defaults
    for arg, default in zip(positional[len(positional) - len(defaults) :], defaults):
        if arg.arg in _RNG_PARAM_NAMES:
            yield arg, default
    for arg, kw_default in zip(fn.args.kwonlyargs, fn.args.kw_defaults):
        if kw_default is not None and arg.arg in _RNG_PARAM_NAMES:
            yield arg, kw_default


class RngDefaultRule(Rule):
    """API002 — an ``rng`` parameter must not default to a generator."""

    rule_id: ClassVar[str] = "API002"
    summary: ClassVar[str] = (
        "rng/seeds parameters may default only to None; a generator "
        "default is evaluated once at import time and silently shared "
        "across every caller that omits it"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg, default in _iter_rng_params_with_defaults(node):
                    if isinstance(default, ast.Constant) and default.value is None:
                        continue
                    yield self.finding(
                        ctx,
                        default,
                        f"parameter `{arg.arg}` of `{node.name}` has a non-None "
                        "default; rng/seeds must be passed by the caller "
                        "(default to None and fail loudly, if optional)",
                    )


API_RULES: tuple[type[Rule], ...] = (RngInjectionRule, RngDefaultRule)
