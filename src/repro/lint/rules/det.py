"""DET rules: every run must be a pure function of the root seed.

The simulator's measurement pipeline (DESIGN.md §3) regenerates the
paper's tables bit-identically only if no code path consults ambient
state — wall clocks, process-salted hashes, global RNGs, or the
environment. These rules ban the ambient sources at the call site; the
sanctioned alternatives are ``repro.util.rng`` (seeded generators) and
``repro.platform.clock.SimClock`` (simulated time).
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleContext, Rule, dotted_name

#: modules allowed to touch RNG internals: the seeding shim itself
_RNG_SHIM = ("repro/util/rng.py",)
#: modules allowed to own the notion of time: the simulation clock
_CLOCK_SHIM = ("repro/platform/clock.py", "repro/util/rng.py")

#: ``numpy.random`` attributes that are deterministic given their
#: arguments (explicitly-seeded constructors and types) — everything
#: else on the module either touches the hidden global state or mints
#: OS-entropy seeds.
_SAFE_NP_RANDOM = frozenset(
    {
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.today",
        "datetime.utcnow",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

_TIME_FUNCTION_NAMES = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)


class StdlibRandomRule(Rule):
    """DET001 — the process-global ``random`` module is banned."""

    rule_id: ClassVar[str] = "DET001"
    summary: ClassVar[str] = (
        "stdlib `random` is process-global state; draw from a generator "
        "handed out by repro.util.rng.SeedSequenceFactory instead"
    )
    exempt_suffixes: ClassVar[tuple[str, ...]] = _RNG_SHIM

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx, node, "import of stdlib `random`; use a seeded np.random.Generator"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield self.finding(
                        ctx, node, "import from stdlib `random`; use a seeded np.random.Generator"
                    )


class NumpyGlobalRandomRule(Rule):
    """DET002 — ``np.random.*`` module-level state and entropy taps."""

    rule_id: ClassVar[str] = "DET002"
    summary: ClassVar[str] = (
        "np.random module-level calls (seed/default_rng/random/...) bypass "
        "the SeedSequenceFactory; only explicitly-seeded types are allowed"
    )
    exempt_suffixes: ClassVar[tuple[str, ...]] = _RNG_SHIM

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                if (
                    len(parts) == 3
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in _SAFE_NP_RANDOM
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"`{name}()` uses numpy's hidden global stream or fresh OS "
                        "entropy; derive a generator via repro.util.rng instead",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _SAFE_NP_RANDOM and alias.name != "*":
                            yield self.finding(
                                ctx,
                                node,
                                f"`from numpy.random import {alias.name}` exposes "
                                "unseeded randomness; derive via repro.util.rng",
                            )


class WallClockRule(Rule):
    """DET003 — wall-clock reads; simulated time lives in SimClock."""

    rule_id: ClassVar[str] = "DET003"
    summary: ClassVar[str] = (
        "wall-clock reads (time.time, datetime.now, ...) leak host time "
        "into the event stream; use the tick-based platform SimClock"
    )
    exempt_suffixes: ClassVar[tuple[str, ...]] = _CLOCK_SHIM

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _WALL_CLOCK_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"`{name}()` reads the host clock; simulation time is "
                        "SimClock.now ticks",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_FUNCTION_NAMES:
                            yield self.finding(
                                ctx,
                                node,
                                f"`from time import {alias.name}` reads the host "
                                "clock; simulation time is SimClock.now ticks",
                            )


class UuidRule(Rule):
    """DET004 — entropy-backed UUIDs are unreproducible identifiers."""

    rule_id: ClassVar[str] = "DET004"
    summary: ClassVar[str] = (
        "uuid.uuid1/uuid4 mint identifiers from OS entropy or host MAC; "
        "derive ids from the seed (counters or blake2 of stable labels)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in ("uuid.uuid1", "uuid.uuid4", "uuid1", "uuid4"):
                    yield self.finding(
                        ctx, node, f"`{name}()` is entropy-backed; derive ids from the seed"
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "uuid":
                    for alias in node.names:
                        if alias.name in ("uuid1", "uuid4"):
                            yield self.finding(
                                ctx,
                                node,
                                f"`from uuid import {alias.name}`; derive ids from the seed",
                            )


def _is_set_expr(node: ast.expr) -> bool:
    """A set literal, set comprehension, or direct set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class SetIterationRule(Rule):
    """DET005 — iterating a freshly-built set feeds hash order onward."""

    rule_id: ClassVar[str] = "DET005"
    summary: ClassVar[str] = (
        "iteration order of a set depends on PYTHONHASHSEED for str keys; "
        "wrap in sorted(...) before iterating or materializing"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
                and not node.keywords
            ):
                iters.append(node.args[0])
            for candidate in iters:
                if _is_set_expr(candidate):
                    yield self.finding(
                        ctx,
                        candidate,
                        "iterating an unordered set; order leaks PYTHONHASHSEED — "
                        "use sorted(...) (or keep a list/dict, which preserve order)",
                    )


class EnvironReadRule(Rule):
    """DET006 — environment reads are hidden configuration inputs."""

    rule_id: ClassVar[str] = "DET006"
    summary: ClassVar[str] = (
        "os.environ/os.getenv reads make runs depend on ambient shell "
        "state; all knobs enter through core/config.py StudyConfig"
    )
    exempt_suffixes: ClassVar[tuple[str, ...]] = ("repro/core/config.py",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if dotted_name(node) == "os.environ":
                    yield self.finding(
                        ctx, node, "`os.environ` read outside core/config.py"
                    )
            elif isinstance(node, ast.Call):
                if dotted_name(node.func) == "os.getenv":
                    yield self.finding(
                        ctx, node, "`os.getenv()` read outside core/config.py"
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "os":
                    for alias in node.names:
                        if alias.name in ("environ", "getenv"):
                            yield self.finding(
                                ctx,
                                node,
                                f"`from os import {alias.name}` outside core/config.py",
                            )


DET_RULES: tuple[type[Rule], ...] = (
    StdlibRandomRule,
    NumpyGlobalRandomRule,
    WallClockRule,
    UuidRule,
    SetIterationRule,
    EnvironReadRule,
)
