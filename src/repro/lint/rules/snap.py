"""SNAP rules: the fleet spawn/pickle surface must stay snapshot-safe.

``repro.fleet`` ships work to spawn-context workers and persists prefix
snapshots by pickling: replica specs, study state, and results all cross
a process or disk boundary by value. PR 6 defends that boundary at
*runtime* with config/rng digests; these rules defend it *statically*,
catching the failure class before a 200-replica sweep trips on it:

* SNAP001 — values on the spawn surface (fleet arm registries,
  ``ReplicaSpec`` arguments, pool submissions) and classes reachable
  from the pickled roots must be module-level and closure-free. A lambda
  or nested def pickles as a dead reference; a nested class cannot be
  re-imported by qualified name in the worker.
* SNAP002 — registry/submission values must resolve to a qualified name.
  ``functools.partial`` and call results smuggle captured arguments past
  the name-based arm resolution that makes worker dispatch replayable.
* SNAP003 — classes reachable from the pickled roots must keep
  ``__getstate__``/``__setstate__`` paired. Defining one without the
  other round-trips state asymmetrically: the envelope either drops
  fields on write or fails to restore them on read, and the runtime rng
  digest check only catches the subset that perturbs the rng.

Reachability is the transitive closure from the fleet spec classes
(``repro.fleet.spec``) and ``repro.core.*.Study`` over base classes and
attribute-type edges recorded in the project index.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Iterator, List, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.rules.base import ProjectRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.project import ClassFacts, ModuleFacts, ProjectIndex

#: module whose classes form the pickled fleet boundary (specs + results)
_SPEC_MODULE = "repro.fleet.spec"


def _pickle_roots(index: "ProjectIndex") -> List[str]:
    """Qualnames of the classes that cross the spawn/snapshot boundary."""
    roots: List[str] = []
    for qual, facts, cls in index.iter_classes():
        if facts.module == _SPEC_MODULE:
            roots.append(qual)
        elif cls.name == "Study" and (
            facts.module is not None and facts.module.startswith("repro.core")
        ):
            roots.append(qual)
    return roots


def _reachable_classes(
    index: "ProjectIndex",
) -> List[Tuple[str, "ModuleFacts", "ClassFacts"]]:
    """BFS over base-class and attribute-type edges from the pickle roots."""
    seen: Set[str] = set()
    queue = _pickle_roots(index)
    out: List[Tuple[str, "ModuleFacts", "ClassFacts"]] = []
    while queue:
        qual = queue.pop()
        if qual in seen:
            continue
        seen.add(qual)
        hit = index.class_facts(qual)
        if hit is None:
            continue
        facts, cls = hit
        out.append((qual, facts, cls))
        for base in cls.bases:
            queue.append(index.resolve_export(base))
        for type_names in cls.attr_types.values():
            for name in type_names:
                queue.append(index.resolve_export(name))
    return sorted(out, key=lambda item: item[0])


class SpawnSurfaceCallableRule(ProjectRule):
    """SNAP001 — spawn-surface callables/classes must be module-level."""

    rule_id: ClassVar[str] = "SNAP001"
    summary: ClassVar[str] = (
        "fleet arm registries, ReplicaSpec arguments, pool submissions, and "
        "classes reachable from the pickled fleet roots must be module-level "
        "and closure-free; lambdas and nested defs cannot cross the spawn "
        "boundary by qualified name"
    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        for facts in index.iter_repro_modules():
            for site in facts.spawn_sites:
                if site.value_kind == "lambda":
                    yield self.finding(
                        facts.path,
                        site.line,
                        site.col,
                        f"lambda placed on the fleet spawn surface ({site.context}); "
                        "spawn workers resolve callables by qualified name, which a "
                        "lambda does not have — define a module-level function",
                    )
                elif site.value_kind in ("name", "dotted") and site.value_ref:
                    hit = index.function_facts(site.value_ref)
                    if hit is not None and hit[1].nested:
                        yield self.finding(
                            facts.path,
                            site.line,
                            site.col,
                            f"`{site.value_ref}` on the fleet spawn surface "
                            f"({site.context}) is a nested function; closures do "
                            "not pickle — hoist it to module level",
                        )
        for qual, facts, cls in _reachable_classes(index):
            if cls.nested:
                yield self.finding(
                    facts.path,
                    cls.line,
                    cls.col,
                    f"class `{qual}` is reachable from the pickled fleet roots "
                    "but is not defined at module level; pickle restores classes "
                    "by qualified import, which a nested class defeats",
                )


class SpawnSurfaceResolvableRule(ProjectRule):
    """SNAP002 — spawn-surface values must resolve by qualified name."""

    rule_id: ClassVar[str] = "SNAP002"
    summary: ClassVar[str] = (
        "values on the fleet spawn surface must be resolvable by qualified "
        "name; functools.partial and call results capture state that bypasses "
        "the name-based arm resolution workers replay"
    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        for facts in index.iter_repro_modules():
            for site in facts.spawn_sites:
                if site.value_kind == "partial":
                    yield self.finding(
                        facts.path,
                        site.line,
                        site.col,
                        f"functools.partial on the fleet spawn surface "
                        f"({site.context}); captured arguments bypass the "
                        "name-based arm resolution — pass options through "
                        "ReplicaSpec.arm_options instead",
                    )
                elif site.value_kind == "call":
                    yield self.finding(
                        facts.path,
                        site.line,
                        site.col,
                        f"call result `{site.value_ref}(...)` on the fleet spawn "
                        f"surface ({site.context}); registry entries and "
                        "submissions must name a module-level callable so "
                        "workers can re-resolve it deterministically",
                    )


class SnapshotStatePairingRule(ProjectRule):
    """SNAP003 — reachable classes keep __getstate__/__setstate__ paired."""

    rule_id: ClassVar[str] = "SNAP003"
    summary: ClassVar[str] = (
        "classes reachable from the pickled fleet roots must define "
        "__getstate__ and __setstate__ together (or neither); an unpaired "
        "override round-trips snapshot state asymmetrically"
    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        for qual, facts, cls in _reachable_classes(index):
            if cls.has_getstate == cls.has_setstate:
                continue
            present, missing = (
                ("__getstate__", "__setstate__")
                if cls.has_getstate
                else ("__setstate__", "__getstate__")
            )
            yield self.finding(
                facts.path,
                cls.line,
                cls.col,
                f"class `{qual}` is pickled across the fleet boundary and "
                f"defines {present} without {missing}; unpaired state hooks "
                "restore snapshots asymmetrically — define both or neither",
            )


SNAP_RULES: tuple[type[ProjectRule], ...] = (
    SpawnSurfaceCallableRule,
    SpawnSurfaceResolvableRule,
    SnapshotStatePairingRule,
)
