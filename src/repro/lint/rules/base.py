"""Rule protocol and the per-module context rules inspect.

A rule is a class with a ``rule_id``, a one-line ``summary`` (shown by
``--list-rules`` and quoted in README), an optional tuple of path
suffixes where it is intentionally silent, and a ``check`` method that
walks the module AST and yields findings. Rules never read files — the
engine hands them a fully-parsed :class:`ModuleContext`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Iterator

from repro.lint.findings import Finding


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule may inspect about one parsed module."""

    #: path as given on the command line, normalized to posix separators
    path: str
    #: dotted module name when the file lives under the ``repro`` package
    #: (``repro.platform.clock``); ``None`` for tests and loose scripts
    module: str | None
    tree: ast.Module
    source: str

    @property
    def layer(self) -> str | None:
        """First package component below ``repro`` (``'platform'``, ...).

        ``None`` for files outside the package and for top-level modules
        such as ``repro.cli`` where ``repro.<name>`` is itself a module.
        """
        if self.module is None:
            return None
        parts = self.module.split(".")
        if len(parts) < 3 or parts[0] != "repro":
            return None
        return parts[1]


class Rule:
    """Base class; concrete rules override the class vars and ``check``."""

    rule_id: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    #: posix path suffixes where this rule is intentionally silent
    exempt_suffixes: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Whether the rule runs at all for this file (path exemptions)."""
        return not any(ctx.path.endswith(suffix) for suffix in self.exempt_suffixes)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Construct a finding anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
        )


class ProjectRule:
    """Base class for whole-program rules (phase two of the analyzer).

    Where :class:`Rule` sees one parsed module at a time, a project rule
    receives the assembled :class:`~repro.lint.project.ProjectIndex` and
    may reason across modules: chase re-exports, walk the approximate
    call graph, or take transitive closures over class-attribute edges.
    Findings still anchor to a concrete (path, line, col) so the shared
    suppression/waiver machinery applies unchanged.
    """

    rule_id: ClassVar[str] = ""
    summary: ClassVar[str] = ""

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, col: int, message: str) -> Finding:
        return Finding(path=path, line=line, col=col, rule=self.rule_id, message=message)


if TYPE_CHECKING:  # pragma: no cover - import cycle guard (project imports sources only)
    from repro.lint.project import ProjectIndex


def dotted_name(node: ast.expr) -> str | None:
    """Flatten an attribute chain to ``a.b.c``; ``None`` if not a chain.

    Rules match call sites syntactically (``np.random.seed`` is the
    spelling used across this codebase), so a chain rooted at anything
    other than a plain name (e.g. ``get_mod().random``) is out of scope.
    """
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None
