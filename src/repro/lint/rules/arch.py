"""ARCH rules: the package dependency graph must stay a layered DAG.

The reproduction's credibility argument (DESIGN.md §1) requires that the
measured substrate (`platform`, `behavior`, `netsim`) knows nothing about
the measurement machinery that observes it (`detection`, `analysis`,
`interventions`) — otherwise the "attribution recovers ground truth"
claims would be circular. The layer ranks below encode the sanctioned
downward-only import direction; ``core`` is the composition root.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleContext, Rule

#: Layer ranks; imports must point at strictly lower ranks (same layer is
#: always fine). Same-rank siblings (e.g. detection/honeypot) are
#: independent by construction and may not import each other.
LAYER_RANK: dict[str, int] = {
    "util": 0,
    "netsim": 0,
    "obs": 1,
    # the linter is tooling that observes the codebase, not simulation
    # substrate: it sits above obs so its index cache can report
    # hit-rate counters through the same telemetry as everything else
    "lint": 2,
    "platform": 2,
    "behavior": 3,
    "aas": 4,
    "honeypot": 5,
    "detection": 5,
    "analysis": 6,
    "interventions": 6,
    "core": 7,
    "fleet": 8,
    "bench": 9,
}

#: rank assigned to anything not in the table (top-level modules such as
#: repro.cli / repro.io, and the repro package root itself) — importable
#: from nowhere inside the layer stack
_TOP_RANK = 99


def _imported_repro_modules(tree: ast.Module) -> Iterator[tuple[ast.stmt, str]]:
    """Yield ``(stmt, dotted-module)`` for every absolute repro import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module is not None:
                if node.module == "repro" or node.module.startswith("repro."):
                    yield node, node.module


def _target_layer(module: str) -> str:
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else ""


class LayeringRule(Rule):
    """ARCH001 — imports must point strictly down the layer stack."""

    rule_id: ClassVar[str] = "ARCH001"
    summary: ClassVar[str] = (
        "cross-layer imports must point strictly downward (util/netsim -> "
        "obs -> platform -> behavior -> aas -> honeypot|detection -> "
        "analysis|interventions -> core -> fleet -> bench); the substrate "
        "never sees its observers"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        own_layer = ctx.layer
        if own_layer is None or own_layer not in LAYER_RANK:
            return
        own_rank = LAYER_RANK[own_layer]
        for node, module in _imported_repro_modules(ctx.tree):
            target = _target_layer(module)
            if target == own_layer:
                continue
            target_rank = LAYER_RANK.get(target, _TOP_RANK)
            if target_rank >= own_rank:
                yield self.finding(
                    ctx,
                    node,
                    f"layer '{own_layer}' (rank {own_rank}) must not import "
                    f"`{module}` (layer rank {target_rank}); dependencies "
                    "point strictly downward",
                )


class ServiceInternalsRule(Rule):
    """ARCH002 — observers treat the AAS roster as a black box."""

    rule_id: ClassVar[str] = "ARCH002"
    summary: ClassVar[str] = (
        "analysis/detection/interventions must not import "
        "repro.aas.services.<name> internals; go through the "
        "repro.aas.services package API (make_* factories, descriptors)"
    )

    _observer_layers = frozenset({"detection", "analysis", "interventions"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.layer not in self._observer_layers:
            return
        for node, module in _imported_repro_modules(ctx.tree):
            if module.startswith("repro.aas.services."):
                yield self.finding(
                    ctx,
                    node,
                    f"`{module}` reaches into a concrete service's internals; "
                    "the measurement side may only use the repro.aas.services "
                    "package API (honeypots observe, they don't introspect)",
                )


class StarImportRule(Rule):
    """ARCH003 — wildcard imports hide the dependency surface."""

    rule_id: ClassVar[str] = "ARCH003"
    summary: ClassVar[str] = (
        "`from repro... import *` hides which names a layer depends on "
        "and defeats the layering checks; import names explicitly"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if any(alias.name == "*" for alias in node.names):
                    from_repro = node.level > 0 or (
                        node.module is not None
                        and (node.module == "repro" or node.module.startswith("repro."))
                    )
                    if from_repro:
                        yield self.finding(
                            ctx,
                            node,
                            f"wildcard import from `{node.module or '.' * node.level}`",
                        )


class ProcessMachineryRule(Rule):
    """ARCH004 — process fan-out and serialization live in fleet only."""

    rule_id: ClassVar[str] = "ARCH004"
    summary: ClassVar[str] = (
        "multiprocessing / concurrent.futures / pickle / tempfile / "
        "shutil imports are confined to repro/fleet/; everywhere else "
        "they smuggle in process topology, serialized state, or "
        "filesystem scratch space the determinism contract can't see "
        "(fleet owns the snapshot envelope, the spawn pool, and the "
        "disk snapshot store)"
    )

    _banned_roots = frozenset(
        {"multiprocessing", "pickle", "concurrent", "tempfile", "shutil"}
    )

    def _offends(self, module: str) -> bool:
        return module.split(".")[0] in self._banned_roots

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module is None or not ctx.module.startswith("repro"):
            return
        if ctx.module == "repro.fleet" or ctx.module.startswith("repro.fleet."):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._offends(alias.name):
                        yield self.finding(
                            ctx,
                            node,
                            f"`import {alias.name}` outside repro/fleet/; "
                            "process pools and pickled state belong to the "
                            "fleet layer",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None and self._offends(node.module):
                    yield self.finding(
                        ctx,
                        node,
                        f"`from {node.module} import ...` outside repro/fleet/; "
                        "process pools and pickled state belong to the fleet layer",
                    )


ARCH_RULES: tuple[type[Rule], ...] = (
    LayeringRule,
    ServiceInternalsRule,
    StarImportRule,
    ProcessMachineryRule,
)
