"""API taint rules: RNG values must flow from sanctioned injection roots.

The determinism contract (DESIGN.md §2, §12) is that every generator in
the system descends from a seeded ``SeedSequenceFactory`` lineage out of
``repro.util.rng`` — so replaying a seed replays the study bit-for-bit.
The per-file rules catch the *syntactic* spellings of ambient RNG
(``np.random.seed``, wall-clock seeding); these project rules catch the
*dataflow* leaks the syntax check cannot see:

* API003 — an RNG minted by an unsanctioned constructor, laundered into
  a module global, or frozen into a default argument. Module globals and
  defaults are evaluated at import time, outside any seed lineage, and
  shared across studies — the canonical way replays diverge.
* API004 — a ``fast_path`` conditional whose branches draw from the RNG
  in different sequences. The fast/naive twins must consume the stream
  identically or the equivalence suite's byte-identity claim is void.

Judgments use the project index's RNG-returning fixpoint, so laundering
through a helper (``def make(): return derive_rng(...)`` assigned at
module scope) is still caught.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Iterator

from repro.lint.findings import Finding
from repro.lint.rules.base import ProjectRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.project import ModuleFacts, ProjectIndex

#: the shim that owns RNG construction; its own ctor calls are the roots
_RNG_SHIM_MODULE = "repro.util.rng"


def _in_shim(facts: "ModuleFacts") -> bool:
    return facts.module == _RNG_SHIM_MODULE


class RngProvenanceRule(ProjectRule):
    """API003 — every RNG must be reachable from a seeded injection root."""

    rule_id: ClassVar[str] = "API003"
    summary: ClassVar[str] = (
        "RNG values must flow from SeedSequenceFactory/derive_rng injection "
        "points; unsanctioned constructors, module-global generators, and "
        "RNG-valued default arguments sit outside the seed lineage and "
        "break replay determinism"
    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        from repro.lint.project import RNG_CONSTRUCTORS

        producers = index.rng_returning()
        for facts in index.iter_repro_modules():
            if _in_shim(facts):
                continue
            for site in facts.rng_sites:
                if site.kind == "ctor":
                    yield self.finding(
                        facts.path,
                        site.line,
                        site.col,
                        f"unsanctioned RNG constructor `{site.callee}`; inject a "
                        "generator derived from SeedSequenceFactory "
                        "(repro.util.rng) instead of minting ambient state",
                    )
                elif site.kind == "global":
                    if site.callee == "<alias>" or (
                        site.callee not in RNG_CONSTRUCTORS
                        and index.resolve_export(site.callee) in producers
                    ):
                        yield self.finding(
                            facts.path,
                            site.line,
                            site.col,
                            f"module-global `{site.symbol}` holds an RNG (via "
                            f"`{site.callee}`); generators bound at import time "
                            "are shared across studies and escape the seed "
                            "lineage — pass the rng through the call graph",
                        )
                elif site.kind == "default":
                    if (
                        site.callee in RNG_CONSTRUCTORS
                        or index.resolve_export(site.callee) in producers
                    ):
                        yield self.finding(
                            facts.path,
                            site.line,
                            site.col,
                            f"default argument `{site.symbol}` is an RNG built at "
                            "function-definition time; defaults are evaluated "
                            "once at import and shared across calls — require "
                            "the caller to inject the generator",
                        )


class FastPathDrawParityRule(ProjectRule):
    """API004 — fast/naive branches must consume the RNG stream identically."""

    rule_id: ClassVar[str] = "API004"
    summary: ClassVar[str] = (
        "rng draws inside fast_path-conditional branches must match the "
        "naive twin's draw sequence exactly, or the fast/naive byte-identity "
        "equivalence breaks"
    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        for facts in index.iter_repro_modules():
            for site in facts.fastpath_sites:
                if site.fast_draws == site.naive_draws:
                    continue
                fast = ", ".join(site.fast_draws) or "<none>"
                naive = ", ".join(site.naive_draws) or "<none>"
                yield self.finding(
                    facts.path,
                    site.line,
                    site.col,
                    "fast_path branch draws from the rng in a different "
                    f"sequence than its naive twin (fast: {fast}; naive: "
                    f"{naive}); both paths must advance the stream "
                    "identically to keep fast/naive outputs byte-identical",
                )


TAINT_RULES: tuple[type[ProjectRule], ...] = (RngProvenanceRule, FastPathDrawParityRule)
