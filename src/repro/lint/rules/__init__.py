"""Rule registry.

Per-file rules register by being listed in their family module's tuple;
the registry concatenates the families in report order (DET, ARCH, API,
OBS). Whole-program rules (phase two of the analyzer) live in a parallel
registry — TAINT (API003/004), SNAP, and the cross-module OBS rule — and
run only under ``--whole-program`` because they need the project index.
``--select`` on the CLI and the ``rules=`` arguments of the engine
accept any subset of either registry's ids.
"""

from __future__ import annotations

from repro.lint.rules.api import API_RULES
from repro.lint.rules.arch import ARCH_RULES
from repro.lint.rules.base import ModuleContext, ProjectRule, Rule, dotted_name
from repro.lint.rules.det import DET_RULES
from repro.lint.rules.obs import OBS_RULES, ObsWriteOnlyRule
from repro.lint.rules.snap import SNAP_RULES
from repro.lint.rules.taint import TAINT_RULES

_ALL_RULE_CLASSES: tuple[type[Rule], ...] = DET_RULES + ARCH_RULES + API_RULES + OBS_RULES

_ALL_PROJECT_RULE_CLASSES: tuple[type[ProjectRule], ...] = (
    TAINT_RULES + SNAP_RULES + (ObsWriteOnlyRule,)
)


def all_rules() -> list[Rule]:
    """One fresh instance of every registered per-file rule, in report order."""
    return [cls() for cls in _ALL_RULE_CLASSES]


def rule_ids() -> list[str]:
    return [cls.rule_id for cls in _ALL_RULE_CLASSES]


def select_rules(ids: list[str]) -> list[Rule]:
    """Instances for ``ids``; raises ``ValueError`` on an unknown id."""
    by_id = {cls.rule_id: cls for cls in _ALL_RULE_CLASSES}
    unknown = [rule_id for rule_id in ids if rule_id not in by_id]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [by_id[rule_id]() for rule_id in ids]


def all_project_rules() -> list[ProjectRule]:
    """One fresh instance of every whole-program rule, in report order."""
    return [cls() for cls in _ALL_PROJECT_RULE_CLASSES]


def project_rule_ids() -> list[str]:
    return [cls.rule_id for cls in _ALL_PROJECT_RULE_CLASSES]


def select_project_rules(ids: list[str]) -> list[ProjectRule]:
    """Project-rule instances for ``ids``; unknown ids raise ``ValueError``."""
    by_id = {cls.rule_id: cls for cls in _ALL_PROJECT_RULE_CLASSES}
    unknown = [rule_id for rule_id in ids if rule_id not in by_id]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [by_id[rule_id]() for rule_id in ids]


__all__ = [
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "all_project_rules",
    "all_rules",
    "dotted_name",
    "project_rule_ids",
    "rule_ids",
    "select_project_rules",
    "select_rules",
]
