"""Rule registry.

Rules register by being listed in their family module's tuple; the
registry concatenates the families in report order (DET, ARCH, API,
OBS).
``--select`` on the CLI and the ``rules=`` argument of the engine accept
any subset of these ids.
"""

from __future__ import annotations

from repro.lint.rules.api import API_RULES
from repro.lint.rules.arch import ARCH_RULES
from repro.lint.rules.base import ModuleContext, Rule, dotted_name
from repro.lint.rules.det import DET_RULES
from repro.lint.rules.obs import OBS_RULES

_ALL_RULE_CLASSES: tuple[type[Rule], ...] = DET_RULES + ARCH_RULES + API_RULES + OBS_RULES


def all_rules() -> list[Rule]:
    """One fresh instance of every registered rule, in report order."""
    return [cls() for cls in _ALL_RULE_CLASSES]


def rule_ids() -> list[str]:
    return [cls.rule_id for cls in _ALL_RULE_CLASSES]


def select_rules(ids: list[str]) -> list[Rule]:
    """Instances for ``ids``; raises ``ValueError`` on an unknown id."""
    by_id = {cls.rule_id: cls for cls in _ALL_RULE_CLASSES}
    unknown = [rule_id for rule_id in ids if rule_id not in by_id]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [by_id[rule_id]() for rule_id in ids]


__all__ = [
    "ModuleContext",
    "Rule",
    "all_rules",
    "dotted_name",
    "rule_ids",
    "select_rules",
]
