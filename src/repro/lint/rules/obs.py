"""OBS rules: telemetry flows through ``repro.obs``, not stdout.

A bare ``print()`` inside the library is invisible to the trace sink,
unlabeled, and impossible to switch off; the observability layer
(DESIGN.md "Observability architecture") exists so every progress or
diagnostic signal is a span or a metric that lands in the JSONL trace.
Only the user-facing entry points — the CLIs and the obs console
reporter itself — are in the business of writing to a terminal.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleContext, Rule

#: the sanctioned terminal writers: command-line front ends plus the
#: obs console reporter (which exists to render spans for --verbose)
_CONSOLE_OWNERS = (
    "repro/cli.py",
    "repro/bench/cli.py",
    "repro/lint/cli.py",
    "repro/obs/cli.py",
    "repro/obs/report.py",
)


class DirectPrintRule(Rule):
    """OBS001 — library code must not print; emit spans/metrics instead."""

    rule_id: ClassVar[str] = "OBS001"
    summary: ClassVar[str] = (
        "direct print() bypasses repro.obs telemetry (untraceable, "
        "unlabeled, can't be disabled); emit a span or metric, or print "
        "only from a CLI entry point"
    )
    exempt_suffixes: ClassVar[tuple[str, ...]] = _CONSOLE_OWNERS

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module is None:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "direct `print()` in library code; route progress through "
                    "a repro.obs span/metric (CLIs and obs reporters are the "
                    "only sanctioned terminal writers)",
                )


OBS_RULES: tuple[type[Rule], ...] = (DirectPrintRule,)
