"""OBS rules: telemetry flows through ``repro.obs``, not stdout.

A bare ``print()`` inside the library is invisible to the trace sink,
unlabeled, and impossible to switch off; the observability layer
(DESIGN.md "Observability architecture") exists so every progress or
diagnostic signal is a span or a metric that lands in the JSONL trace.
Only the user-facing entry points — the CLIs and the obs console
reporter itself — are in the business of writing to a terminal.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, ClassVar, Iterator

from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleContext, ProjectRule, Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.project import ProjectIndex

#: the sanctioned terminal writers: command-line front ends plus the
#: obs console reporter (which exists to render spans for --verbose)
_CONSOLE_OWNERS = (
    "repro/cli.py",
    "repro/bench/cli.py",
    "repro/lint/cli.py",
    "repro/obs/cli.py",
    "repro/obs/report.py",
)


class DirectPrintRule(Rule):
    """OBS001 — library code must not print; emit spans/metrics instead."""

    rule_id: ClassVar[str] = "OBS001"
    summary: ClassVar[str] = (
        "direct print() bypasses repro.obs telemetry (untraceable, "
        "unlabeled, can't be disabled); emit a span or metric, or print "
        "only from a CLI entry point"
    )
    exempt_suffixes: ClassVar[tuple[str, ...]] = _CONSOLE_OWNERS

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module is None:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "direct `print()` in library code; route progress through "
                    "a repro.obs span/metric (CLIs and obs reporters are the "
                    "only sanctioned terminal writers)",
                )


#: host-probe modules whose readings vary run to run — wall clocks and
#: process resource accounting — confined to the one waived obs module
_HOST_PROBE_MODULES = ("time", "resource")


class HostProbeConfinementRule(Rule):
    """OBS003 — host probes (``time``/``resource``) live in one module.

    Wall-clock and RSS readings are nondeterministic by nature; the
    observability layer keeps them behind ``repro/obs/walltime.py`` (the
    DET003-waived probe module) so every non-canonical trace field has a
    single auditable source and ``canonical_lines()`` can strip them
    all. Anything else importing ``time`` or ``resource`` either belongs
    in that module or is smuggling host state into the simulation.
    """

    rule_id: ClassVar[str] = "OBS003"
    summary: ClassVar[str] = (
        "wall-clock/RSS host probes (import time/resource) are confined "
        "to repro/obs/walltime.py so non-canonical trace fields have one "
        "auditable source; call read_wall_seconds/read_peak_rss_kb instead"
    )
    exempt_suffixes: ClassVar[tuple[str, ...]] = ("repro/obs/walltime.py",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in _HOST_PROBE_MODULES:
                        yield self.finding(
                            ctx,
                            node,
                            f"`import {alias.name}` outside repro/obs/walltime.py; "
                            "host probes (wall clock, RSS) are confined there — "
                            "use read_wall_seconds()/read_peak_rss_kb()",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None:
                    if node.module.split(".")[0] in _HOST_PROBE_MODULES:
                        yield self.finding(
                            ctx,
                            node,
                            f"`from {node.module} import ...` outside "
                            "repro/obs/walltime.py; host probes are confined "
                            "there — use read_wall_seconds()/read_peak_rss_kb()",
                        )


OBS_RULES: tuple[type[Rule], ...] = (DirectPrintRule, HostProbeConfinementRule)


class ObsWriteOnlyRule(ProjectRule):
    """OBS002 — obs state is write-only outside ``repro/obs/``.

    The "obs-off runs are bit-identical" claim (DESIGN.md §7) holds
    structurally only if no library code ever *reads* a counter value,
    metrics snapshot, or tracer record back into data that influences
    control flow or outputs. Export helpers (``trace_lines`` /
    ``dump_trace``) are the sanctioned way trace data leaves the
    process — they serialize at the boundary without feeding values back
    into the computation, so calling them is not a read.
    """

    rule_id: ClassVar[str] = "OBS002"
    summary: ClassVar[str] = (
        "modules outside repro/obs/ must not read metrics/tracer state "
        "(counter .value, metrics.snapshot(), tracer records) into values "
        "that influence control flow or outputs; obs must stay write-only "
        "so obs-off runs are structurally bit-identical"
    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        instrument_attrs = index.instrument_attrs()
        for facts in index.iter_repro_modules():
            module = facts.module or ""
            if module == "repro.obs" or module.startswith("repro.obs."):
                continue
            for site in facts.obs_reads:
                if site.attr and site.attr not in instrument_attrs:
                    # receiver attr never holds an instrument anywhere in
                    # the project — enum/.value-style access, not obs
                    continue
                yield self.finding(
                    facts.path,
                    site.line,
                    site.col,
                    f"reads obs state (`{site.expr}`) outside repro/obs/; "
                    "observability is write-only in library code so disabling "
                    "it cannot change behavior — export through "
                    "trace_lines/dump_trace or move the logic into repro.obs",
                )
