"""Module-scoped rule waivers.

Per-line ``# repro-lint: ignore[...]`` suppressions (engine.py) are the
right tool for one-off exceptions, but some packages are *categorically*
exempt from a rule — the perf harness reads the wall clock on every
measurement, and peppering it with identical per-line pragmas would bury
the real code. A waiver grants one rule to one module subtree, with a
recorded justification, and nothing else: the scope is a dotted-module
prefix match, so a waiver for ``repro.bench`` can never silence the same
rule in ``repro.core`` or anywhere outside the named subtree (the leak
test in ``tests/test_lint_waivers.py`` pins this down).

Waivers are deliberately a static table in source, not configuration:
adding one is a reviewed code change that must carry its reason.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Waiver:
    """One rule granted to one module subtree, with its justification."""

    #: rule id being waived, e.g. ``"DET003"``
    rule: str
    #: dotted module prefix the waiver covers (the module itself and any
    #: submodule below it)
    module_prefix: str
    #: why the subtree is categorically exempt — shown by --list-waivers
    reason: str

    def covers(self, rule_id: str, module: str | None) -> bool:
        """Whether this waiver silences ``rule_id`` in ``module``."""
        if module is None or rule_id != self.rule:
            return False
        return module == self.module_prefix or module.startswith(self.module_prefix + ".")


#: every standing waiver. Keep this list short: each entry is a hole in
#: the rule's coverage and needs to survive review.
WAIVERS: tuple[Waiver, ...] = (
    Waiver(
        rule="DET003",
        module_prefix="repro.bench",
        reason=(
            "the perf harness times wall-clock by design; timings are "
            "reporting outputs and never feed back into simulation state"
        ),
    ),
    Waiver(
        rule="DET003",
        module_prefix="repro.obs.walltime",
        reason=(
            "optional wall-clock span durations live behind this one "
            "module; they are write-only trace annotations, stripped by "
            "canonical_lines() before any determinism comparison"
        ),
    ),
    Waiver(
        rule="OBS003",
        module_prefix="repro.bench",
        reason=(
            "the perf harness reads the monotonic clock on every "
            "measurement by design (same grounds as its DET003 waiver); "
            "RSS it takes through repro.obs.walltime like everyone else"
        ),
    ),
    Waiver(
        rule="OBS002",
        module_prefix="repro.bench",
        reason=(
            "the perf harness snapshots metrics into its reporting "
            "payloads by design; bench output is measurement, never "
            "simulation state, so the read cannot perturb a study"
        ),
    ),
    Waiver(
        rule="OBS002",
        module_prefix="repro.lint",
        reason=(
            "--stats reads the linter's own index-cache counters to "
            "print hit rates; the linter is tooling that never runs "
            "inside a study, so obs-off equivalence is not at stake"
        ),
    ),
)


def find_waiver(rule_id: str, module: str | None) -> Waiver | None:
    """The waiver covering ``rule_id`` in ``module``, if any."""
    for waiver in WAIVERS:
        if waiver.covers(rule_id, module):
            return waiver
    return None
