"""Source-level helpers shared by the per-file and whole-program passes.

This module is a deliberate leaf: it imports nothing from the rest of
:mod:`repro.lint`, so both :mod:`repro.lint.engine` (the per-file pass)
and :mod:`repro.lint.project` (the whole-program indexer) can share the
suppression parser, the path→module mapping, the directory walk, and the
content digest that keys the incremental index cache.
"""

from __future__ import annotations

import hashlib
import io
import re
import tokenize
from pathlib import Path, PurePosixPath
from typing import Dict, FrozenSet, Iterable, Iterator, Union

#: directory names never descended into when a *directory* is linted;
#: passing such a path explicitly on the command line still lints it
#: (tests/fixtures/lint holds intentionally-violating corpus files)
SKIP_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".hg", "fixtures", "build", "dist", ".venv", "venv", ".eggs"}
)

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([A-Z0-9_,\s]+)\])?")

#: sentinel for a bare ``ignore`` (suppresses every rule on the line)
_ALL_RULES = frozenset({"*"})


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule ids waived there (``{'*'}`` = all).

    Comments are located with :mod:`tokenize` so a ``#`` inside a string
    literal can never suppress anything. Files broken badly enough that
    tokenization fails produce no suppressions — their findings stand.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            line = token.start[0]
            if match.group(1) is None:
                ids = _ALL_RULES
            else:
                ids = frozenset(
                    part.strip() for part in match.group(1).split(",") if part.strip()
                )
            suppressions[line] = suppressions.get(line, frozenset()) | ids
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return suppressions


def module_name_for(path: str) -> Union[str, None]:
    """Dotted module name for files under a ``repro`` package directory.

    Derived purely from the path shape (the last ``repro`` component and
    everything below it), so it works for ``src/repro/...``, installed
    trees, and temp-dir copies alike. ``None`` for tests and scripts.
    """
    parts = PurePosixPath(path.replace("\\", "/")).parts
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - tuple(reversed(parts)).index("repro")
    module_parts = list(parts[anchor:])
    leaf = module_parts[-1]
    if not leaf.endswith(".py"):
        return None
    module_parts[-1] = leaf[: -len(".py")]
    if module_parts[-1] == "__init__":
        module_parts.pop()
    return ".".join(module_parts)


def iter_python_files(paths: Iterable[Union[str, Path]]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list.

    Directories are walked recursively, skipping :data:`SKIP_DIR_NAMES`
    and hidden directories; explicit file arguments are always included.
    """
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py" and root not in seen:
                seen.add(root)
                yield root
            continue
        candidates = sorted(root.rglob("*.py"))
        for candidate in candidates:
            relative = candidate.relative_to(root).parts[:-1]
            if any(part in SKIP_DIR_NAMES or part.startswith(".") for part in relative):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def content_digest(source: str) -> str:
    """Stable hex digest of one file's text — the index cache key.

    BLAKE2 (not ``hash()``) so the cache survives process restarts and
    ``PYTHONHASHSEED`` changes; 16 bytes is ample for a per-repo cache.
    """
    return hashlib.blake2b(source.encode("utf-8"), digest_size=16).hexdigest()
