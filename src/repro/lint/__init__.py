"""Determinism & architecture linter for the reproduction codebase.

The whole study rests on one invariant: a run is a pure function of the
root seed (``StudyConfig.seed``), so every table and figure regenerates
bit-identically. ``repro.lint`` enforces that invariant — and the layered
architecture that makes the attribution argument non-circular — with an
AST pass over the source tree (stdlib :mod:`ast` only, no dependencies).

Rule families:

``DET``  determinism — bans ambient randomness, wall clocks, entropy
         UUIDs, environment reads, and hash-ordered set iteration
``ARCH`` layering — the simulated substrate must never import its
         observers; imports point strictly down the layer stack
``API``  randomness injection — analysis/detection/interventions accept
         ``rng``/``seeds`` parameters instead of minting generators;
         the whole-program half (API003/API004) taint-checks RNG
         provenance and fast/naive draw parity across modules
``SNAP`` spawn/pickle safety (whole-program) — everything on the fleet
         spawn surface stays module-level, name-resolvable, and
         ``__getstate__``-consistent
``OBS``  telemetry — library code never prints (OBS001) and never reads
         obs state back into behavior (OBS002, whole-program)

The cross-module families run over a project index built incrementally
from a digest-keyed on-disk cache (DESIGN.md §12).

Programmatic use::

    from repro.lint import lint_paths, lint_whole_program
    assert lint_paths(["src/repro"]) == []
    assert lint_whole_program(["src/repro"]) == []

Command line::

    python -m repro.lint src tests
    python -m repro.lint src --whole-program --stats
    python -m repro.lint src --changed-only
    python -m repro.lint --list-rules
    python -m repro.lint src --format json

Per-line waivers (always add the justification)::

    call()  # repro-lint: ignore[DET003] -- benchmarking harness, not sim
"""

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cli import main
from repro.lint.engine import (
    changed_files,
    lint_paths,
    lint_source,
    lint_whole_program,
    parse_suppressions,
)
from repro.lint.findings import PARSE_RULE, Finding
from repro.lint.project import ProjectIndex, build_index
from repro.lint.reporters import JSON_SCHEMA_VERSION, render_json, render_text
from repro.lint.rules import (
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    project_rule_ids,
    rule_ids,
    select_project_rules,
    select_rules,
)

__all__ = [
    "Finding",
    "JSON_SCHEMA_VERSION",
    "PARSE_RULE",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "all_project_rules",
    "all_rules",
    "apply_baseline",
    "build_index",
    "changed_files",
    "lint_paths",
    "lint_source",
    "lint_whole_program",
    "load_baseline",
    "main",
    "parse_suppressions",
    "project_rule_ids",
    "rule_ids",
    "render_json",
    "render_text",
    "select_project_rules",
    "select_rules",
    "write_baseline",
]
