"""Determinism & architecture linter for the reproduction codebase.

The whole study rests on one invariant: a run is a pure function of the
root seed (``StudyConfig.seed``), so every table and figure regenerates
bit-identically. ``repro.lint`` enforces that invariant — and the layered
architecture that makes the attribution argument non-circular — with an
AST pass over the source tree (stdlib :mod:`ast` only, no dependencies).

Rule families:

``DET``  determinism — bans ambient randomness, wall clocks, entropy
         UUIDs, environment reads, and hash-ordered set iteration
``ARCH`` layering — the simulated substrate must never import its
         observers; imports point strictly down the layer stack
``API``  randomness injection — analysis/detection/interventions accept
         ``rng``/``seeds`` parameters instead of minting generators

Programmatic use::

    from repro.lint import lint_paths
    findings = lint_paths(["src/repro"])
    assert findings == []

Command line::

    python -m repro.lint src tests
    python -m repro.lint --list-rules
    python -m repro.lint src --format json

Per-line waivers (always add the justification)::

    call()  # repro-lint: ignore[DET003] -- benchmarking harness, not sim
"""

from repro.lint.cli import main
from repro.lint.engine import lint_paths, lint_source, parse_suppressions
from repro.lint.findings import PARSE_RULE, Finding
from repro.lint.reporters import JSON_SCHEMA_VERSION, render_json, render_text
from repro.lint.rules import Rule, all_rules, rule_ids, select_rules

__all__ = [
    "Finding",
    "JSON_SCHEMA_VERSION",
    "PARSE_RULE",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "main",
    "parse_suppressions",
    "render_json",
    "render_text",
    "rule_ids",
    "select_rules",
]
