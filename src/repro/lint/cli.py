"""``python -m repro.lint`` — lint paths, print findings, exit non-zero.

Exit codes: 0 clean, 1 findings (or unparseable files), 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.engine import lint_paths
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import all_rules, select_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism & architecture linter for the repro "
            "package (rule families: DET determinism, ARCH layering, API "
            "randomness injection)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id and summary, then exit",
    )
    parser.add_argument(
        "--list-waivers",
        action="store_true",
        help="print every module-scoped waiver and its reason, then exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    if args.list_waivers:
        from repro.lint.waivers import WAIVERS

        for waiver in WAIVERS:
            print(f"{waiver.rule}  {waiver.module_prefix}.*  {waiver.reason}")
        return 0

    if not args.paths:
        parser.error("no paths given (try: python -m repro.lint src tests)")

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    not_python = [
        path for path in args.paths if Path(path).is_file() and Path(path).suffix != ".py"
    ]
    if not_python:
        parser.error(f"not a python file: {', '.join(not_python)}")

    rules = None
    if args.select:
        try:
            rules = select_rules([part.strip() for part in args.select.split(",") if part.strip()])
        except ValueError as exc:
            parser.error(str(exc))

    findings = lint_paths(args.paths, rules=rules)
    report = render_json(findings) if args.format == "json" else render_text(findings)
    print(report)
    if findings:
        print(
            f"repro.lint: {len(findings)} finding(s); suppress a justified "
            "exception with `# repro-lint: ignore[RULE] -- reason`",
            file=sys.stderr,
        )
    return 1 if findings else 0
