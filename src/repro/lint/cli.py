"""``python -m repro.lint`` — lint paths, print findings, exit non-zero.

Exit codes: 0 clean, 1 findings (or unparseable files), 2 usage error.

Two passes share this front end (DESIGN.md §12): the per-file rules
always run; ``--whole-program`` additionally builds the project index
(incrementally, via the digest-keyed cache) and runs the cross-module
rules over it. ``--changed-only`` narrows the per-file pass to files
whose digest differs from the cache — the fast pre-push path.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Sequence

from repro.lint.engine import changed_files, lint_paths, lint_whole_program
from repro.lint.findings import Finding
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import (
    all_project_rules,
    all_rules,
    project_rule_ids,
    rule_ids,
    select_project_rules,
    select_rules,
)
from repro.obs.facade import Observability


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism & architecture linter for the repro "
            "package (per-file rule families: DET determinism, ARCH "
            "layering, API randomness injection, OBS telemetry; "
            "whole-program families under --whole-program: API taint "
            "flow, SNAP spawn/pickle safety, OBS write-only purity)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help=(
            "also build the project index and run the cross-module rules "
            "(API003/API004, SNAP001-003, OBS002)"
        ),
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "per-file pass analyzes only files whose content digest "
            "differs from the index cache (fast pre-push path); the "
            "whole-program pass, if requested, still sees every file "
            "through the cache"
        ),
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=".repro_lint_cache.json",
        help=(
            "project index cache file keyed by content digest "
            "(default: .repro_lint_cache.json)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="build the project index without reading or writing the cache",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print index cache hit/miss counters (repro.obs telemetry) to "
            "stderr after a --whole-program run"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "subtract findings recorded in this baseline file; only "
            "non-baselined findings are reported and fail the run"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write the current findings to a baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id and summary, then exit",
    )
    parser.add_argument(
        "--list-waivers",
        action="store_true",
        help="print every module-scoped waiver and its reason, then exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        for project_rule in all_project_rules():
            print(f"{project_rule.rule_id}  [whole-program]  {project_rule.summary}")
        return 0

    if args.list_waivers:
        from repro.lint.waivers import WAIVERS

        for waiver in WAIVERS:
            print(f"{waiver.rule}  {waiver.module_prefix}.*  {waiver.reason}")
        return 0

    if not args.paths:
        parser.error("no paths given (try: python -m repro.lint src tests)")

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    not_python = [
        path for path in args.paths if Path(path).is_file() and Path(path).suffix != ".py"
    ]
    if not_python:
        parser.error(f"not a python file: {', '.join(not_python)}")

    # partition --select across the per-file and whole-program registries
    file_rules = None
    project_rules = None
    if args.select:
        selected = [part.strip() for part in args.select.split(",") if part.strip()]
        file_ids = [rule_id for rule_id in selected if rule_id in set(rule_ids())]
        proj_ids = [rule_id for rule_id in selected if rule_id in set(project_rule_ids())]
        unknown = sorted(set(selected) - set(file_ids) - set(proj_ids))
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")
        if proj_ids and not args.whole_program:
            parser.error(
                f"rule(s) {', '.join(proj_ids)} need the project index; add --whole-program"
            )
        file_rules = select_rules(file_ids)
        project_rules = select_project_rules(proj_ids)

    cache_path = None if args.no_cache else args.cache

    lint_targets: List[str | Path] = list(args.paths)
    if args.changed_only:
        if cache_path is None:
            parser.error("--changed-only needs the cache; drop --no-cache")
        lint_targets = list(changed_files(args.paths, cache_path))
        if not lint_targets and not args.whole_program:
            print("repro.lint: no files changed since the cached index", file=sys.stderr)
            return 0

    findings: List[Finding] = []
    if not (args.select and not file_rules):
        findings.extend(lint_paths(lint_targets, rules=file_rules))

    obs = Observability(enabled=True)
    if args.whole_program and not (args.select and not project_rules):
        findings.extend(
            lint_whole_program(args.paths, rules=project_rules, cache_path=cache_path, obs=obs)
        )
    findings = sorted(set(findings))

    if args.write_baseline:
        from repro.lint.baseline import write_baseline

        write_baseline(findings, args.write_baseline)
        print(
            f"repro.lint: wrote {len(findings)} finding(s) to baseline "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.baseline:
        from repro.lint.baseline import apply_baseline, load_baseline

        if not Path(args.baseline).exists():
            parser.error(f"no such baseline: {args.baseline}")
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            parser.error(str(exc))
        findings = apply_baseline(findings, baseline)

    report = render_json(findings) if args.format == "json" else render_text(findings)
    print(report)

    if args.stats and args.whole_program:
        snapshot = obs.metrics.snapshot()
        for entry in snapshot["metrics"]:  # type: ignore[union-attr, index]
            name = entry["name"]  # type: ignore[index, call-overload]
            if isinstance(name, str) and name.startswith("lint.index."):
                print(f"{name} = {entry['value']}", file=sys.stderr)  # type: ignore[index, call-overload]

    if findings:
        print(
            f"repro.lint: {len(findings)} finding(s); suppress a justified "
            "exception with `# repro-lint: ignore[RULE] -- reason`",
            file=sys.stderr,
        )
    return 1 if findings else 0
