"""Finding baselines for staged adoption of new rules.

When a new rule family lands, the tree may carry findings that are real
but cannot all be fixed in the same change. A baseline file records the
accepted debt: CI subtracts baselined findings and fails only on *new*
ones, so the rule is enforced for all future code while the backlog
burns down explicitly (deleting entries as fixes land).

Baselines key on ``(rule, path, message)`` — deliberately **not** on
line numbers, so unrelated edits that shift a file do not resurrect
baselined findings. The trade-off: two identical findings in one file
collapse to a single baseline entry. Messages embed the offending
symbol names, which keeps collisions rare in practice.

Unlike waivers (a reviewed hole in a rule's coverage, forever) a
baseline entry is a queue: the file is expected to shrink to empty.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import FrozenSet, List, Sequence, Tuple, Union

from repro.lint.findings import Finding

BASELINE_SCHEMA_VERSION = 1

#: the identity a baseline entry pins (line numbers intentionally absent)
BaselineKey = Tuple[str, str, str]


def baseline_key(finding: Finding) -> BaselineKey:
    return (finding.rule, finding.path, finding.message)


def load_baseline(path: Union[str, Path]) -> FrozenSet[BaselineKey]:
    """Parse a baseline file; malformed content raises ``ValueError``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported baseline schema in {path}: expected version "
            f"{BASELINE_SCHEMA_VERSION}"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} has no entry list")
    keys: set[BaselineKey] = set()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError(f"baseline {path} contains a non-object entry")
        keys.add((str(entry["rule"]), str(entry["path"]), str(entry["message"])))
    return frozenset(keys)


def write_baseline(findings: Sequence[Finding], path: Union[str, Path]) -> None:
    """Persist the current findings as the accepted baseline (sorted)."""
    entries = sorted(
        {baseline_key(finding) for finding in findings},
    )
    payload = {
        "version": BASELINE_SCHEMA_VERSION,
        "entries": [
            {"rule": rule, "path": file_path, "message": message}
            for rule, file_path, message in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding], baseline: FrozenSet[BaselineKey]
) -> List[Finding]:
    """Findings not covered by the baseline (the ones that should fail CI)."""
    return [finding for finding in findings if baseline_key(finding) not in baseline]


__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "BaselineKey",
    "apply_baseline",
    "baseline_key",
    "load_baseline",
    "write_baseline",
]
