"""The unit of lint output: one rule violation at one source location.

``Finding`` is deliberately tiny and immutable — rules produce them, the
engine filters suppressed ones, and reporters serialize them. Ordering is
lexicographic on ``(path, line, col, rule)`` so reports are stable across
runs regardless of rule execution order.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Pseudo-rule emitted when a file cannot be parsed at all.
PARSE_RULE = "PARSE"


@dataclass(frozen=True, order=True)
class Finding:
    """One violation: where it is, which rule fired, and why."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (schema checked by the test suite)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human-readable form: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
