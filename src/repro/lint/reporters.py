"""Finding serializers: a grep-able text form and a stable JSON form.

The JSON schema is versioned and asserted by the test suite so external
tooling (CI annotations, dashboards) can rely on it::

    {
      "version": 1,
      "count": <int>,
      "findings": [
        {"rule": str, "path": str, "line": int, "col": int, "message": str},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.findings import Finding

#: bump when the JSON structure changes shape
JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """``path:line:col: RULE message`` lines plus a summary trailer."""
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
