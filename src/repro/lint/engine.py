"""The lint engine: discovery, parsing, suppression, rule dispatch.

Suppression syntax (checked by ``tests/test_lint_rules.py``)::

    bad_call()  # repro-lint: ignore[DET003] -- justification goes here

The bracket list names the rule ids being waived on that line; a bare
``# repro-lint: ignore`` waives every rule on the line. Suppressions are
per-line and should always carry a trailing justification — the linter
does not enforce the prose, review does.

Whole-subtree exemptions (e.g. the perf harness reading the wall clock)
live in :mod:`repro.lint.waivers` instead of per-line pragmas; the
engine drops a finding when a waiver covers its (rule, module) pair.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Sequence

from repro.lint.findings import PARSE_RULE, Finding
from repro.lint.rules import ModuleContext, Rule, all_rules
from repro.lint.waivers import find_waiver

#: directory names never descended into when a *directory* is linted;
#: passing such a path explicitly on the command line still lints it
#: (tests/fixtures/lint holds intentionally-violating corpus files)
SKIP_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".hg", "fixtures", "build", "dist", ".venv", "venv", ".eggs"}
)

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([A-Z0-9_,\s]+)\])?")

#: sentinel for a bare ``ignore`` (suppresses every rule on the line)
_ALL_RULES = frozenset({"*"})


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids waived there (``{'*'}`` = all).

    Comments are located with :mod:`tokenize` so a ``#`` inside a string
    literal can never suppress anything. Files broken badly enough that
    tokenization fails produce no suppressions — their findings stand.
    """
    suppressions: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            line = token.start[0]
            if match.group(1) is None:
                ids = _ALL_RULES
            else:
                ids = frozenset(
                    part.strip() for part in match.group(1).split(",") if part.strip()
                )
            suppressions[line] = suppressions.get(line, frozenset()) | ids
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return suppressions


def _is_suppressed(finding: Finding, suppressions: dict[int, frozenset[str]]) -> bool:
    waived = suppressions.get(finding.line)
    if waived is None:
        return False
    return "*" in waived or finding.rule in waived


def module_name_for(path: str) -> str | None:
    """Dotted module name for files under a ``repro`` package directory.

    Derived purely from the path shape (the last ``repro`` component and
    everything below it), so it works for ``src/repro/...``, installed
    trees, and temp-dir copies alike. ``None`` for tests and scripts.
    """
    parts = PurePosixPath(path.replace("\\", "/")).parts
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - tuple(reversed(parts)).index("repro")
    module_parts = list(parts[anchor:])
    leaf = module_parts[-1]
    if not leaf.endswith(".py"):
        return None
    module_parts[-1] = leaf[: -len(".py")]
    if module_parts[-1] == "__init__":
        module_parts.pop()
    return ".".join(module_parts)


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one module given as text; ``path`` drives exemption logic."""
    normalized = path.replace("\\", "/")
    active = list(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=normalized)
    except SyntaxError as exc:
        return [
            Finding(
                path=normalized,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_RULE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = ModuleContext(
        path=normalized, module=module_name_for(normalized), tree=tree, source=source
    )
    suppressions = parse_suppressions(source)
    findings = [
        finding
        for rule in active
        if rule.applies_to(ctx)
        for finding in rule.check(ctx)
        if not _is_suppressed(finding, suppressions)
        and find_waiver(finding.rule, ctx.module) is None
    ]
    return sorted(findings)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list.

    Directories are walked recursively, skipping :data:`SKIP_DIR_NAMES`
    and hidden directories; explicit file arguments are always included.
    """
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py" and root not in seen:
                seen.add(root)
                yield root
            continue
        candidates = sorted(root.rglob("*.py"))
        for candidate in candidates:
            relative = candidate.relative_to(root).parts[:-1]
            if any(part in SKIP_DIR_NAMES or part.startswith(".") for part in relative):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint every python file reachable from ``paths``."""
    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, file_path.as_posix(), rules=active))
    return sorted(findings)
