"""The lint engine: discovery, parsing, suppression, rule dispatch.

Suppression syntax (checked by ``tests/test_lint_rules.py``)::

    bad_call()  # repro-lint: ignore[DET003] -- justification goes here

The bracket list names the rule ids being waived on that line; a bare
``# repro-lint: ignore`` waives every rule on the line. Suppressions are
per-line and should always carry a trailing justification — the linter
does not enforce the prose, review does.

Whole-subtree exemptions (e.g. the perf harness reading the wall clock)
live in :mod:`repro.lint.waivers` instead of per-line pragmas; the
engine drops a finding when a waiver covers its (rule, module) pair.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.lint.findings import PARSE_RULE, Finding
from repro.lint.rules import ModuleContext, ProjectRule, Rule, all_project_rules, all_rules
from repro.lint.sources import (
    SKIP_DIR_NAMES,
    content_digest,
    iter_python_files,
    module_name_for,
    parse_suppressions,
)
from repro.lint.waivers import find_waiver

__all__ = [
    "SKIP_DIR_NAMES",
    "changed_files",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "lint_whole_program",
    "module_name_for",
    "parse_suppressions",
]


def _is_suppressed(finding: Finding, suppressions: dict[int, frozenset[str]]) -> bool:
    waived = suppressions.get(finding.line)
    if waived is None:
        return False
    return "*" in waived or finding.rule in waived


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one module given as text; ``path`` drives exemption logic."""
    normalized = path.replace("\\", "/")
    active = list(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=normalized)
    except SyntaxError as exc:
        return [
            Finding(
                path=normalized,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_RULE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = ModuleContext(
        path=normalized, module=module_name_for(normalized), tree=tree, source=source
    )
    suppressions = parse_suppressions(source)
    findings = [
        finding
        for rule in active
        if rule.applies_to(ctx)
        for finding in rule.check(ctx)
        if not _is_suppressed(finding, suppressions)
        and find_waiver(finding.rule, ctx.module) is None
    ]
    return sorted(findings)


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint every python file reachable from ``paths``."""
    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, file_path.as_posix(), rules=active))
    return sorted(findings)


# -- whole-program pass ------------------------------------------------------


def lint_whole_program(
    paths: Iterable[str | Path],
    rules: Sequence[ProjectRule] | None = None,
    cache_path: str | Path | None = None,
    obs: object = None,
) -> list[Finding]:
    """Run the cross-module rules over a project index built from ``paths``.

    This is phase two of the analyzer (DESIGN.md §12): phase one builds —
    or loads from the digest-keyed cache at ``cache_path`` — a
    :class:`~repro.lint.project.ProjectIndex`, and the project rules then
    walk that index instead of individual ASTs. Findings flow through the
    same suppression/waiver machinery as the per-file pass, keyed by the
    suppression tables the index recorded per file.
    """
    from repro.lint.project import build_index

    active = list(rules) if rules is not None else all_project_rules()
    index = build_index(paths, cache_path=cache_path, obs=obs)
    findings: list[Finding] = []
    for rule in active:
        for finding in rule.check_project(index):
            facts = index.facts_for_path(finding.path)
            if facts is not None and _is_suppressed(finding, facts.suppression_map()):
                continue
            module = facts.module if facts is not None else module_name_for(finding.path)
            if find_waiver(finding.rule, module) is not None:
                continue
            findings.append(finding)
    return sorted(findings)


def changed_files(
    paths: Iterable[str | Path],
    cache_path: str | Path,
) -> list[Path]:
    """Files under ``paths`` whose content digest differs from the cache.

    The fast pre-push path: a file whose digest matches its cache entry
    was already analyzed bit-identically, so re-linting it cannot change
    the verdict. Files missing from the cache (new, or never indexed)
    always count as changed.
    """
    from repro.lint.project import IndexCache

    cache = IndexCache(Path(cache_path))
    changed: list[Path] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        if cache.lookup(file_path.as_posix(), content_digest(source)) is None:
            changed.append(file_path)
    return changed
