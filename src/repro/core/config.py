"""Study configuration and presets.

All scale-dependent knobs live here. Population and customer counts are
scaled down from the paper's (Instagram has 800M users; the simulation
runs thousands), and ``quantity_scale`` shrinks collusion-package sizes
correspondingly — the analyses consume the same scaled catalogs the
services publish, so every accounting relationship is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.aas.clientele import ClienteleParams
from repro.behavior.degree import DegreeDistribution
from repro.behavior.population import PopulationConfig
from repro.behavior.reciprocity import ReciprocityParams


def _instalex_clientele(initial: int, daily: float) -> ClienteleParams:
    #: Section 5.1: Insta* long-term conversion 21%; Insta* grew ~10%.
    #: The requested-action menu includes a comment-buying minority so the
    #: Table 11 Insta* mix (5.6% comments) emerges.
    from repro.platform.models import ActionType

    return ClienteleParams(
        initial_customers=initial,
        initial_long_term_fraction=0.40,
        daily_new_customers=daily,
        conversion_rate=0.21,
        renewal_probability=0.93,
        requested_actions_menu=(
            (frozenset({ActionType.LIKE, ActionType.FOLLOW, ActionType.UNFOLLOW}), 0.42),
            (
                frozenset(
                    {ActionType.LIKE, ActionType.FOLLOW, ActionType.COMMENT, ActionType.UNFOLLOW}
                ),
                0.30,
            ),
            (frozenset({ActionType.LIKE, ActionType.FOLLOW}), 0.18),
            (frozenset({ActionType.LIKE}), 0.10),
        ),
    )


def _boostgram_clientele(initial: int, daily: float) -> ClienteleParams:
    #: Section 5.1: Boostgram conversion 12% (priciest service); shrank.
    return ClienteleParams(
        initial_customers=initial,
        initial_long_term_fraction=0.40,
        daily_new_customers=daily,
        conversion_rate=0.12,
        renewal_probability=0.80,
    )


def _hublaagram_clientele(initial: int, daily: float) -> ClienteleParams:
    #: Section 5.1: Hublaagram conversion 37%, ~50% long-term; Table 9's
    #: purchase mix sets the propensities.
    return ClienteleParams(
        initial_customers=initial,
        initial_long_term_fraction=0.50,
        daily_new_customers=daily,
        conversion_rate=0.37,
        long_engagement_fraction=0.45,
        free_like_request_share=0.42,
        no_outbound_fraction=0.024,
        monthly_plan_fraction=0.032,
        one_time_package_fraction=0.0005,
    )


def _followersgratis_clientele(initial: int, daily: float) -> ClienteleParams:
    return ClienteleParams(
        initial_customers=initial,
        initial_long_term_fraction=0.30,
        daily_new_customers=daily,
        long_engagement_fraction=0.3,
        free_like_request_share=0.0,  # free follows only
        no_outbound_fraction=0.0,
        monthly_plan_fraction=0.0,
        one_time_package_fraction=0.0,
    )


@dataclass(frozen=True)
class ServicePlans:
    """Per-service clientele parameters (None disables the service)."""

    instalex: ClienteleParams | None = field(default_factory=lambda: _instalex_clientele(60, 2.0))
    instazood: ClienteleParams | None = field(default_factory=lambda: _instalex_clientele(50, 1.8))
    boostgram: ClienteleParams | None = field(default_factory=lambda: _boostgram_clientele(20, 0.5))
    hublaagram: ClienteleParams | None = field(default_factory=lambda: _hublaagram_clientele(250, 8.0))
    followersgratis: ClienteleParams | None = field(
        default_factory=lambda: _followersgratis_clientele(20, 0.5)
    )


@dataclass(frozen=True)
class StudyConfig:
    """Everything needed to build and run a Study."""

    seed: int = 42
    population: PopulationConfig = field(
        default_factory=lambda: PopulationConfig(
            size=1200, out_degree=DegreeDistribution(median=30.0, sigma=1.0)
        )
    )
    #: fraction of organic users whose home endpoint is a datacenter/VPN
    #: address inside a service exit ASN — the benign traffic "blended in"
    #: that makes those ASNs mixed (Section 6.2)
    vpn_fraction: float = 0.015
    #: collusion-package quantity scaling (see HublaagramCatalog.scaled)
    quantity_scale: float = 0.1
    #: reciprocity-AAS daily-budget scaling. The paper-scale budgets (tens
    #: of follows per customer per day against 800M candidate accounts)
    #: would exhaust a simulated population's fresh targets; scaling all
    #: budgets uniformly preserves every relative shape (action mixes,
    #: thresholds, reaction dynamics) at simulation scale.
    budget_scale: float = 0.5
    reciprocity: ReciprocityParams = field(default_factory=ReciprocityParams)
    plans: ServicePlans = field(default_factory=ServicePlans)
    #: honeypots per (service, action type) batch
    honeypots_empty_per_batch: int = 4
    honeypots_lived_in_per_batch: int = 1
    #: inactive attribution-baseline accounts
    inactive_honeypots: int = 10
    #: length of the honeypot phase before the measurement window
    honeypot_days: int = 8
    measurement_days: int = 90
    #: Instalex's curated recipient list: the share of its like targets
    #: drawn from the curated pool rather than ordinary targeting
    curated_mix_fraction: float = 0.7
    #: run the indexed/incremental hot paths: timing-wheel agent
    #: scheduling in Study.tick and streaming log attribution. Results
    #: are bit-identical either way (test-enforced); False keeps the
    #: naive reference loops for equivalence testing and debugging.
    fast_path: bool = True
    #: collect repro.obs telemetry (metrics + tick-pinned phase spans).
    #: Telemetry is write-only — simulation results are bit-identical
    #: either way (test-enforced); False skips instrument registration
    #: entirely so hot paths touch shared no-op instruments.
    observability: bool = True
    #: attach the deterministic cost-model profiler
    #: (:mod:`repro.obs.prof`): phase spans gain ``cost_total``/
    #: ``cost_self`` work-unit attrs. Requires ``observability``;
    #: study payloads are bit-identical either way (test-enforced).
    profile: bool = False
    #: arm services with post-block migration (the Section 6.4 epilogue:
    #: ASN moves, and for the Insta* parent an extensive proxy network).
    #: Off by default — the tabled analyses predate the epilogue.
    enable_migration: bool = False
    #: how long blocking must persist before a service relocates
    migration_patience_days: int = 14

    def __post_init__(self):
        if self.measurement_days < 1 or self.honeypot_days < 1:
            raise ValueError("phase durations must be positive")
        if not 0.0 <= self.vpn_fraction <= 1.0:
            raise ValueError("vpn_fraction must be a probability")
        if self.quantity_scale <= 0:
            raise ValueError("quantity_scale must be positive")
        if self.budget_scale <= 0:
            raise ValueError("budget_scale must be positive")

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------

    @staticmethod
    def tiny(seed: int = 42) -> "StudyConfig":
        """Unit-test scale: seconds to run, statistics are rough."""
        return StudyConfig(
            seed=seed,
            population=PopulationConfig(
                size=260,
                out_degree=DegreeDistribution(median=12.0, sigma=0.9),
                # few tags so hashtag audiences stay a usable fraction of
                # the tiny universe
                hashtag_vocabulary=("travel", "food", "fitness", "art", "pets"),
            ),
            plans=ServicePlans(
                instalex=_instalex_clientele(12, 0.8),
                instazood=_instalex_clientele(10, 0.6),
                boostgram=_boostgram_clientele(6, 0.3),
                hublaagram=_hublaagram_clientele(40, 2.0),
                followersgratis=_followersgratis_clientele(8, 0.3),
            ),
            honeypots_empty_per_batch=2,
            honeypots_lived_in_per_batch=1,
            inactive_honeypots=4,
            honeypot_days=4,
            measurement_days=10,
            budget_scale=0.25,
        )

    @staticmethod
    def small(seed: int = 42) -> "StudyConfig":
        """Integration-test scale: ~a minute, shapes hold loosely."""
        return StudyConfig(
            seed=seed,
            population=PopulationConfig(
                size=900,
                out_degree=DegreeDistribution(median=25.0, sigma=1.0),
                hashtag_vocabulary=(
                    "travel", "food", "fitness", "fashion", "art", "music",
                    "pets", "sports",
                ),
            ),
            plans=ServicePlans(
                instalex=_instalex_clientele(40, 1.5),
                instazood=_instalex_clientele(35, 1.2),
                boostgram=_boostgram_clientele(15, 0.4),
                hublaagram=_hublaagram_clientele(150, 5.0),
                followersgratis=_followersgratis_clientele(15, 0.4),
            ),
            honeypots_empty_per_batch=3,
            honeypots_lived_in_per_batch=1,
            inactive_honeypots=6,
            honeypot_days=7,
            measurement_days=30,
            budget_scale=0.35,
        )

    @staticmethod
    def paper_shaped(seed: int = 42) -> "StudyConfig":
        """Benchmark scale: the full 90-day window, several minutes."""
        return StudyConfig(
            seed=seed,
            population=PopulationConfig(
                size=2000, out_degree=DegreeDistribution(median=35.0, sigma=1.05)
            ),
            plans=ServicePlans(
                instalex=_instalex_clientele(70, 2.2),
                instazood=_instalex_clientele(60, 1.8),
                boostgram=_boostgram_clientele(25, 0.5),
                hublaagram=_hublaagram_clientele(400, 10.0),
                followersgratis=_followersgratis_clientele(25, 0.5),
            ),
            honeypots_empty_per_batch=4,
            honeypots_lived_in_per_batch=1,
            inactive_honeypots=10,
            honeypot_days=8,
            measurement_days=90,
            budget_scale=0.5,
        )

    def with_measurement_days(self, days_: int) -> "StudyConfig":
        return replace(self, measurement_days=days_)


def resolve_workers(cli_value: int | None = None, default: int = 1) -> int:
    """Worker-process count for fleet runs: CLI flag, env, or ``default``.

    Precedence: an explicit ``--workers`` value wins, then the
    ``REPRO_WORKERS`` environment variable, then ``default``.
    Lives here because this module is the sanctioned home for
    environment reads (the DET006 lint exemption); worker count only
    scales wall-clock fan-out — merged fleet output is byte-identical
    for any value (see :mod:`repro.fleet.runner`).
    """
    import os

    if cli_value is not None:
        if cli_value < 1:
            raise ValueError("--workers must be >= 1")
        return cli_value
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        if default < 1:
            raise ValueError("default workers must be >= 1")
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from exc
    if value < 1:
        raise ValueError(f"REPRO_WORKERS must be >= 1, got {value}")
    return value
