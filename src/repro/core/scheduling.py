"""Bucketed timing-wheel scheduling for the study's per-tick agents.

:meth:`repro.core.study.Study.tick` used to visit every driver, service,
and honeypot helper 24 times per simulated day regardless of whether it
had anything to do. The wheel inverts that: each agent reports, after it
runs, the next tick it needs to run at (``next_wake_tick``), and the
study only visits agents whose wake tick has arrived.

Determinism contract: agents that draw from their RNG every tick (the
clientele and organic drivers, the service engines) must report
``now + 1`` — skipping them would change the draw sequence and perturb
the seeded results. Only agents whose idle tick is verifiably a no-op
(no RNG, no platform calls) may park themselves; the collusion-honeypot
driver is the canonical example. The equivalence test in
``tests/test_core_fastpath_equivalence.py`` enforces that the wheel and
the naive loop produce bit-identical studies.

Within a tick, due agents always run in registration order, which the
study keeps identical to the naive loop's visit order.

``core.scheduler.agent_runs`` — one increment per agent actually run —
doubles as the scheduler's work unit for the cost profiler
(:mod:`repro.obs.prof`): a phase span's ``sched`` cost is the number of
agent-runs that happened inside it.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Callable, ContextManager, Optional

from repro.obs import NULL_OBS, Observability

#: return value of a ``next_wake_tick`` hook meaning "park me; I will be
#: woken explicitly (or never)"
NEVER: None = None


@dataclass
class _Agent:
    name: str
    run: Callable[[], None]
    next_wake: Optional[Callable[[int], Optional[int]]]
    index: int
    scheduled_at: Optional[int] = None


class TimingWheel:
    """Exact-tick buckets of agents, visited once per simulated hour."""

    def __init__(
        self,
        obs: Optional[Observability] = None,
        run_scope: Optional[Callable[[], ContextManager]] = None,
    ):
        #: optional context-manager factory entered around each agent run
        #: — the study passes :meth:`InstagramPlatform.action_batch`, so
        #: the batch boundary is exactly one actor-tick (DESIGN.md §15).
        #: The scope must be transparent to the agent: actions inside it
        #: observe identical platform state, and deferred work is flushed
        #: on exit, before the next agent runs.
        self._run_scope = run_scope
        self._agents: list[_Agent] = []
        self._by_name: dict[str, _Agent] = {}
        self._buckets: dict[int, list[_Agent]] = {}
        _obs = obs if obs is not None else NULL_OBS
        self._obs_agents = _obs.gauge("core.scheduler.agents")
        self._obs_runs = _obs.counter("core.scheduler.agent_runs")
        #: agents that parked themselves (next_wake returned NEVER) /
        #: wake() requests pulling an agent's schedule earlier
        self._obs_parks = _obs.counter("core.scheduler.parks")
        self._obs_wakes = _obs.counter("core.scheduler.wakes")
        self._obs_idle = _obs.counter("core.scheduler.idle_ticks")
        self._obs_due = _obs.histogram("core.scheduler.due_agents")

    def add(
        self,
        name: str,
        run: Callable[[], None],
        next_wake: Optional[Callable[[int], Optional[int]]] = None,
        first_tick: int = 0,
    ) -> None:
        """Register an agent, due at ``first_tick``.

        ``next_wake(now)`` is consulted after each run; ``None`` (the hook
        itself, or its return value — :data:`NEVER`) means "due every
        tick" and "parked", respectively.
        """
        if name in self._by_name:
            raise ValueError(f"agent {name!r} already registered")
        agent = _Agent(name=name, run=run, next_wake=next_wake, index=len(self._agents))
        self._agents.append(agent)
        self._by_name[name] = agent
        self._obs_agents.set(len(self._agents))
        self._schedule(agent, first_tick)

    def _schedule(self, agent: _Agent, tick: int) -> None:
        agent.scheduled_at = tick
        bucket = self._buckets.get(tick)
        if bucket is None:
            self._buckets[tick] = [agent]
        else:
            # keep buckets ordered by registration index at insertion
            # time (buckets are a handful of agents, so insort is one
            # short shift) — run_due then pops a pre-ordered batch
            # instead of sorting every tick
            insort(bucket, agent, key=lambda a: a.index)

    def wake(self, name: str, tick: int) -> None:
        """Pull an agent's wake earlier (or unpark it) — e.g. after an
        external event creates work for a parked agent."""
        self._obs_wakes.inc()
        agent = self._by_name[name]
        if agent.scheduled_at is not None and agent.scheduled_at <= tick:
            return
        if agent.scheduled_at is not None:
            self._buckets[agent.scheduled_at].remove(agent)
        self._schedule(agent, tick)

    def scheduled_tick(self, name: str) -> Optional[int]:
        """When the agent next runs (None = parked). For tests/diagnostics."""
        return self._by_name[name].scheduled_at

    def run_due(self, now: int) -> int:
        """Run every agent due at ``now`` (in registration order); returns
        how many ran. Must be called for consecutive ticks."""
        due = self._buckets.pop(now, None)
        if not due:
            self._obs_idle.inc()
            return 0
        self._obs_due.observe(len(due))
        scope = self._run_scope
        for agent in due:
            agent.scheduled_at = None
            self._obs_runs.inc()
            if scope is None:
                agent.run()
            else:
                with scope():
                    agent.run()
            if agent.scheduled_at is not None:
                continue  # the run itself woke the agent (re-entrant wake)
            wake = now + 1 if agent.next_wake is None else agent.next_wake(now)
            if wake is not NEVER:
                self._schedule(agent, max(wake, now + 1))
            else:
                self._obs_parks.inc()
        return len(due)

    def run_window(
        self, start: int, hours: int, advance: Callable[[], None]
    ) -> int:
        """Batched stepping: drain ``hours`` consecutive tick buckets in
        one call, invoking ``advance()`` after each tick's batch (the
        study passes the clock's one-tick advance, which also fires due
        delayed-removal callbacks). Returns total agent runs.

        Per-tick work is exactly ``run_due(t); advance()`` for each tick
        in ``[start, start + hours)`` — same agents, same registration-
        order tie-break, same RNG draw sequence — with the per-tick
        dispatch loop hoisted out of :meth:`repro.core.study.Study.tick`.
        """
        ran = 0
        run_due = self.run_due
        for now in range(start, start + hours):
            ran += run_due(now)
            advance()
        return ran
