"""The end-to-end study orchestrator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.aas.base import AccountAutomationService, ServiceType
from repro.aas.clientele import ClienteleDriver
from repro.aas.collusion_service import CollusionNetworkService
from repro.aas.services import (
    make_boostgram,
    make_followersgratis,
    make_hublaagram,
    make_instalex,
    make_instazood,
)
from repro.aas.adaptation import MigrationPolicy
from repro.aas.targeting import CuratedPool
from repro.behavior.calibration import calibrate_reciprocity_params, mean_propensity
from repro.behavior.organic import OrganicActivityDriver
from repro.behavior.population import OrganicPopulation
from repro.behavior.reciprocity import ReciprocityModel
from repro.core.config import StudyConfig
from repro.core.scheduling import NEVER, TimingWheel
from repro.detection.classifier import AASClassifier, AttributedActivity
from repro.detection.customers import CustomerBaseAnalytics
from repro.detection.signals import ServiceSignature, learn_signature
from repro.honeypot.experiments import ReciprocationExperiment, ReciprocationResult
from repro.honeypot.framework import HoneypotAccount, HoneypotFramework
from repro.interventions.bins import BinAssignment
from repro.interventions.experiment import (
    BroadInterventionPlan,
    InterventionController,
    NarrowInterventionPlan,
)
from repro.interventions.thresholds import CountSubject, ThresholdTable
from repro.netsim.asn import ASNRegistry
from repro.netsim.fabric import NetworkFabric
from repro.netsim.geo import GeoIP
from repro.obs import Observability
from repro.platform.clock import SimClock
from repro.platform.errors import PlatformError
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionType
from repro.util.rng import SeedSequenceFactory
from repro.util.timeutils import days

#: Long-term definitions (Section 5.1): reciprocity customers must be
#: active strictly longer than the (7-day) trial; Hublaagram customers
#: longer than four days of service. Thresholds are expressed in
#: *calendar* days: a 7x24h trial started mid-day touches 8 calendar
#: days, so the streak must exceed 8 (resp. 5) to prove paid usage.
LONG_TERM_DAYS_RECIPROCITY = 8
LONG_TERM_DAYS_COLLUSION = 5

#: The combined Insta* label (franchises are indistinguishable, Section 5).
INSTA_STAR = "Insta*"


@dataclass
class MeasurementDataset:
    """Everything the Section 5 analyses consume."""

    start_tick: int
    end_tick: int
    attributed: dict[str, AttributedActivity]
    analytics: dict[str, CustomerBaseAnalytics]
    service_asns: dict[str, set[int]]

    @property
    def window_days(self) -> int:
        return (self.end_tick - self.start_tick) // 24

    @property
    def start_day(self) -> int:
        return self.start_tick // 24

    @property
    def end_day(self) -> int:
        return self.end_tick // 24


@dataclass
class InterventionOutcome:
    """One intervention experiment's frozen inputs and observed activity."""

    name: str
    start_day: int
    end_day: int
    switch_day: int | None
    assignment: BinAssignment
    thresholds: ThresholdTable
    attributed: dict[str, AttributedActivity]


class Study:
    """Builds the world and runs the paper's pipeline phases in order."""

    def __init__(self, config: StudyConfig, obs: Observability | None = None):
        self.config = config
        #: telemetry handle; callers may pass a pre-built one (the CLI
        #: does, to attach reporters/wall-clock timing before the world
        #: is built) — otherwise one is created per the config switch
        self.obs = (
            obs
            if obs is not None
            else Observability(enabled=config.observability, profile=config.profile)
        )
        self.seeds = SeedSequenceFactory(config.seed, obs=self.obs)
        self.clock = SimClock()
        self.obs.bind_tick_source(lambda: self.clock.now)
        with self.obs.span("build-world", seed=config.seed, population=config.population.size):
            self.platform = InstagramPlatform(
                self.clock, obs=self.obs, fast_path=config.fast_path
            )
            self.registry = ASNRegistry()
            self.fabric = NetworkFabric(self.registry, self.seeds.get("fabric"))
            self.geoip = GeoIP(self.registry)
            self.population = OrganicPopulation.generate(
                self.platform, self.fabric, self.seeds.get("population"), config.population
            )
            self._build_services()
            self._assign_vpn_users()
            self._build_behaviour()
            self._seed_clientele()
            self.honeypots = HoneypotFramework(
                self.platform, self.fabric, self.seeds.get("honeypots")
            )
            self.reciprocation = ReciprocationExperiment(
                self.honeypots, self.seeds.get("hp-experiment"), self._high_profile_pool()
            )
            self._collusion_honeypots: list[tuple[CollusionNetworkService, HoneypotAccount]] = []
            self.classifier: AASClassifier | None = None
            self.reciprocation_results: list[ReciprocationResult] = []
            self.measurement_start: int | None = None
            self.measurement_end: int | None = None
            self._wheel = self._build_wheel() if config.fast_path else None

    # ------------------------------------------------------------------
    # Snapshot support (repro.fleet prefix reuse)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """A Study serializes wholesale; only live wiring is rebuilt.

        Everything that determines future behaviour — the platform log,
        every driver's RNG position, the timing wheel's buckets, the
        telemetry collected so far — is plain state and pickles as-is
        (the tracer drops its clock closure and listeners itself, see
        ``Tracer.__getstate__``). ``__setstate__`` re-binds the one
        piece of wiring a fresh process needs: the obs tick source.
        """
        return dict(self.__dict__)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.obs.bind_tick_source(lambda: self.clock.now)

    # ------------------------------------------------------------------
    # World construction
    # ------------------------------------------------------------------

    def _migration_policy(self, label: str, use_proxies: bool = False) -> MigrationPolicy | None:
        if not self.config.enable_migration:
            return None
        from repro.util.timeutils import days as _days

        return MigrationPolicy(
            self.fabric,
            self.seeds.get(f"migration-{label}"),
            patience_ticks=_days(self.config.migration_patience_days),
            use_proxy_network=use_proxies,
        )

    def _build_services(self) -> None:
        plans = self.config.plans
        candidates = list(self.population.account_ids)
        self.services: dict[str, AccountAutomationService] = {}
        curated = self._instalex_curated_pool()
        scale = self.config.budget_scale
        if plans.instalex is not None:
            # the paper's epilogue: one service adopted "an extensive
            # proxy network to drastically increase IP diversity"
            self.services["Instalex"] = make_instalex(
                self.platform, self.fabric, self.seeds.get("svc-instalex"), candidates,
                curated=curated, budget_scale=scale,
                migration=self._migration_policy("instalex", use_proxies=True),
            )
        if plans.instazood is not None:
            self.services["Instazood"] = make_instazood(
                self.platform, self.fabric, self.seeds.get("svc-instazood"), candidates,
                budget_scale=scale, migration=self._migration_policy("instazood"),
            )
        if plans.boostgram is not None:
            self.services["Boostgram"] = make_boostgram(
                self.platform, self.fabric, self.seeds.get("svc-boostgram"), candidates,
                budget_scale=scale, migration=self._migration_policy("boostgram"),
            )
        if plans.hublaagram is not None:
            self.services["Hublaagram"] = make_hublaagram(
                self.platform,
                self.fabric,
                self.seeds.get("svc-hublaagram"),
                quantity_scale=self.config.quantity_scale,
                migration=self._migration_policy("hublaagram"),
            )
        if plans.followersgratis is not None:
            self.services["Followersgratis"] = make_followersgratis(
                self.platform,
                self.fabric,
                self.seeds.get("svc-followersgratis"),
                quantity_scale=self.config.quantity_scale,
            )

    def _instalex_curated_pool(self) -> CuratedPool | None:
        """Instalex's curated recipient list (Section 4.3's anomaly).

        The real list was built by the service from response history we
        cannot observe; we model its *effect*: a pool concentrated in
        users carrying the hidden follow-on-like trait, diluted with
        ordinary users (the paper found no observable feature separating
        the pool from other targets).
        """
        rng = self.seeds.get("curated-pool")
        strong = [
            account
            for account, profile in self.population.profiles.items()
            if profile.follow_on_like_affinity > 1.0
        ]
        if not strong:
            return None
        # The curated list is concentrated in responders with a little
        # dilution — enough that no observable account feature separates
        # it from ordinary target pools (Section 4.3's failed search for
        # an explanation). Entries are weighted by reciprocation
        # propensity: the service discovered these users by their
        # responses, and responders skew high-out-degree/low-in-degree
        # like every other reciprocity target (Section 5.3).
        import numpy as np

        weights = np.array(
            [self.population.profiles[a].propensity for a in strong], dtype=float
        )
        weights = weights**2  # curation concentrates on the best responders
        weights = weights / weights.sum()
        entries = rng.choice(len(strong), size=max(40, 4 * len(strong)), p=weights)
        pool = [strong[int(i)] for i in entries]
        ordinary = self.population.sample_accounts(rng, max(1, len(strong) // 5))
        pool.extend(ordinary)
        return CuratedPool(accounts=pool, mix_fraction=self.config.curated_mix_fraction)

    def _assign_vpn_users(self) -> None:
        """Blend a benign slice of the population into service exit ASNs.

        These are VPN/datacenter users: their home endpoint sits inside
        an AAS ASN, producing the mixed-ASN traffic Section 6.2's 99th
        percentile thresholds are designed around. Per the paper, only
        *some* ASNs are mixed — here the collusion networks' exits
        (large generic hosting providers), while the reciprocity
        services' exits stay pure-AAS and get the 25th-percentile
        treatment.
        """
        if self.config.vpn_fraction <= 0 or not self.services:
            return
        rng = self.seeds.get("vpn-users")
        service_asns = sorted(
            {
                asn
                for s in self.services.values()
                if s.descriptor.service_type is ServiceType.COLLUSION_NETWORK
                for asn in s.current_asns()
            }
        )
        if not service_asns:
            return
        count = int(len(self.population) * self.config.vpn_fraction)
        for account_id in self.population.sample_accounts(rng, count):
            profile = self.population.profiles[account_id]
            asn = service_asns[int(rng.integers(0, len(service_asns)))]
            address = self.registry.allocate_address(asn)
            profile.endpoint = type(profile.endpoint)(
                address=address, asn=asn, fingerprint=profile.endpoint.fingerprint
            )

    def _build_behaviour(self) -> None:
        params = self._calibrated_reciprocity_params()
        self.reciprocity_model = ReciprocityModel(params, self.seeds.get("reciprocity"))
        self.organic = OrganicActivityDriver(
            self.platform,
            self.population,
            self.reciprocity_model,
            self.seeds.get("organic-driver"),
        )

    def _calibrated_reciprocity_params(self):
        """Anchor Table 5 rates on the pool the AASs actually target."""
        rng = self.seeds.get("calibration")
        reciprocity_services = [
            s for s in self.services.values() if s.descriptor.service_type is ServiceType.RECIPROCITY_ABUSE
        ]
        if not reciprocity_services:
            return self.config.reciprocity
        targeting = reciprocity_services[0].targeting  # type: ignore[attr-defined]
        sample = targeting.select(min(300, len(self.population) // 2), exclude=set())
        if not sample:
            return self.config.reciprocity
        pool_mean = mean_propensity(
            self.population.profiles[a].propensity for a in sample if a in self.population.profiles
        )
        return calibrate_reciprocity_params(self.config.reciprocity, pool_mean)

    def _seed_clientele(self) -> None:
        plans = self.config.plans
        self.clientele: dict[str, ClienteleDriver] = {}
        plan_map = {
            "Instalex": plans.instalex,
            "Instazood": plans.instazood,
            "Boostgram": plans.boostgram,
            "Hublaagram": plans.hublaagram,
            "Followersgratis": plans.followersgratis,
        }
        for name, service in self.services.items():
            params = plan_map[name]
            if params is None:
                continue
            driver = ClienteleDriver(
                service, self.population, self.seeds.get(f"clientele-{name.lower()}"), params
            )
            driver.seed_initial()
            self.clientele[name] = driver

    def _high_profile_pool(self) -> list[AccountId]:
        """Top-in-degree accounts, the lived-in honeypots' follow targets."""
        ranked = sorted(
            self.population.account_ids,
            key=lambda a: self.platform.follower_count(a),
            reverse=True,
        )
        return ranked[: max(10, len(ranked) // 50)]

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------

    def _build_wheel(self) -> TimingWheel:
        """Register every per-tick agent, in the naive loop's visit order.

        Registration order is the wheel's tie-break within a tick, so the
        fast path runs agents in exactly the order :meth:`tick`'s
        reference loop would — a prerequisite for bit-identical results.
        """
        wheel = TimingWheel(obs=self.obs, run_scope=self.platform.action_batch)
        for name, driver in self.clientele.items():
            wheel.add(f"clientele:{name}", driver.tick, driver.next_wake_tick)
        wheel.add(
            "collusion-honeypots", self._drive_collusion_honeypots, self._collusion_next_wake
        )
        for name, service in self.services.items():
            wheel.add(f"service:{name}", service.tick, service.next_wake_tick)
        wheel.add("organic", self.organic.tick, self.organic.next_wake_tick)
        return wheel

    def _collusion_next_wake(self, now: int) -> int | None:
        """The one agent allowed to idle-skip: its idle tick is RNG-free.

        A collusion honeypot's enrollment horizon (trial or paid window)
        never extends — honeypots never pay — so once every enrollment
        has lapsed the driver is a permanent no-op and parks. Registering
        a new collusion honeypot must call :meth:`_wake_collusion`.
        """
        upcoming = now + 1
        for service, honeypot in self._collusion_honeypots:
            if honeypot.deleted:
                continue
            record = service.customers.get(honeypot.account_id)
            if record is not None and record.service_active(upcoming):
                return upcoming
        return NEVER

    def _wake_collusion(self) -> None:
        if self._wheel is not None:
            self._wheel.wake("collusion-honeypots", self.clock.now)

    def tick(self) -> None:
        """One simulated hour of the whole world."""
        if self._wheel is not None:
            self._wheel.run_due(self.clock.now)
        else:
            for driver in self.clientele.values():
                driver.tick()
            self._drive_collusion_honeypots()
            for service in self.services.values():
                service.tick()
            self.organic.tick()
        self.clock.advance(1)

    def run_hours(self, hours: int) -> None:
        if self._wheel is not None and hours > 0:
            # batched stepping: one wheel call drains all `hours` tick
            # buckets (same per-tick work as tick(), minus the Python
            # call overhead of re-entering tick/run_due per hour)
            self._wheel.run_window(
                self.clock.now, hours, lambda: self.clock.advance(1)
            )
            return
        for _ in range(hours):
            self.tick()

    def run_days(self, days_: int) -> None:
        self.run_hours(days_ * 24)

    # ------------------------------------------------------------------
    # Phase 1: honeypots
    # ------------------------------------------------------------------

    def register_honeypots(self) -> None:
        """Register honeypot batches with every service (Section 4.1.2)."""
        config = self.config
        for _ in range(config.inactive_honeypots):
            self.honeypots.create_inactive()
        for service in self.services.values():
            if service.descriptor.service_type is ServiceType.RECIPROCITY_ABUSE:
                for action_type in (ActionType.LIKE, ActionType.FOLLOW):
                    self.reciprocation.register_batch(
                        service,
                        action_type,
                        empty=config.honeypots_empty_per_batch,
                        lived_in=config.honeypots_lived_in_per_batch,
                    )
            else:
                self._register_collusion_honeypots(service)

    def _register_collusion_honeypots(self, service: AccountAutomationService) -> None:
        assert isinstance(service, CollusionNetworkService)
        total = self.config.honeypots_empty_per_batch + self.config.honeypots_lived_in_per_batch
        for index in range(total):
            campaign = f"{service.name.lower()}-collusion"
            if index == total - 1:
                honeypot = self.honeypots.create_lived_in(
                    campaign=campaign, high_profile_pool=self._high_profile_pool()
                )
            else:
                honeypot = self.honeypots.create_empty(campaign=campaign)
            service.register_customer(
                honeypot.username,
                honeypot.password,
                frozenset({ActionType.LIKE, ActionType.FOLLOW}) & service.descriptor.offered_actions,
                trial_ticks=days(self.config.honeypot_days + 1),
            )
            self._collusion_honeypots.append((service, honeypot))
        self._wake_collusion()

    def _drive_collusion_honeypots(self) -> None:
        """Honeypots enrolled in collusion networks request free actions
        for as long as their enrollment window is open."""
        now = self.clock.now
        for service, honeypot in self._collusion_honeypots:
            if honeypot.deleted:
                continue
            record = service.customers.get(honeypot.account_id)
            if record is None or not record.service_active(now):
                continue
            free_types = [
                t
                for t in (ActionType.LIKE, ActionType.FOLLOW)
                if t in service.descriptor.offered_actions and t in service.config.free_action_types
            ]
            if not free_types:
                continue
            action = free_types[self.clock.now % len(free_types)]
            try:
                service.request_free_service(honeypot.account_id, action)
            except (PlatformError, KeyError, ValueError):
                continue

    def run_honeypot_phase(self) -> list[ReciprocationResult]:
        """Register honeypots, run the phase, measure reciprocation."""
        with self.obs.span("honeypot-phase", days=self.config.honeypot_days):
            with self.obs.span("register-honeypots"):
                self.register_honeypots()
            self.run_days(self.config.honeypot_days)
            self.reciprocation_results = self.reciprocation.results()
        return self.reciprocation_results

    # ------------------------------------------------------------------
    # Phase 2: signature learning
    # ------------------------------------------------------------------

    def learn_signatures(self) -> AASClassifier:
        """Build the classifier from honeypot ground truth."""
        with self.obs.span("learn-signatures"):
            return self._learn_signatures()

    def _learn_signatures(self) -> AASClassifier:
        signatures: list[ServiceSignature] = []
        insta_records = []
        for registration in self.reciprocation.registrations():
            records = self.honeypots.outbound_actions(
                registration.honeypot, since=registration.registered_at
            )
            service_name = registration.service.name
            if service_name in ("Instalex", "Instazood"):
                insta_records.extend(records)
            else:
                signatures = _accumulate(signatures, service_name, ServiceType.RECIPROCITY_ABUSE, records)
        if insta_records:
            signatures = _accumulate(
                signatures, INSTA_STAR, ServiceType.RECIPROCITY_ABUSE, insta_records
            )
        collusion_records: dict[str, list] = {}
        for service, honeypot in self._collusion_honeypots:
            # A collusion network drives the honeypot as an action *source*,
            # so its post-enrollment outbound is pure service traffic and
            # identifies the exit infrastructure that also delivers every
            # inbound action. (Inbound is contaminated by organic responses
            # to the collusion actions, so it is not used for learning.)
            collusion_records.setdefault(service.name, []).extend(
                self.honeypots.outbound_actions(honeypot, since=honeypot.created_at)
            )
        for service_name, records in collusion_records.items():
            if records:
                signatures = _accumulate(
                    signatures, service_name, ServiceType.COLLUSION_NETWORK, records
                )
        self._set_classifier(AASClassifier(signatures, obs=self.obs))
        assert self.classifier is not None
        return self.classifier

    def _set_classifier(self, classifier: AASClassifier) -> None:
        """Install a classifier, managing the streaming attachment.

        On the fast path the classifier observes every future log append,
        so repeated sweeps (interventions, the epilogue) are incremental
        instead of rescanning the full log; replacing the classifier
        (signature relearning) must detach the old observer first.
        """
        if self.classifier is not None and self.classifier.attached_log is not None:
            self.classifier.detach()
        self.classifier = classifier
        if self.config.fast_path:
            classifier.attach(self.platform.log)

    def teardown_honeypots(self) -> int:
        """Delete all honeypots (the paper's post-measurement cleanup)."""
        return self.honeypots.delete_all()

    def verify_signal_stability(self, probe_days: int = 1) -> dict[str, bool]:
        """Re-register fresh trial honeypots and re-check the signatures.

        Section 5: "We also periodically register additional trial
        honeypot accounts in each AAS as another method for observing
        the tracked account signals; these signals are consistent with
        our original honeypot accounts ... (we delete these accounts
        immediately after the AAS starts generating activity on them)."

        Returns, per reported service, whether every automation action
        observed on the probe accounts still matches the learned
        signature.
        """
        if self.classifier is None:
            raise RuntimeError("learn_signatures() must run first")
        with self.obs.span("stability-probe", probe_days=probe_days):
            return self._verify_signal_stability(probe_days)

    def _verify_signal_stability(self, probe_days: int) -> dict[str, bool]:
        assert self.classifier is not None
        probes: list[tuple[str, HoneypotAccount]] = []
        for name, service in self.services.items():
            label = INSTA_STAR if name in ("Instalex", "Instazood") else name
            honeypot = self.honeypots.create_empty(campaign=f"probe-{name.lower()}")
            requested = (
                frozenset({ActionType.LIKE, ActionType.FOLLOW})
                & service.descriptor.offered_actions
            )
            service.register_customer(
                honeypot.username, honeypot.password, requested, trial_ticks=days(probe_days + 1)
            )
            if isinstance(service, CollusionNetworkService):
                self._collusion_honeypots.append((service, honeypot))
                self._wake_collusion()
            probes.append((label, honeypot))
        self.run_days(probe_days)
        consistent: dict[str, bool] = {}
        for label, honeypot in probes:
            records = self.honeypots.outbound_actions(honeypot, since=honeypot.created_at)
            records += self.honeypots.inbound_actions(honeypot, since=honeypot.created_at)
            automation = [
                r for r in records if r.endpoint.fingerprint.variant.startswith("aas-")
            ]
            verdict = bool(automation) and all(
                self.classifier.attribute(r) == label for r in automation
            )
            consistent[label] = consistent.get(label, True) and verdict
            self.honeypots.delete(honeypot)
        self._collusion_honeypots = [
            (service, h) for service, h in self._collusion_honeypots if not h.deleted
        ]
        return consistent

    # ------------------------------------------------------------------
    # Phase 3: the measurement window
    # ------------------------------------------------------------------

    def run_measurement(self, days_: int | None = None) -> MeasurementDataset:
        """Run the measurement window and sweep the classifier over it."""
        if self.classifier is None:
            raise RuntimeError("learn_signatures() must run before the measurement window")
        window = days_ if days_ is not None else self.config.measurement_days
        with self.obs.span("measurement-window", days=window):
            self.measurement_start = self.clock.now
            self.run_days(window)
            self.measurement_end = self.clock.now
            return self.build_dataset(self.measurement_start, self.measurement_end)

    def build_dataset(self, start_tick: int, end_tick: int) -> MeasurementDataset:
        """Sweep + analytics over an arbitrary window."""
        assert self.classifier is not None
        with self.obs.span("sweep", start_tick=start_tick, end_tick=end_tick):
            attributed = self.classifier.sweep(self.platform.log, start_tick, end_tick)
        analytics: dict[str, CustomerBaseAnalytics] = {}
        for name, activity in attributed.items():
            if name == "Followersgratis":
                continue  # excluded: pre-policed, negligible impact (Section 5)
            long_term = (
                LONG_TERM_DAYS_COLLUSION
                if activity.service_type is ServiceType.COLLUSION_NETWORK
                else LONG_TERM_DAYS_RECIPROCITY
            )
            analytics[name] = CustomerBaseAnalytics(activity, long_term_days=long_term)
        service_asns = {name: activity.observed_asns for name, activity in attributed.items()}
        return MeasurementDataset(
            start_tick=start_tick,
            end_tick=end_tick,
            attributed=attributed,
            analytics=analytics,
            service_asns=service_asns,
        )

    def run_standard(self) -> MeasurementDataset:
        """The whole pipeline: honeypots -> signatures -> measurement."""
        self.run_honeypot_phase()
        self.learn_signatures()
        return self.run_measurement()

    # ------------------------------------------------------------------
    # Phase 4: interventions
    # ------------------------------------------------------------------

    def _subject_by_asn(self) -> dict[int, CountSubject]:
        subjects: dict[int, CountSubject] = {}
        for service in self.services.values():
            subject = (
                CountSubject.TARGET
                if service.descriptor.service_type is ServiceType.COLLUSION_NETWORK
                else CountSubject.ACTOR
            )
            for asn in service.current_asns():
                subjects[asn] = subject
        return subjects

    def _run_intervention(
        self,
        name: str,
        start,
        duration_days: int,
        calibration_days: int,
    ) -> InterventionOutcome:
        if self.classifier is None:
            raise RuntimeError("learn_signatures() must run before interventions")
        with self.obs.span("intervention", plan=name, days=duration_days):
            controller = InterventionController(self.platform, self.classifier)
            calibration_start = max(0, self.clock.now - days(calibration_days))
            with self.obs.span("calibrate", days=calibration_days):
                controller.calibrate(calibration_start, self.clock.now, self._subject_by_asn())
            policy = start(controller)
            start_tick = self.clock.now
            self.run_days(duration_days)
            end_tick = self.clock.now
            controller.stop()
            with self.obs.span("sweep", start_tick=start_tick, end_tick=end_tick):
                attributed = self.classifier.sweep(self.platform.log, start_tick, end_tick)
            assert controller.thresholds is not None
        return InterventionOutcome(
            name=name,
            start_day=start_tick // 24,
            end_day=end_tick // 24,
            switch_day=controller.switch_day,
            assignment=policy.assignment,
            thresholds=controller.thresholds,
            attributed=attributed,
        )

    def run_narrow_intervention(
        self, plan: NarrowInterventionPlan | None = None, calibration_days: int = 5
    ) -> InterventionOutcome:
        """Section 6.3: six weeks, one block/one delay/one control bin."""
        plan = plan if plan is not None else NarrowInterventionPlan()
        outcome = self._run_intervention(
            "narrow",
            lambda controller: controller.start_narrow(plan),
            plan.duration_days,
            calibration_days,
        )
        # the narrow design's assignment never changes mid-run
        return outcome

    def run_broad_intervention(
        self, plan: BroadInterventionPlan | None = None, calibration_days: int = 5
    ) -> InterventionOutcome:
        """Section 6.4: delay for 90% one week, then block one week."""
        plan = plan if plan is not None else BroadInterventionPlan()
        return self._run_intervention(
            "broad",
            lambda controller: controller.start_broad(plan),
            plan.duration_days,
            calibration_days,
        )

    def _relearn_from_current_infrastructure(self) -> None:
        """Fold each service's current exit ASNs into its signature.

        Ground truth for this comes from re-registered probe honeypots
        (see verify_signal_stability); folding the observed ASNs in
        directly is equivalent and avoids paying for probes every cycle.
        """
        assert self.classifier is not None
        with self.obs.span("relearn-signatures"):
            self._relearn_signatures()

    def _relearn_signatures(self) -> None:
        assert self.classifier is not None
        merged: dict[str, ServiceSignature] = {s.service: s for s in self.classifier.signatures}
        for name, service in self.services.items():
            label = INSTA_STAR if name in ("Instalex", "Instazood") else name
            existing = merged.get(label)
            if existing is None:
                continue
            merged[label] = ServiceSignature(
                service=label,
                service_type=existing.service_type,
                asns=existing.asns | frozenset(service.current_asns()),
                client_variants=existing.client_variants
                | frozenset({service.fingerprint.variant}),
            )
        self._set_classifier(AASClassifier(list(merged.values()), obs=self.obs))

    def run_epilogue(
        self,
        days_: int = 40,
        calibration_days: int = 5,
        defender_relearn_days: int | None = None,
    ) -> "EpilogueOutcome":
        """The Section 6.4 epilogue: the broad regime stays active,
        "continuing to block likes and delay follows above the activity
        threshold for additional months".

        Requires ``enable_migration=True`` in the config to observe the
        services' infrastructure moves. Returns what the paper reports:
        which services relocated (and how), whether Hublaagram suspended
        sales ("out of stock"), and how much post-migration traffic the
        original signatures still catch — the blocked actions having
        moved "out of reach of the blocking countermeasure we employed".
        """
        if self.classifier is None:
            raise RuntimeError("learn_signatures() must run before the epilogue")
        from repro.interventions.policy import ThresholdBinPolicy
        from repro.platform.countermeasures import CountermeasureDecision

        controller = InterventionController(self.platform, self.classifier)
        calibration_start = max(0, self.clock.now - days(calibration_days))
        thresholds = controller.calibrate(
            calibration_start, self.clock.now, self._subject_by_asn()
        )
        policy = ThresholdBinPolicy(
            thresholds=thresholds,
            assignment=BinAssignment.broad_block(),
            per_action_treatments={
                ActionType.LIKE: CountermeasureDecision.BLOCK,
                ActionType.FOLLOW: CountermeasureDecision.DELAY_REMOVE,
            },
        )
        self.platform.countermeasures.add_policy(policy)
        asns_before = {name: set(s.current_asns()) for name, s in self.services.items()}
        start_tick = self.clock.now
        with self.obs.span("epilogue", days=days_):
            if defender_relearn_days is None:
                self.run_days(days_)
            else:
                # the defender keeps probing with fresh trial honeypots and
                # folds newly-observed exit infrastructure back into the
                # signatures and threshold table (Section 5's periodic
                # re-registration, continued through the epilogue)
                remaining = days_
                while remaining > 0:
                    segment = min(defender_relearn_days, remaining)
                    self.run_days(segment)
                    remaining -= segment
                    if remaining > 0:
                        self._relearn_from_current_infrastructure()
                        policy.thresholds = controller.calibrate(
                            max(0, self.clock.now - days(calibration_days)),
                            self.clock.now,
                            self._subject_by_asn(),
                        )
        self.platform.countermeasures.remove_policy(policy)
        migrations = {
            name: list(service.migration.migrations)
            for name, service in self.services.items()
            if service.migration is not None
        }
        hub = self.services.get("Hublaagram")
        suspended = bool(getattr(hub, "sales_suspended", False))
        # how much of the services' post-epilogue traffic the original
        # (pre-migration) signatures still catch
        window = self.platform.log.records_between(start_tick, None)
        automation = [r for r in window if r.endpoint.fingerprint.variant.startswith("aas-")]
        caught = sum(1 for r in automation if self.classifier.attribute(r) is not None)
        coverage = caught / len(automation) if automation else 1.0
        return EpilogueOutcome(
            start_day=start_tick // 24,
            end_day=self.clock.now // 24,
            asns_before=asns_before,
            asns_after={name: set(s.current_asns()) for name, s in self.services.items()},
            migrations=migrations,
            hublaagram_sales_suspended=suspended,
            signature_coverage=coverage,
        )


@dataclass
class EpilogueOutcome:
    """What the prolonged post-experiment regime produced (Section 6.4)."""

    start_day: int
    end_day: int
    asns_before: dict[str, set[int]]
    asns_after: dict[str, set[int]]
    migrations: dict[str, list[tuple[int, str]]]
    hublaagram_sales_suspended: bool
    signature_coverage: float

    def migrated_services(self) -> set[str]:
        return {name for name, moves in self.migrations.items() if moves}


def _accumulate(signatures, service_name, service_type, records):
    """Add or merge a learned signature into the list."""
    new = learn_signature(service_name, service_type, records)
    out = []
    merged = False
    for signature in signatures:
        if signature.service == service_name:
            out.append(signature.merged_with(new))
            merged = True
        else:
            out.append(signature)
    if not merged:
        out.append(new)
    return out
