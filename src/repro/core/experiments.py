"""One function per paper table and figure.

Each function returns plain row dicts (JSON-friendly) so benchmarks,
tests, and reporting all consume the same structures. The per-experiment
module/bench mapping lives in DESIGN.md's experiment index.
"""

from __future__ import annotations

from typing import Any

from repro.aas.base import ServiceType
from repro.aas.collusion_service import CollusionNetworkService
from repro.aas.pricing import (
    BOOSTGRAM_PRICING,
    FollowersgratisCatalog,
    INSTALEX_PRICING,
    INSTAZOOD_PRICING,
    SubscriptionPricing,
)
from repro.analysis.actions_mix import action_mix
from repro.analysis.geography import country_shares
from repro.analysis.revenue import (
    estimate_hublaagram_revenue,
    estimate_reciprocity_revenue,
)
from repro.analysis.target_bias import (
    degree_cdfs,
    sample_receiving_accounts,
    sample_targeted_accounts,
)
from repro.core.study import INSTA_STAR, InterventionOutcome, MeasurementDataset, Study
from repro.honeypot.experiments import ReciprocationResult
from repro.interventions.metrics import (
    eligible_proportion_series,
    eligible_share_by_group,
    median_daily_actions_series,
)
from repro.interventions.thresholds import CountSubject
from repro.platform.models import ActionType

ACTION_COLUMNS = (
    ActionType.LIKE,
    ActionType.FOLLOW,
    ActionType.COMMENT,
    ActionType.POST,
    ActionType.UNFOLLOW,
)


# ----------------------------------------------------------------------
# Table 1 — services offered
# ----------------------------------------------------------------------

def table1_services(study: Study) -> list[dict[str, Any]]:
    rows = []
    for name, service in study.services.items():
        row: dict[str, Any] = {
            "service": name,
            "type": service.descriptor.service_type.value,
        }
        for action_type in ACTION_COLUMNS:
            row[action_type.value] = action_type in service.descriptor.offered_actions
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Tables 2-4 — price lists
# ----------------------------------------------------------------------

def table2_reciprocity_pricing() -> list[dict[str, Any]]:
    def row(name: str, pricing: SubscriptionPricing) -> dict[str, Any]:
        return {
            "service": name,
            "trial_days": pricing.trial_days_advertised,
            "trial_days_actual": pricing.trial_days_actual,
            "min_paid_days": pricing.min_paid_days,
            "cost_usd": pricing.cost_cents / 100.0,
        }

    return [
        row("Instalex", INSTALEX_PRICING),
        row("Instazood", INSTAZOOD_PRICING),
        row("Boostgram", BOOSTGRAM_PRICING),
    ]


def table3_hublaagram_pricing(study: Study) -> list[dict[str, Any]]:
    service = study.services["Hublaagram"]
    assert isinstance(service, CollusionNetworkService)
    catalog = service.config.catalog
    rows: list[dict[str, Any]] = [
        {
            "description": "No collusion network",
            "cost_usd": catalog.no_collusion_fee_cents / 100.0,
            "duration": "Life",
        }
    ]
    for package in catalog.one_time_packages:
        rows.append(
            {
                "description": f"{package.likes} likes (scaled)",
                "cost_usd": package.cost_cents / 100.0,
                "duration": "Immediate",
            }
        )
    for tier in catalog.monthly_tiers:
        rows.append(
            {
                "description": f"{tier.likes_low}-{tier.likes_high} likes/photo (scaled)",
                "cost_usd": tier.cost_cents / 100.0,
                "duration": "Month",
            }
        )
    return rows


def table4_followersgratis_pricing() -> list[dict[str, Any]]:
    return [
        {
            "description": option.description,
            "cost_usd": option.cost_cents / 100.0,
            "duration_days": option.duration_days,
        }
        for option in FollowersgratisCatalog().options
    ]


# ----------------------------------------------------------------------
# Table 5 — reciprocation probabilities
# ----------------------------------------------------------------------

def table5_reciprocation(results: list[ReciprocationResult]) -> list[dict[str, Any]]:
    rows = []
    for result in results:
        rows.append(
            {
                "service": result.service,
                "kind": result.kind.value,
                "outbound": result.outbound_type.value,
                "outbound_count": result.outbound_count,
                "inbound_like_ratio": result.like_ratio,
                "inbound_follow_ratio": result.follow_ratio,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 6 — customer base
# ----------------------------------------------------------------------

def table6_customers(dataset: MeasurementDataset) -> list[dict[str, Any]]:
    rows = []
    for name, analytics in dataset.analytics.items():
        long_term = analytics.long_term_customers()
        total = analytics.total_customers()
        rows.append(
            {
                "service": name,
                "customers": total,
                "long_term": len(long_term),
                "long_term_pct": len(long_term) / total if total else 0.0,
                "short_term": total - len(long_term),
                "long_term_action_share": analytics.long_term_action_share(),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 7 — service locations
# ----------------------------------------------------------------------

def table7_locations(study: Study, dataset: MeasurementDataset) -> list[dict[str, Any]]:
    operating = {
        "Instalex": "RUS",
        "Instazood": "RUS",
        "Boostgram": "USA",
        "Hublaagram": "IDN",
        "Followersgratis": "IDN",
    }
    merged_operating = {INSTA_STAR: "RUS", "Boostgram": "USA", "Hublaagram": "IDN"}
    rows = []
    for name, analytics in dataset.analytics.items():
        asns = dataset.service_asns.get(name, set())
        countries = sorted({study.registry.country_of_asn(asn) for asn in asns})
        rows.append(
            {
                "service": name,
                "operating_country": merged_operating.get(name, operating.get(name, "?")),
                "asn_locations": countries,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Tables 8-10 — revenue
# ----------------------------------------------------------------------

def table8_reciprocity_revenue(study: Study, dataset: MeasurementDataset) -> list[dict[str, Any]]:
    rows = []
    window = dataset.window_days
    if "Boostgram" in dataset.analytics:
        estimate = estimate_reciprocity_revenue(
            dataset.analytics["Boostgram"], BOOSTGRAM_PRICING, window
        )
        truth = _ledger_monthly_cents(study, ("Boostgram",), dataset)
        rows.append(_revenue_row("Boostgram", estimate, truth))
    if INSTA_STAR in dataset.analytics:
        low = estimate_reciprocity_revenue(dataset.analytics[INSTA_STAR], INSTAZOOD_PRICING, window)
        high = estimate_reciprocity_revenue(dataset.analytics[INSTA_STAR], INSTALEX_PRICING, window)
        truth = _ledger_monthly_cents(study, ("Instalex", "Instazood"), dataset)
        rows.append(_revenue_row(f"{INSTA_STAR} (Low)", low, truth))
        rows.append(_revenue_row(f"{INSTA_STAR} (High)", high, truth))
    return rows


def _revenue_row(label, estimate, truth_cents) -> dict[str, Any]:
    return {
        "service": label,
        "paying_accounts": estimate.paying_accounts,
        "fee": estimate.fee_description,
        "est_monthly_usd": estimate.monthly_revenue_cents / 100.0,
        "true_monthly_usd": truth_cents / 100.0,
    }


def _ledger_monthly_cents(study: Study, service_names, dataset: MeasurementDataset) -> int:
    total = 0
    for name in service_names:
        service = study.services.get(name)
        if service is None:
            continue
        total += service.ledger.total_cents(dataset.start_tick, dataset.end_tick)
    return int(round(total * 30.0 / max(dataset.window_days, 1)))


def table9_hublaagram_revenue(study: Study, dataset: MeasurementDataset) -> dict[str, Any]:
    service = study.services["Hublaagram"]
    assert isinstance(service, CollusionNetworkService)
    activity = dataset.attributed["Hublaagram"]
    estimate = estimate_hublaagram_revenue(
        activity,
        service.config.catalog,
        free_like_ceiling_per_hour=service.config.free_like_ceiling_per_hour,
        likes_per_free_request=service.config.likes_per_free_request,
        follows_per_free_request=service.config.follows_per_free_request,
        window_days=dataset.window_days,
    )
    truth_cents = service.ledger.total_cents(dataset.start_tick, dataset.end_tick)
    return {
        "no_outbound_accounts": estimate.no_outbound_accounts,
        "no_outbound_usd": estimate.no_outbound_cents / 100.0,
        "one_time_like_buyers": estimate.one_time_like_buyers,
        "one_time_like_usd": estimate.one_time_like_cents / 100.0,
        "monthly_tier_accounts": estimate.monthly_tier_accounts,
        "monthly_tier_usd": {k: v / 100.0 for k, v in estimate.monthly_tier_cents.items()},
        "ad_impressions": estimate.ad_impressions,
        "ad_usd_low": estimate.ad_cents_low / 100.0,
        "ad_usd_high": estimate.ad_cents_high / 100.0,
        "monthly_total_usd_low": estimate.monthly_total_low_cents / 100.0,
        "monthly_total_usd_high": estimate.monthly_total_high_cents / 100.0,
        "true_window_revenue_usd": truth_cents / 100.0,
    }


def table10_renewals(study: Study, dataset: MeasurementDataset) -> list[dict[str, Any]]:
    """New vs preexisting payer revenue over the window's final month."""
    window_start = max(dataset.start_tick, dataset.end_tick - 30 * 24)
    groups = {
        INSTA_STAR: ("Instalex", "Instazood"),
        "Boostgram": ("Boostgram",),
        "Hublaagram": ("Hublaagram",),
    }
    rows = []
    for label, names in groups.items():
        new_cents = 0
        pre_cents = 0
        for name in names:
            service = study.services.get(name)
            if service is None:
                continue
            split = service.ledger.new_vs_preexisting_split(window_start, dataset.end_tick - window_start)
            new_cents += split["new"]
            pre_cents += split["preexisting"]
        total = new_cents + pre_cents
        if total == 0:
            continue
        rows.append(
            {
                "service": label,
                "new_pct": new_cents / total,
                "preexisting_pct": pre_cents / total,
                "total_usd": total / 100.0,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 11 — action mix
# ----------------------------------------------------------------------

def table11_action_mix(dataset: MeasurementDataset) -> list[dict[str, Any]]:
    rows = []
    for name, activity in dataset.attributed.items():
        if name == "Followersgratis":
            continue
        mix = action_mix(activity)
        row: dict[str, Any] = {"service": name}
        for action_type in ACTION_COLUMNS:
            row[action_type.value] = mix.get(action_type, 0.0)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 2 — customer geography
# ----------------------------------------------------------------------

def fig2_geography(study: Study, dataset: MeasurementDataset) -> dict[str, list[tuple[str, float]]]:
    out = {}
    for name, analytics in dataset.analytics.items():
        asns = dataset.service_asns.get(name, set())
        counts = analytics.customer_countries(study.platform, study.geoip, asns)
        out[name] = country_shares(counts)
    return out


# ----------------------------------------------------------------------
# Figures 3-4 — target degree bias
# ----------------------------------------------------------------------

def fig34_target_bias(study: Study, dataset: MeasurementDataset, sample_size: int = 1000) -> dict[str, Any]:
    rng = study.seeds.fresh("fig34-sampling")
    out: dict[str, Any] = {}
    assert study.classifier is not None
    benign = study.classifier.benign_records(
        study.platform.log, dataset.start_tick, dataset.end_tick
    )
    baseline = sample_receiving_accounts(
        benign, rng, sample_size, dataset.start_tick, dataset.end_tick
    )
    base_out, base_in = degree_cdfs(study.platform, baseline)
    out["baseline"] = {
        "n": len(baseline),
        "median_out_degree": base_out.median(),
        "median_in_degree": base_in.median(),
        "out_cdf": base_out.series(25),
        "in_cdf": base_in.series(25),
    }
    for name, activity in dataset.attributed.items():
        if activity.service_type is not ServiceType.RECIPROCITY_ABUSE:
            continue
        sample = sample_targeted_accounts(activity, rng, sample_size)
        if not sample:
            continue
        cdf_out, cdf_in = degree_cdfs(study.platform, sample)
        out[name] = {
            "n": len(sample),
            "median_out_degree": cdf_out.median(),
            "median_in_degree": cdf_in.median(),
            "out_cdf": cdf_out.series(25),
            "in_cdf": cdf_in.series(25),
        }
    return out


# ----------------------------------------------------------------------
# Figures 5-7 — interventions
# ----------------------------------------------------------------------

def fig5_median_follows(outcome: InterventionOutcome, service: str = "Boostgram") -> dict[str, Any]:
    activity = outcome.attributed[service]
    series = median_daily_actions_series(
        activity.records,
        outcome.assignment,
        ActionType.FOLLOW,
        CountSubject.ACTOR,
        outcome.start_day,
        outcome.end_day,
    )
    thresholds = [
        entry.daily_limit
        for entry in outcome.thresholds.entries.values()
        if entry.action_type is ActionType.FOLLOW and entry.asn in activity.observed_asns
    ]
    return {
        "service": service,
        "threshold": min(thresholds) if thresholds else None,
        "series": {group: dict(sorted(days.items())) for group, days in series.items()},
    }


def fig6_hublaagram_likes(outcome: InterventionOutcome) -> dict[str, Any]:
    activity = outcome.attributed["Hublaagram"]
    series = eligible_proportion_series(
        activity.records,
        outcome.thresholds,
        ActionType.LIKE,
        outcome.start_day,
        outcome.end_day,
    )
    return {"service": "Hublaagram", "series": dict(sorted(series.items()))}


def fig7_broad_follows(outcome: InterventionOutcome, service: str = "Boostgram") -> dict[str, Any]:
    activity = outcome.attributed[service]
    shares = eligible_share_by_group(
        activity.records,
        outcome.thresholds,
        outcome.assignment,
        ActionType.FOLLOW,
        outcome.start_day,
        outcome.end_day,
        period_days=7,
    )
    daily = eligible_proportion_series(
        activity.records,
        outcome.thresholds,
        ActionType.FOLLOW,
        outcome.start_day,
        outcome.end_day,
    )
    return {
        "service": service,
        "switch_day": outcome.switch_day,
        "weekly_group_shares": shares,
        "daily_eligible_proportion": dict(sorted(daily.items())),
    }


def render_study_report(study: Study, dataset: MeasurementDataset) -> str:
    """The full run-study report: every business table and figure.

    One canonical assembly shared by the CLI's ``run-study`` command and
    the fleet ``report`` arm, so a multi-seed fleet replica emits
    byte-identical sections to a serial ``python -m repro run-study`` of
    the same config.
    """
    from repro.core import reporting as R

    sections = [
        R.render_table1(table1_services(study)),
        R.render_table2(table2_reciprocity_pricing()),
        R.render_table3(table3_hublaagram_pricing(study)),
        R.render_table4(table4_followersgratis_pricing()),
        R.render_table5(table5_reciprocation(study.reciprocation_results)),
        R.render_table6(table6_customers(dataset)),
        R.render_table7(table7_locations(study, dataset)),
        R.render_table8(table8_reciprocity_revenue(study, dataset)),
        R.render_table9(table9_hublaagram_revenue(study, dataset)),
        R.render_table10(table10_renewals(study, dataset)),
        R.render_table11(table11_action_mix(dataset)),
        R.render_fig2(fig2_geography(study, dataset)),
        R.render_fig34(fig34_target_bias(study, dataset, sample_size=500)),
    ]
    return "\n\n".join(sections)
