"""Text rendering of experiment results (used by benches and examples)."""

from __future__ import annotations

from typing import Any

from repro.util.tables import format_table


def _pct(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def render_table1(rows: list[dict[str, Any]]) -> str:
    headers = ["Service", "Type", "Like", "Follow", "Comment", "Post", "Unfollow"]
    body = [
        [
            r["service"],
            r["type"],
            *("*" if r[c] else "" for c in ("like", "follow", "comment", "post", "unfollow")),
        ]
        for r in rows
    ]
    return format_table(headers, body, title="Table 1: services offered")


def render_table2(rows: list[dict[str, Any]]) -> str:
    headers = ["Service", "Trial days (advertised)", "Trial days (actual)", "Min paid days", "Cost"]
    body = [
        [
            r["service"],
            r["trial_days"],
            r["trial_days_actual"],
            r["min_paid_days"],
            f"${r['cost_usd']:.2f}",
        ]
        for r in rows
    ]
    return format_table(headers, body, title="Table 2: reciprocity AAS pricing")


def render_table3(rows: list[dict[str, Any]]) -> str:
    headers = ["Description", "Cost", "Duration"]
    body = [[r["description"], f"${r['cost_usd']:.2f}", r["duration"]] for r in rows]
    return format_table(headers, body, title="Table 3: Hublaagram price list (quantities scaled)")


def render_table4(rows: list[dict[str, Any]]) -> str:
    headers = ["Description", "Cost", "Duration (days)"]
    body = [[r["description"], f"${r['cost_usd']:.2f}", r["duration_days"]] for r in rows]
    return format_table(headers, body, title="Table 4: Followersgratis price list")


def render_table5(rows: list[dict[str, Any]]) -> str:
    headers = ["Service", "Kind", "Outbound", "N outbound", "-> likes", "-> follows"]
    body = [
        [
            r["service"],
            r["kind"],
            r["outbound"],
            r["outbound_count"],
            _pct(r["inbound_like_ratio"]),
            _pct(r["inbound_follow_ratio"]),
        ]
        for r in rows
    ]
    return format_table(headers, body, title="Table 5: reciprocation probabilities")


def render_table6(rows: list[dict[str, Any]]) -> str:
    headers = ["Service", "Customers", "Long-term", "LT %", "Short-term", "LT action share"]
    body = [
        [
            r["service"],
            r["customers"],
            r["long_term"],
            _pct(r["long_term_pct"]),
            r["short_term"],
            _pct(r["long_term_action_share"]),
        ]
        for r in rows
    ]
    return format_table(headers, body, title="Table 6: customers per AAS")


def render_table7(rows: list[dict[str, Any]]) -> str:
    headers = ["Service", "Operating country", "ASN locations"]
    body = [[r["service"], r["operating_country"], ", ".join(r["asn_locations"])] for r in rows]
    return format_table(headers, body, title="Table 7: service locations")


def render_table8(rows: list[dict[str, Any]]) -> str:
    headers = ["Service", "Paying accounts", "Fee", "Est. monthly", "Ledger monthly (truth)"]
    body = [
        [
            r["service"],
            r["paying_accounts"],
            r["fee"],
            f"${r['est_monthly_usd']:,.0f}",
            f"${r['true_monthly_usd']:,.0f}",
        ]
        for r in rows
    ]
    return format_table(headers, body, title="Table 8: reciprocity AAS revenue")


def render_table9(result: dict[str, Any]) -> str:
    body = [
        ["No outbound (one-time)", result["no_outbound_accounts"], f"${result['no_outbound_usd']:,.0f}"],
        ["One-time likes", result["one_time_like_buyers"], f"${result['one_time_like_usd']:,.0f}"],
    ]
    for label in sorted(result["monthly_tier_accounts"]):
        body.append(
            [
                f"Likes/photo {label}",
                result["monthly_tier_accounts"][label],
                f"${result['monthly_tier_usd'][label]:,.0f}",
            ]
        )
    body.append(["Ads (low CPM)", result["ad_impressions"], f"${result['ad_usd_low']:,.0f}"])
    body.append(["Ads (high CPM)", result["ad_impressions"], f"${result['ad_usd_high']:,.0f}"])
    body.append(
        [
            "Monthly total (low-high)",
            "",
            f"${result['monthly_total_usd_low']:,.0f} - ${result['monthly_total_usd_high']:,.0f}",
        ]
    )
    body.append(["Ledger truth (window)", "", f"${result['true_window_revenue_usd']:,.0f}"])
    return format_table(["Item", "Count", "Revenue"], body, title="Table 9: Hublaagram revenue")


def render_table10(rows: list[dict[str, Any]]) -> str:
    headers = ["Service", "New", "Preexisting", "Window revenue"]
    body = [
        [r["service"], _pct(r["new_pct"]), _pct(r["preexisting_pct"]), f"${r['total_usd']:,.0f}"]
        for r in rows
    ]
    return format_table(headers, body, title="Table 10: new vs preexisting payer revenue")


def render_table11(rows: list[dict[str, Any]]) -> str:
    headers = ["Service", "Likes", "Follows", "Comments", "Posts", "Unfollows"]
    body = [
        [
            r["service"],
            _pct(r["like"]),
            _pct(r["follow"]),
            _pct(r["comment"]),
            _pct(r["post"]),
            _pct(r["unfollow"]),
        ]
        for r in rows
    ]
    return format_table(headers, body, title="Table 11: action mix")


def render_fig2(result: dict[str, list[tuple[str, float]]]) -> str:
    lines = ["Figure 2: customer locations by country (>=5% bars + OTHER)"]
    for service, shares in result.items():
        bars = ", ".join(f"{country} {_pct(share)}" for country, share in shares)
        lines.append(f"  {service}: {bars}")
    return "\n".join(lines)


def render_fig34(result: dict[str, Any]) -> str:
    headers = ["Sample", "N", "Median out-degree (Fig 3)", "Median in-degree (Fig 4)"]
    body = []
    for name, stats in result.items():
        body.append([name, stats["n"], stats["median_out_degree"], stats["median_in_degree"]])
    return format_table(headers, body, title="Figures 3-4: target degree bias (medians)")


def render_fig5(result: dict[str, Any]) -> str:
    lines = [f"Figure 5: median daily {result['service']} follows per user (threshold={result['threshold']})"]
    for group, series in sorted(result["series"].items()):
        values = list(series.values())
        if not values:
            continue
        head = ", ".join(f"d{day}:{value:.0f}" for day, value in list(series.items())[:14])
        lines.append(f"  {group:<9} mean={sum(values)/len(values):6.1f}  {head} ...")
    return "\n".join(lines)


def render_fig6(result: dict[str, Any]) -> str:
    lines = ["Figure 6: proportion of Hublaagram likes eligible per day"]
    series = result["series"]
    for day, value in series.items():
        lines.append(f"  day {day:>3}: {_pct(value)}")
    return "\n".join(lines)


def render_fig7(result: dict[str, Any]) -> str:
    lines = [f"Figure 7: broad intervention on {result['service']} follows (switch day {result['switch_day']})"]
    for period, shares in result["weekly_group_shares"].items():
        bars = ", ".join(f"{group} {_pct(share)}" for group, share in sorted(shares.items()))
        lines.append(f"  week {period}: {bars}")
    return "\n".join(lines)
