"""The study orchestrator — the paper's end-to-end methodology.

:class:`Study` builds the full simulated world (platform, network
fabric, organic population, the five AASs and their customer bases),
then runs the paper's measurement pipeline in order:

1. honeypot phase — register instrumented accounts with every service,
   quantify reciprocation (Table 5), learn attribution signatures;
2. measurement window — 90 days of attributed activity, feeding the
   customer-base, revenue, and targeting analyses (Tables 6-11,
   Figures 2-4);
3. intervention experiments — narrow and broad countermeasure
   deployments with post-hoc reaction time series (Figures 5-7).

:mod:`repro.core.experiments` exposes one function per paper table and
figure; :mod:`repro.core.reporting` renders their rows as text.
"""

from repro.core.config import ServicePlans, StudyConfig
from repro.core.study import MeasurementDataset, Study
from repro.core import experiments
from repro.core import reporting

__all__ = [
    "StudyConfig",
    "ServicePlans",
    "Study",
    "MeasurementDataset",
    "experiments",
    "reporting",
]
