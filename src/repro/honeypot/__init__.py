"""Honeypot account instrumentation (paper Section 4).

The paper's ground truth comes from ~150 fully-instrumented honeypot
accounts registered with the AASs, plus 50 inactive accounts
establishing that a quiet account receives no background actions. This
package reproduces that methodology:

* :class:`HoneypotFramework` — programmatic account management: empty,
  lived-in, and inactive account types; creation, content upload,
  deletion (which scrubs all platform effects), and action monitoring.
* :class:`ReciprocationExperiment` — the Table 5 experiment: register
  honeypots per (service, action type, account kind), let the service
  run, and measure reciprocation ratios from the honeypots' inbound
  actions.
"""

from repro.honeypot.framework import HoneypotAccount, HoneypotFramework, HoneypotKind
from repro.honeypot.experiments import ReciprocationExperiment, ReciprocationResult

__all__ = [
    "HoneypotAccount",
    "HoneypotFramework",
    "HoneypotKind",
    "ReciprocationExperiment",
    "ReciprocationResult",
]
