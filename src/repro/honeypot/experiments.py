"""The reciprocation-quantification experiment (paper Section 4.3, Table 5).

For each reciprocity-abuse service and each requested action type, a set
of honeypot accounts (nine empty, one lived-in per the paper's 10-account
batches) is registered for exactly that service type. After the trial
runs, the reciprocation ratio is measured as

    inbound actions of a type  /  outbound actions of the requested type

where all inbound activity on a honeypot is attributable to its AAS
enrollment once the inactive-baseline accounts are confirmed quiet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aas.base import AccountAutomationService
from repro.honeypot.framework import HoneypotAccount, HoneypotFramework, HoneypotKind
from repro.platform.models import AccountId, ActionType


@dataclass
class _Registration:
    """One honeypot's enrollment in one service for one action type."""

    honeypot: HoneypotAccount
    service: AccountAutomationService
    action_type: ActionType
    registered_at: int


@dataclass
class ReciprocationResult:
    """One Table 5 row: a (service, action type, account kind) cell."""

    service: str
    kind: HoneypotKind
    outbound_type: ActionType
    outbound_count: int
    inbound_likes: int
    inbound_follows: int
    honeypots: int

    @property
    def like_ratio(self) -> float:
        """P(inbound like per outbound action)."""
        if self.outbound_count == 0:
            return 0.0
        return self.inbound_likes / self.outbound_count

    @property
    def follow_ratio(self) -> float:
        """P(inbound follow per outbound action)."""
        if self.outbound_count == 0:
            return 0.0
        return self.inbound_follows / self.outbound_count


class ReciprocationExperiment:
    """Registers honeypot batches and computes reciprocation ratios."""

    def __init__(
        self,
        framework: HoneypotFramework,
        rng: np.random.Generator,
        high_profile_pool: list[AccountId] | None = None,
    ):
        self.framework = framework
        self.rng = rng
        self.high_profile_pool = list(high_profile_pool or [])
        self._registrations: list[_Registration] = []

    def register_batch(
        self,
        service: AccountAutomationService,
        action_type: ActionType,
        empty: int = 9,
        lived_in: int = 1,
    ) -> list[HoneypotAccount]:
        """Create and enroll one batch for (service, action_type)."""
        if action_type not in service.descriptor.offered_actions:
            raise ValueError(f"{service.name} does not offer {action_type.value}")
        platform = self.framework.platform
        campaign = f"{service.name.lower()}-{action_type.value}"
        honeypots: list[HoneypotAccount] = []
        for _ in range(empty):
            honeypots.append(self.framework.create_empty(campaign=campaign))
        for _ in range(lived_in):
            honeypots.append(
                self.framework.create_lived_in(
                    campaign=campaign, high_profile_pool=self.high_profile_pool
                )
            )
        trial = self._trial_ticks(service)
        for honeypot in honeypots:
            service.register_customer(
                honeypot.username,
                honeypot.password,
                frozenset({action_type}),
                trial_ticks=trial,
            )
            self._registrations.append(
                _Registration(
                    honeypot=honeypot,
                    service=service,
                    action_type=action_type,
                    registered_at=platform.clock.now,
                )
            )
        return honeypots

    @staticmethod
    def _trial_ticks(service: AccountAutomationService) -> int:
        config = getattr(service, "config", None)
        pricing = getattr(config, "pricing", None)
        if pricing is not None:
            return pricing.trial_ticks
        from repro.util.timeutils import days

        return days(7)

    def registrations(self) -> tuple[_Registration, ...]:
        """Every (honeypot, service, action type) registration so far.

        Read-only view: the study's signature learning iterates this to
        pull each honeypot's post-registration outbound actions.
        """
        return tuple(self._registrations)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def results(self) -> list[ReciprocationResult]:
        """Aggregate Table 5 cells over all registrations so far."""
        cells: dict[tuple[str, HoneypotKind, ActionType], dict[str, int]] = {}
        for registration in self._registrations:
            honeypot = registration.honeypot
            key = (registration.service.name, honeypot.kind, registration.action_type)
            cell = cells.setdefault(
                key,
                {"outbound": 0, "in_likes": 0, "in_follows": 0, "honeypots": 0},
            )
            cell["honeypots"] += 1
            since = registration.registered_at
            for record in self.framework.outbound_actions(honeypot, since=since):
                if record.action_type is registration.action_type:
                    cell["outbound"] += 1
            for record in self.framework.inbound_actions(honeypot, since=since):
                if record.action_type is ActionType.LIKE:
                    cell["in_likes"] += 1
                elif record.action_type is ActionType.FOLLOW:
                    cell["in_follows"] += 1
        out = []
        for (service_name, kind, action_type), cell in sorted(
            cells.items(), key=lambda item: (item[0][2].value, item[0][1].value, item[0][0])
        ):
            out.append(
                ReciprocationResult(
                    service=service_name,
                    kind=kind,
                    outbound_type=action_type,
                    outbound_count=cell["outbound"],
                    inbound_likes=cell["in_likes"],
                    inbound_follows=cell["in_follows"],
                    honeypots=cell["honeypots"],
                )
            )
        return out

    def teardown(self) -> int:
        """Delete every experiment honeypot (Section 4.1.2's cleanup)."""
        campaigns = sorted(
            {f"{r.service.name.lower()}-{r.action_type.value}" for r in self._registrations}
        )
        deleted = 0
        for campaign in campaigns:
            deleted += self.framework.delete_all(campaign=campaign)
        return deleted
