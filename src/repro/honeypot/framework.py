"""The honeypot account framework (paper Section 4.1).

"We developed a honeypot account framework to programmatically manage a
large number of Instagram accounts. Our framework supports
campaign-specific accounts, account creation, posting content, deletion,
and data collection of all inbound and outbound actions on the account."

Account types (Section 4.1.1):

* **empty** — minimum viable: 10+ photos from one content category.
* **lived-in** — full profile (picture, biography, name) and follows
  10-20 high-profile accounts, but no followers at creation.
* **inactive** — like empty, but never registered anywhere; the
  attribution baseline (Section 4.1.3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

import numpy as np

from repro.netsim.client import ClientEndpoint, DeviceFingerprint
from repro.netsim.fabric import NetworkFabric
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionRecord, ActionStatus, Profile

PHOTO_CATEGORIES = ("dogs", "cats", "lizards", "food")

#: Lived-in honeypots follow this many high-profile accounts.
LIVED_IN_FOLLOWS = (10, 20)

#: "High-profile" cut: the paper used >1M-follower accounts; at simulation
#: scale we use the population's top percentile, expressed as a minimum
#: in-degree supplied by the caller.


class HoneypotKind(enum.Enum):
    EMPTY = "empty"
    LIVED_IN = "lived-in"
    INACTIVE = "inactive"


@dataclass
class HoneypotAccount:
    """One managed honeypot with its access credentials and endpoint."""

    account_id: AccountId
    username: str
    password: str
    kind: HoneypotKind
    endpoint: ClientEndpoint
    category: str
    created_at: int
    campaign: str = ""
    deleted: bool = False


class HoneypotFramework:
    """Creates, instruments, and tears down honeypot accounts."""

    def __init__(self, platform: InstagramPlatform, fabric: NetworkFabric, rng: np.random.Generator):
        self.platform = platform
        self.fabric = fabric
        self.rng = rng
        self.accounts: list[HoneypotAccount] = []
        #: actions the research framework itself performed (e.g. the
        #: lived-in accounts' initial follows); excluded from measurement
        #: since the researchers know which actions were their own
        self.self_action_ids: set[int] = set()
        self._counter = itertools.count(1)
        #: countries the research team sources diverse IPs from
        self.access_countries = ("USA", "GBR", "DEU")
        for country in self.access_countries:
            fabric.ensure_country(country)

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    def _new_endpoint(self) -> ClientEndpoint:
        """A fresh residential endpoint; the paper deliberately used "a
        diverse set of commercial and residential IP addresses"."""
        country = self.access_countries[int(self.rng.integers(0, len(self.access_countries)))]
        return self.fabric.home_endpoint(country, DeviceFingerprint("android"))

    def _create(self, kind: HoneypotKind, campaign: str, photos: int) -> HoneypotAccount:
        index = next(self._counter)
        username = f"honeypot_{kind.value.replace('-', '')}_{index:04d}"
        password = f"hp_pw_{index:04d}"
        profile = Profile()
        if kind is HoneypotKind.LIVED_IN:
            profile = Profile(
                display_name=f"Casey {index}",
                biography="travel | coffee | photos",
                has_profile_picture=True,
            )
        account = self.platform.create_account(username, password, profile)
        category = PHOTO_CATEGORIES[int(self.rng.integers(0, len(PHOTO_CATEGORIES)))]
        for photo in range(photos):
            self.platform.media.create(
                account.account_id,
                self.platform.clock.now,
                caption=f"{category} #{photo}",
                hashtags=(category,),
            )
        endpoint = self._new_endpoint()
        self.platform.auth.login(account.account_id, password, endpoint, self.platform.clock.now)
        honeypot = HoneypotAccount(
            account_id=account.account_id,
            username=username,
            password=password,
            kind=kind,
            endpoint=endpoint,
            category=category,
            created_at=self.platform.clock.now,
            campaign=campaign,
        )
        self.accounts.append(honeypot)
        return honeypot

    def create_empty(self, campaign: str = "", photos: int = 10) -> HoneypotAccount:
        """An empty honeypot: photos only (Section 4.1.1)."""
        if photos < 10:
            raise ValueError("empty honeypots carry 10 or more photos")
        return self._create(HoneypotKind.EMPTY, campaign, photos)

    def create_lived_in(
        self, campaign: str = "", photos: int = 12, high_profile_pool: list[AccountId] | None = None
    ) -> HoneypotAccount:
        """A lived-in honeypot: full profile + follows high-profile accounts."""
        honeypot = self._create(HoneypotKind.LIVED_IN, campaign, photos)
        pool = high_profile_pool or []
        if pool:
            lo, hi = LIVED_IN_FOLLOWS
            count = min(int(self.rng.integers(lo, hi + 1)), len(pool))
            picks = self.rng.choice(len(pool), size=count, replace=False)
            session = self.platform.login(honeypot.username, honeypot.password, honeypot.endpoint)
            for pick in picks:
                target = pool[int(pick)]
                if not self.platform.graph.is_following(honeypot.account_id, target):
                    record = self.platform.follow(session, target, honeypot.endpoint)
                    self.self_action_ids.add(record.action_id)
        return honeypot

    def create_inactive(self, campaign: str = "baseline", photos: int = 10) -> HoneypotAccount:
        """An attribution-baseline account: never registered anywhere."""
        return self._create(HoneypotKind.INACTIVE, campaign, photos)

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------

    def inbound_actions(self, honeypot: HoneypotAccount, since: int = 0) -> list[ActionRecord]:
        """All delivered inbound actions on the honeypot since ``since``.

        Excludes the honeypot's own initial follows' side effects (there
        are none inbound) — everything inbound is attributable to the
        linked AAS once the baseline shows silence.
        """
        return [
            r
            for r in self.platform.log.by_target_between(honeypot.account_id, since, None)
            if r.status is not ActionStatus.BLOCKED
        ]

    def outbound_actions(
        self, honeypot: HoneypotAccount, since: int = 0, include_self: bool = False
    ) -> list[ActionRecord]:
        """Delivered outbound actions from the honeypot since ``since``.

        Actions the framework itself performed (lived-in setup follows)
        are excluded unless ``include_self`` — once an account is
        enrolled, everything else outbound is AAS automation.
        """
        return [
            r
            for r in self.platform.log.by_actor_between(honeypot.account_id, since, None)
            if r.status is not ActionStatus.BLOCKED
            and (include_self or r.action_id not in self.self_action_ids)
        ]

    def baseline_is_quiet(self) -> bool:
        """Attribution check: no inactive honeypot received any action."""
        for honeypot in self.accounts:
            if honeypot.kind is not HoneypotKind.INACTIVE or honeypot.deleted:
                continue
            if self.inbound_actions(honeypot):
                return False
        return True

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def delete(self, honeypot: HoneypotAccount) -> None:
        """Delete one honeypot, scrubbing its platform footprint."""
        if honeypot.deleted:
            return
        self.platform.delete_account(honeypot.account_id)
        honeypot.deleted = True

    def delete_all(self, campaign: str | None = None) -> int:
        """Delete all (or one campaign's) honeypots; returns count."""
        deleted = 0
        for honeypot in self.accounts:
            if honeypot.deleted:
                continue
            if campaign is not None and honeypot.campaign != campaign:
                continue
            self.delete(honeypot)
            deleted += 1
        return deleted
