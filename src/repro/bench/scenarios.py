"""The canonical benchmark scenarios.

Three scenarios cover the hot paths the indexed/incremental fast path
(DESIGN.md "Performance architecture") was built for:

* ``tick_loop`` — raw simulation throughput (``Study.run_hours``) at
  several population scales, timing-wheel fast path vs. the naive
  reference loop.
* ``sweep`` — attribution-sweep latency over a populated measurement
  window across the three classifier tiers: brute force over a
  materialized record list (the pre-index call pattern), the bucketed
  cold sweep over the indexed log, and the incremental sweep of an
  attached (streaming) classifier.
* ``run_standard`` — wall time of the whole pipeline (honeypots →
  signatures → measurement), fast path vs. naive.
* ``world_build`` — ``Study(config)`` construction time, columnar
  stores (DESIGN.md §11) vs. the set/list reference stores, up to 10x
  the tiny preset's population.
* ``fleet`` — the :mod:`repro.fleet` replication runner: a seeds ×
  intervention-arms sweep run serially with every replica rebuilding its
  prefix, vs. pooled with the world-snapshot prefix cache. The derived
  block records the snapshot hit rate and that the serial and pooled
  replica payloads are identical.
* ``sweep_orch`` — the manifest-grid orchestrator: one declarative
  sweep run flat (per-group prefix builds), as a nested prefix tree
  (shared world/honeypot nodes), and against a warm disk snapshot store
  (zero builds). Headline: ``speedup_tree_vs_flat`` plus the exact
  phase-cost ledger at every tree depth.

Each scenario returns one schema-versioned payload
(:mod:`repro.bench.schema`); the CLI writes it to
``BENCH_<SCENARIO>.json``. Smoke mode shrinks scales and repetitions to
CI-friendly seconds while exercising every code path.

Every payload embeds an ``observability`` key — the ``repro.obs``
metrics snapshot of a representative timed study (the last fast-path
study the scenario built) — so the timing numbers carry their
explanatory context: index hit rates, sweep-tier counts, scheduler
park/wake behavior.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from typing import Callable

from repro.bench.harness import (
    Stats,
    peak_rss_kb,
    summarize,
    time_interleaved,
    time_repeated,
)
from repro.bench.schema import SCHEMA_VERSION
from repro.behavior.degree import DegreeDistribution
from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.detection.classifier import AASClassifier
from repro.fleet import (
    PREFIX_DEPTH,
    PREFIX_SIGNATURES,
    PREFIXES,
    ArmSpec,
    FleetResult,
    FleetRunner,
    ReplicaSpec,
    SnapshotStore,
    SweepManifest,
    config_digest,
    expand_manifest,
    materialize_tree,
    plan_tree,
    remove_store_root,
    temporary_store_root,
)

#: seed used by every scenario; fixed so reruns time identical workloads
BENCH_SEED = 42


def _speedup(slow: Stats, fast: Stats) -> dict:
    """A ``derived.speedup_*`` entry: the ratio plus its noise verdict.

    The ratio compares the two cases' *minima*. On a shared runner,
    interference is one-sided — it only ever adds time — so the min-of-N
    sample is the best estimate of each case's true cost, while means
    (and stdev-based CVs) absorb whatever else the host was doing during
    the run. The noise yardstick is correspondingly min-based: the worse
    of the two cases' relative best-to-runnerup gaps, i.e. how
    reproducible each minimum proved to be. ``noise_floor`` is true when
    |speedup - 1| sits inside that gap — the measured ratio is then
    indistinguishable from run-to-run jitter and must not be read as a
    real effect.
    """
    value = slow.best_s / fast.best_s
    noise_cv = max(
        (slow.runnerup_s - slow.best_s) / slow.best_s,
        (fast.runnerup_s - fast.best_s) / fast.best_s,
    )
    return {
        "value": value,
        "noise_cv": noise_cv,
        "noise_floor": abs(value - 1.0) < noise_cv,
    }


def bench_file_name(benchmark: str) -> str:
    """``BENCH_<NAME>.json`` for one scenario's payload."""
    return f"BENCH_{benchmark.upper()}.json"


def _envelope(
    benchmark: str,
    smoke: bool,
    settings: dict,
    results: list[dict],
    derived: dict | None = None,
    observability: dict | None = None,
) -> dict:
    payload = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "mode": "smoke" if smoke else "full",
        "settings": settings,
        "results": results,
    }
    if derived is not None:
        payload["derived"] = derived
    if observability is not None:
        payload["observability"] = observability
    return payload


def _mode_label(fast: bool) -> str:
    return "fast" if fast else "naive"


# ----------------------------------------------------------------------
# tick_loop — simulation throughput at several population scales
# ----------------------------------------------------------------------

def bench_tick_loop(smoke: bool, workers: int = 1) -> dict:
    sizes = (260,) if smoke else (260, 520, 900)
    hours = 24 if smoke else 48
    warmup, repetitions = (0, 1) if smoke else (1, 3)
    results = []
    built: dict[bool, Study] = {}
    for size in sizes:
        def make_case(fast: bool, size: int = size) -> Callable[[], object]:
            base = StudyConfig.tiny(seed=BENCH_SEED)
            config = replace(
                base,
                fast_path=fast,
                population=replace(base.population, size=size),
            )
            study = Study(config)
            built[fast] = study
            return lambda: study.run_hours(hours)

        cases = {
            _mode_label(fast): (lambda fast=fast: make_case(fast)) for fast in (True, False)
        }
        for label, samples in time_interleaved(cases, warmup, repetitions).items():
            stats = summarize(samples, warmup)
            results.append(
                {
                    "name": f"population-{size}-{label}",
                    "stats": stats.as_dict(),
                    "ticks_per_s": hours / stats.mean_s,
                    "peak_rss_kb": peak_rss_kb(),
                }
            )
    settings = {
        "seed": BENCH_SEED,
        "population_sizes": list(sizes),
        "hours_per_run": hours,
    }
    return _envelope(
        "tick_loop", smoke, settings, results,
        observability=built[True].obs.metrics.snapshot(),
    )


# ----------------------------------------------------------------------
# sweep — attribution latency: brute force vs. bucketed vs. incremental
# ----------------------------------------------------------------------

def bench_sweep(smoke: bool, workers: int = 1) -> dict:
    measurement_days = 3 if smoke else 10
    warmup, repetitions = (0, 2) if smoke else (1, 5)

    config = StudyConfig.tiny(seed=BENCH_SEED)
    study = Study(config)
    study.run_honeypot_phase()
    study.learn_signatures()
    dataset = study.run_measurement(measurement_days)
    log = study.platform.log
    start_tick, end_tick = dataset.start_tick, dataset.end_tick
    assert study.classifier is not None
    signatures = list(study.classifier.signatures)

    def brute_case() -> Callable[[], object]:
        # a fresh classifier per run: no match memo, no caches — and the
        # list() materialization the pre-index call sites paid every sweep
        classifier = AASClassifier(signatures)
        return lambda: classifier.sweep(list(log), start_tick, end_tick)

    def bucketed_case() -> Callable[[], object]:
        classifier = AASClassifier(signatures)
        return lambda: classifier.sweep(log, start_tick, end_tick)

    def incremental_case() -> Callable[[], object]:
        # the study's own classifier streams from the log (fast path), so
        # this is the repeated-sweep pattern of the intervention phases
        classifier = study.classifier
        assert classifier is not None and classifier.attached_log is log
        return lambda: classifier.sweep(log, start_tick, end_tick)

    cases = (
        ("cold-brute-force", brute_case),
        ("cold-bucketed", bucketed_case),
        ("incremental", incremental_case),
    )
    results = []
    stats_by_name: dict[str, Stats] = {}
    for name, make_case in cases:
        stats = summarize(time_repeated(make_case, warmup, repetitions), warmup)
        stats_by_name[name] = stats
        results.append(
            {"name": name, "stats": stats.as_dict(), "peak_rss_kb": peak_rss_kb()}
        )
    derived = {
        "log_records": len(log),
        "window_records": len(log.records_between(start_tick, end_tick)),
        "speedup_incremental_vs_cold_brute": _speedup(
            stats_by_name["cold-brute-force"], stats_by_name["incremental"]
        ),
        "speedup_incremental_vs_cold_bucketed": _speedup(
            stats_by_name["cold-bucketed"], stats_by_name["incremental"]
        ),
        "speedup_bucketed_vs_cold_brute": _speedup(
            stats_by_name["cold-brute-force"], stats_by_name["cold-bucketed"]
        ),
    }
    settings = {
        "seed": BENCH_SEED,
        "measurement_days": measurement_days,
        "window": [start_tick, end_tick],
    }
    return _envelope(
        "sweep", smoke, settings, results, derived,
        observability=study.obs.metrics.snapshot(),
    )


# ----------------------------------------------------------------------
# run_standard — the whole pipeline, fast path vs. naive
# ----------------------------------------------------------------------

def bench_run_standard(smoke: bool, workers: int = 1) -> dict:
    """Time the whole pipeline fast vs naive at 1x and 10x population.

    Full mode runs two scales of the tiny preset: the preset's own
    population (260) and a 10x variant (2600). The 10x pair is the
    headline ``speedup_fast_vs_naive`` — it demonstrates the scaled
    acceptance claim directly: the fast path runs a standard study at
    ten times today's population inside the wall-clock the reference
    path needs for the same world. Smoke mode keeps the single-scale
    shortened pipeline.
    """
    sizes = (260,) if smoke else (260, 2600)
    # 5 repetitions in full mode: the fast-vs-naive separation here is a
    # few percent, so the min-of-N estimator needs enough samples for
    # both minima (and their runner-ups) to settle below that separation
    warmup, repetitions = (0, 1) if smoke else (1, 5)
    results = []
    speedups: dict[int, dict] = {}
    built: dict[bool, Study] = {}
    for size in sizes:
        def make_case(fast: bool, size: int = size) -> Callable[[], object]:
            config = StudyConfig.tiny(seed=BENCH_SEED)
            if smoke:
                config = replace(config, honeypot_days=2, measurement_days=2)
            config = replace(
                config,
                fast_path=fast,
                population=replace(config.population, size=size),
            )
            study = Study(config)
            built[fast] = study
            return lambda: study.run_standard()

        cases = {
            _mode_label(fast): (lambda fast=fast: make_case(fast)) for fast in (True, False)
        }
        stats_by_mode: dict[str, Stats] = {}
        for label, samples in time_interleaved(cases, warmup, repetitions).items():
            stats = summarize(samples, warmup)
            stats_by_mode[label] = stats
            results.append(
                {
                    "name": f"run-standard-pop{size}-{label}",
                    "stats": stats.as_dict(),
                    "peak_rss_kb": peak_rss_kb(),
                }
            )
        speedups[size] = _speedup(stats_by_mode["naive"], stats_by_mode["fast"])
    headline_size = max(sizes)
    derived: dict = {
        f"speedup_fast_vs_naive_pop{headline_size}": speedups[headline_size],
        #: the headline (and the scaled acceptance claim): the largest scale
        "speedup_fast_vs_naive": speedups[headline_size],
    }
    # At the preset's own scale the fast/naive separation sits inside
    # run-to-run jitter (noise_cv ~ 0.1 on a shared runner), so the
    # small-population ratios are context, not gated claims: nesting them
    # under ``informational`` keeps them out of the top-level
    # ``speedup_*`` namespace the CI noise-floor gate scans.
    informational = {
        f"speedup_fast_vs_naive_pop{size}": entry
        for size, entry in speedups.items()
        if size != headline_size
    }
    if informational:
        derived["informational"] = informational
    settings = {
        "seed": BENCH_SEED,
        "preset": "tiny",
        "population_sizes": list(sizes),
        "scaled_population_multiple": max(sizes) / 260,
    }
    return _envelope(
        "run_standard", smoke, settings, results, derived,
        observability=built[True].obs.metrics.snapshot(),
    )


# ----------------------------------------------------------------------
# world_build — Study construction, columnar stores vs reference stores
# ----------------------------------------------------------------------

#: the world_build wiring knobs: a follower-graph-heavy population.
#: The tiny preset's default build is ~85% profile/media synthesis —
#: work both store modes share — so at default degrees the store
#: difference drowns in mode-independent cost. Raising the out-degree
#: median (40 → 200) and thinning media per account shifts the build's
#: weight onto graph wiring, the work the columnar stores actually
#: change, without touching what the stores are asked to do per edge.
_BUILD_DEGREE_MEDIAN = 200.0
_BUILD_MEDIA_PER_ACCOUNT = (2, 6)


def bench_world_build(smoke: bool, workers: int = 1) -> dict:
    """Time world construction (``Study(config)``) fast vs naive.

    The build is where the columnar graph's ``bulk_follow_new`` wiring
    (one ``dict.fromkeys`` row per account + flat CSR edge columns) pays
    off against the per-edge set-insert reference path. The workload is
    deliberately wiring-heavy (see the module-level knobs above): it
    times the store-differentiated part of the build rather than the
    mode-independent synthesis that dominates the default preset. The
    largest full-mode size (2600) is 10x the tiny preset's population —
    the scale where the columnar advantage clears the noise floor
    decisively; smoke mode uses the mid size for the same reason (at 260
    the store difference is inside jitter on a busy CI runner).
    """
    sizes = (900,) if smoke else (260, 900, 2600)
    warmup, repetitions = (1, 3) if smoke else (1, 5)
    results = []
    speedups: dict[int, dict] = {}
    built: dict[bool, Study] = {}
    for size in sizes:
        def make_case(fast: bool, size: int = size) -> Callable[[], object]:
            base = StudyConfig.tiny(seed=BENCH_SEED)
            config = replace(
                base,
                fast_path=fast,
                population=replace(
                    base.population,
                    size=size,
                    out_degree=DegreeDistribution(median=_BUILD_DEGREE_MEDIAN, sigma=1.0),
                    media_per_account=_BUILD_MEDIA_PER_ACCOUNT,
                ),
            )
            return lambda: built.__setitem__(fast, Study(config))

        cases = {
            _mode_label(fast): (lambda fast=fast: make_case(fast)) for fast in (True, False)
        }
        stats_by_mode: dict[str, Stats] = {}
        for label, samples in time_interleaved(cases, warmup, repetitions).items():
            stats = summarize(samples, warmup)
            stats_by_mode[label] = stats
            results.append(
                {
                    "name": f"population-{size}-{label}",
                    "stats": stats.as_dict(),
                    "accounts_per_s": size / stats.mean_s,
                    "peak_rss_kb": peak_rss_kb(),
                }
            )
        speedups[size] = _speedup(stats_by_mode["naive"], stats_by_mode["fast"])
    derived: dict = {
        f"speedup_columnar_vs_naive_pop{size}": entry
        for size, entry in speedups.items()
    }
    #: the headline number (and CI's noise-floor gate): the largest size
    derived["speedup_columnar_vs_naive"] = speedups[max(sizes)]
    settings = {
        "seed": BENCH_SEED,
        "population_sizes": list(sizes),
        "preset": "tiny",
        "tiny_population_multiple": max(sizes) / 260,
        "out_degree_median": _BUILD_DEGREE_MEDIAN,
        "media_per_account": list(_BUILD_MEDIA_PER_ACCOUNT),
    }
    return _envelope(
        "world_build", smoke, settings, results, derived,
        observability=built[True].obs.metrics.snapshot(),
    )


# ----------------------------------------------------------------------
# fleet — replication runner: serial rebuild-everything vs pooled reuse
# ----------------------------------------------------------------------

def _fleet_specs(smoke: bool) -> list[ReplicaSpec]:
    """The fleet workload: seeds × intervention arms sharing a prefix.

    Full mode stretches the honeypot phase so the shared prefix
    dominates each replica — the realistic shape for arm sweeps, and the
    regime the snapshot cache exists for. Intervention arms skip the
    pre-intervention measurement window (``measurement_days=0``);
    standard arms keep short ones so both payload shapes are exercised.
    """
    honeypot_days = 4 if smoke else 16
    base = replace(StudyConfig.tiny(seed=BENCH_SEED), honeypot_days=honeypot_days)
    seeds = (BENCH_SEED, BENCH_SEED + 1)
    specs: list[ReplicaSpec] = []
    for seed in seeds:
        config = replace(base, seed=seed)
        specs.append(
            ReplicaSpec(
                name=f"seed-{seed}/standard-md1",
                config=config,
                arm="standard",
                arm_options=(("measurement_days", 1),),
            )
        )
        specs.append(
            ReplicaSpec(
                name=f"seed-{seed}/narrow",
                config=config,
                arm="narrow",
                arm_options=(
                    ("measurement_days", 0),
                    ("narrow_days", 1 if smoke else 2),
                    ("calibration_days", 1),
                ),
            )
        )
        if not smoke:
            specs.append(
                ReplicaSpec(
                    name=f"seed-{seed}/standard-md2",
                    config=config,
                    arm="standard",
                    arm_options=(("measurement_days", 2),),
                )
            )
            specs.append(
                ReplicaSpec(
                    name=f"seed-{seed}/broad",
                    config=config,
                    arm="broad",
                    arm_options=(
                        ("measurement_days", 0),
                        ("delay_days", 1),
                        ("block_days", 1),
                        ("calibration_days", 1),
                    ),
                )
            )
    return specs


def _replica_payload_digest(result: FleetResult) -> str:
    """Digest of the inner replica payloads only — the part that must be
    identical between the serial and pooled cases (the snapshot-stats
    envelope legitimately differs: reuse is off in the serial baseline)."""
    text = json.dumps([r.payload for r in result.replicas], sort_keys=True)
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def bench_fleet(smoke: bool, workers: int = 4) -> dict:
    specs = _fleet_specs(smoke)
    warmup, repetitions = 0, 1

    captured: dict[str, FleetResult] = {}

    def serial_case() -> Callable[[], object]:
        runner = FleetRunner(workers=1, reuse_prefix=False)
        return lambda: captured.__setitem__("serial-no-reuse", runner.run(specs))

    def pooled_case() -> Callable[[], object]:
        runner = FleetRunner(workers=workers, reuse_prefix=True)
        return lambda: captured.__setitem__("pooled-reuse", runner.run(specs))

    results = []
    stats_by_name: dict[str, Stats] = {}
    for name, make_case in (("serial-no-reuse", serial_case), ("pooled-reuse", pooled_case)):
        stats = summarize(time_repeated(make_case, warmup, repetitions), warmup)
        stats_by_name[name] = stats
        results.append(
            {
                "name": name,
                "stats": stats.as_dict(),
                "replicas": len(specs),
                "peak_rss_kb": peak_rss_kb(),
            }
        )

    pooled = captured["pooled-reuse"]
    serial = captured["serial-no-reuse"]
    derived = {
        "speedup_pooled_vs_serial": _speedup(
            stats_by_name["serial-no-reuse"], stats_by_name["pooled-reuse"]
        ),
        "replica_payloads_match": (
            _replica_payload_digest(serial) == _replica_payload_digest(pooled)
        ),
        "snapshot": {
            "prefix_groups": pooled.prefix_groups,
            "prefix_builds": pooled.prefix_builds,
            "prefix_restores": pooled.prefix_restores,
            "build_cost_avoided_frac": pooled.build_cost_avoided_frac,
            "snapshot_hit_rate": (
                (pooled.prefix_restores - pooled.prefix_builds) / pooled.prefix_restores
                if pooled.prefix_restores
                else 0.0
            ),
        },
    }
    settings = {
        "seed": BENCH_SEED,
        "preset": "tiny",
        "honeypot_days": 4 if smoke else 16,
        "replicas": [spec.name for spec in specs],
        "workers": workers,
    }
    return _envelope("fleet", smoke, settings, results, derived)


# ----------------------------------------------------------------------
# sweep_orch — manifest grids: flat reuse vs nested trees vs warm store
# ----------------------------------------------------------------------

def _sweep_orch_manifest(smoke: bool, prefix: str = PREFIX_SIGNATURES) -> SweepManifest:
    """The orchestrator workload: seeds × honeypot-days × measurement-
    days × arms.

    Full mode expands to 24 replicas (2 seeds × 2 honeypot spans × 2
    measurement windows × 3 arms) — the shape where the nested tree
    earns its keep. The flat baseline keys its cache on the *whole*
    config digest, so every (honeypot_days, measurement_days) cell
    rebuilds world + honeypot + signatures from scratch; the tree
    instead forks honeypot variants off a shared world node and lets
    all measurement windows of a cell share the entire chain (the
    window length is post-prefix). Smoke keeps the same shape with
    short phases and the standard arm only.
    """
    arms: tuple[ArmSpec, ...]
    if smoke:
        arms = (ArmSpec(arm="standard"),)
    else:
        # standard and report honor the config-level measurement window;
        # narrow skips it (measurement_days=0) and runs the intervention
        arms = (
            ArmSpec(arm="standard"),
            ArmSpec(arm="report"),
            ArmSpec(
                arm="narrow",
                options=(
                    ("measurement_days", 0),
                    ("narrow_days", 1),
                    ("calibration_days", 1),
                ),
            ),
        )
    return SweepManifest(
        name="bench-sweep-orch",
        preset="tiny",
        prefix=prefix,
        seeds=(BENCH_SEED, BENCH_SEED + 1),
        honeypot_days=(2, 3) if smoke else (4, 8),
        measurement_days=(1, 2) if smoke else (2, 4),
        arms=arms,
    )


def _planned_costs(specs: list[ReplicaSpec]) -> dict:
    """The deterministic phase-cost ledger of a spec list, by planning
    alone (no execution): what a cold tree run builds vs. what flat
    per-(config, prefix) grouping builds, over the same phase units."""
    units = sum(spec.depth for spec in specs)
    tree_builds = len(plan_tree(specs).nodes)
    flat_groups = {
        (config_digest(spec.config), spec.prefix): PREFIX_DEPTH[spec.prefix]
        for spec in specs
    }
    flat_builds = sum(flat_groups.values())
    return {
        "replicas": len(specs),
        "phase_units": units,
        "phase_builds_tree": tree_builds,
        "phase_builds_flat": flat_builds,
        "build_cost_avoided_frac_tree": 1.0 - tree_builds / units if units else 0.0,
        "build_cost_avoided_frac_flat": 1.0 - flat_builds / units if units else 0.0,
    }


def bench_sweep_orch(smoke: bool, workers: int = 1) -> dict:
    """Time one manifest grid under the three orchestration strategies.

    * ``flat-reuse`` — the pre-tree baseline: one full prefix build per
      distinct (config, prefix) group, no cross-group sharing.
    * ``tree-reuse`` — the nested planner: shared world/honeypot nodes,
      each phase executed once per distinct sub-digest.
    * ``tree-warm-store`` — the same tree against a pre-materialized
      disk store: zero prefix builds, every node restored from disk.

    All three must produce byte-identical replica payloads — the derived
    block records that check alongside the headline
    ``speedup_tree_vs_flat``. ``by_depth`` reports the planning-time
    cost ledger for the same grid truncated at every tree depth
    (world-only, +honeypot, +signatures); it is exact and untimed.
    """
    manifest = _sweep_orch_manifest(smoke)
    specs = expand_manifest(manifest)
    # two repetitions minimum: the noise yardstick is the best-to-
    # runnerup gap, which is identically zero from a single sample
    warmup, repetitions = (0, 2)

    store_root = temporary_store_root()
    captured: dict[str, FleetResult] = {}
    try:
        warm_store = SnapshotStore(store_root)
        materialize_tree(specs, warm_store)

        def flat_case() -> Callable[[], object]:
            runner = FleetRunner(workers=1, strategy="flat")
            return lambda: captured.__setitem__("flat-reuse", runner.run(specs))

        def tree_case() -> Callable[[], object]:
            runner = FleetRunner(workers=1, strategy="tree")
            return lambda: captured.__setitem__("tree-reuse", runner.run(specs))

        def warm_case() -> Callable[[], object]:
            def run() -> object:
                # a fresh store handle per run: nothing carried in memory,
                # every node restore is a disk read + integrity check
                runner = FleetRunner(
                    workers=1, strategy="tree", store=SnapshotStore(store_root)
                )
                return captured.__setitem__("tree-warm-store", runner.run(specs))

            return run

        results = []
        stats_by_name: dict[str, Stats] = {}
        cases = (
            ("flat-reuse", flat_case),
            ("tree-reuse", tree_case),
            ("tree-warm-store", warm_case),
        )
        for name, make_case in cases:
            stats = summarize(time_repeated(make_case, warmup, repetitions), warmup)
            stats_by_name[name] = stats
            results.append(
                {
                    "name": name,
                    "stats": stats.as_dict(),
                    "replicas": len(specs),
                    "peak_rss_kb": peak_rss_kb(),
                }
            )
    finally:
        remove_store_root(store_root)

    flat = captured["flat-reuse"]
    tree = captured["tree-reuse"]
    warm = captured["tree-warm-store"]
    digests = {name: _replica_payload_digest(result) for name, result in captured.items()}
    derived = {
        "speedup_tree_vs_flat": _speedup(
            stats_by_name["flat-reuse"], stats_by_name["tree-reuse"]
        ),
        "speedup_warm_store_vs_flat": _speedup(
            stats_by_name["flat-reuse"], stats_by_name["tree-warm-store"]
        ),
        "build_cost_avoided_frac": tree.build_cost_avoided_frac,
        "replica_payloads_match": len(set(digests.values())) == 1,
        "tree": dict(tree.tree_stats or {}),
        "ledger": {
            "flat": {"phase_units": flat.phase_units, "phase_builds": flat.phase_builds},
            "tree": {"phase_units": tree.phase_units, "phase_builds": tree.phase_builds},
            "warm": {"phase_units": warm.phase_units, "phase_builds": warm.phase_builds},
        },
        "warm_store": {
            "prefix_builds": warm.prefix_builds,
            "store": dict(warm.store_stats or {}),
        },
        "by_depth": {
            str(PREFIX_DEPTH[prefix]): _planned_costs(
                expand_manifest(_sweep_orch_manifest(smoke, prefix=prefix))
            )
            for prefix in PREFIXES
        },
    }
    settings = {
        "seeds": list(manifest.seeds),
        "preset": manifest.preset,
        "prefix": manifest.prefix,
        "honeypot_days": list(manifest.honeypot_days),
        "replicas": [spec.name for spec in specs],
        "repetitions": repetitions,
    }
    return _envelope("sweep_orch", smoke, settings, results, derived)


#: scenario name -> builder(smoke, workers), in emission order
SCENARIOS: dict[str, Callable[..., dict]] = {
    "tick_loop": bench_tick_loop,
    "sweep": bench_sweep,
    "run_standard": bench_run_standard,
    "world_build": bench_world_build,
    "fleet": bench_fleet,
    "sweep_orch": bench_sweep_orch,
}
