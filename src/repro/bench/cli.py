"""``python -m repro.bench`` — run scenarios, write/validate BENCH JSON.

Exit codes: 0 success, 1 validation failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.bench.scenarios import SCENARIOS, bench_file_name
from repro.bench.schema import validate_payload
from repro.core.config import resolve_workers
from repro.obs.history import HISTORY_FILE_NAME, append_history, history_record


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "perf harness: times the tick loop, attribution sweeps, and the "
            "full pipeline; writes one schema-versioned BENCH_<NAME>.json "
            "per scenario"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-friendly mode: shrunk scales and repetitions, same code paths",
    )
    parser.add_argument(
        "--only",
        metavar="NAMES",
        help=f"comma-separated scenario subset (of: {', '.join(SCENARIOS)})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the fleet scenario's pooled case "
            "(default: REPRO_WORKERS or 4); merged fleet output is "
            "byte-identical for any value"
        ),
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        help="directory for BENCH_*.json files (default: current directory)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help=(
            f"do not append this run to {HISTORY_FILE_NAME} in the output "
            "directory (appending is the default so the perf trajectory "
            "survives across PRs; `python -m repro.obs regress` consumes it)"
        ),
    )
    parser.add_argument(
        "--validate",
        nargs="+",
        metavar="FILE",
        help="validate existing BENCH JSON files against the schema and exit",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="print scenario names and exit",
    )
    return parser


def _validate_files(paths: Sequence[str]) -> int:
    failures = 0
    for raw in paths:
        path = Path(raw)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            failures += 1
            continue
        errors = validate_payload(payload)
        if errors:
            failures += 1
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failures else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_scenarios:
        for name in SCENARIOS:
            print(name)
        return 0

    if args.validate:
        return _validate_files(args.validate)

    selected = list(SCENARIOS)
    if args.only:
        selected = [part.strip() for part in args.only.split(",") if part.strip()]
        unknown = [name for name in selected if name not in SCENARIOS]
        if unknown:
            parser.error(
                f"unknown scenario(s): {', '.join(unknown)} (known: {', '.join(SCENARIOS)})"
            )

    try:
        # the fleet scenario's pooled case defaults to a real pool
        workers = resolve_workers(args.workers, default=4)
    except ValueError as exc:
        parser.error(str(exc))

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name in selected:
        payload = SCENARIOS[name](args.smoke, workers=workers)
        errors = validate_payload(payload)
        if errors:  # a scenario bug, not a user error — fail loudly
            for error in errors:
                print(f"{name}: schema violation: {error}", file=sys.stderr)
            return 1
        path = out_dir / bench_file_name(payload["benchmark"])
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        print(f"wrote {path}")
        if not args.no_history:
            record = history_record(payload, source_dir=out_dir)
            history_path = append_history(out_dir / HISTORY_FILE_NAME, record)
            print(f"appended {history_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
