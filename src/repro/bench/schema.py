"""The ``BENCH_*.json`` envelope and its validator.

All scenario files share one envelope::

    {
      "schema_version": 3,
      "benchmark": "<scenario name>",
      "mode": "full" | "smoke",
      "settings": { ...scenario knobs (seed, scales, days, ...) },
      "results": [
        {
          "name": "<case label>",
          "stats": {"warmup": int, "repetitions": int,
                    "best_s": float, "runnerup_s": float,
                    "mean_s": float, "median_s": float,
                    "stdev_s": float, "cv": float},
          "peak_rss_kb": int,  # process peak RSS after this case's runs
          ...optional extra numeric fields (e.g. "ticks_per_s")
        },
        ...
      ],
      "derived": { ...optional cross-case numbers; every "speedup_*"
                   entry is {"value": float, "noise_floor": bool, ...} },
      "observability": { ...optional repro.obs metrics snapshot of a
                         representative timed study — the explanatory
                         context for the timings (index hit rates,
                         sweep-tier counts, scheduler behavior) }
    }

The validator is pure python (no jsonschema dependency) and is what CI's
bench smoke job runs over the emitted files. The ``observability`` key,
when present, must be a valid :func:`repro.obs.schema.validate_snapshot`
payload.
"""

from __future__ import annotations

from repro.obs.schema import validate_snapshot

#: v2: stats blocks carry stdev_s + cv, and every ``derived.speedup_*``
#: entry is an object ``{"value": float, "noise_floor": bool, ...}`` —
#: ``noise_floor`` true means the measured ratio is indistinguishable
#: from run-to-run jitter and must not be read as a real effect.
#: v3: every result carries ``peak_rss_kb`` — the process peak RSS
#: (``ru_maxrss``) read after the case's runs; a process-wide high-water
#: mark, so within one bench process later cases subsume earlier peaks
#: (treat it as an upper bound per case). Stats blocks also carry
#: ``runnerup_s`` (the second-smallest sample): speedups are min-of-N
#: ratios (``slow.best_s / fast.best_s``) because shared-runner noise is
#: one-sided, and the relative best-to-runnerup gap is the noise
#: yardstick ``noise_floor`` is judged against.
SCHEMA_VERSION = 3

_STATS_FIELDS: tuple[tuple[str, type | tuple[type, ...]], ...] = (
    ("warmup", int),
    ("repetitions", int),
    ("best_s", (int, float)),
    ("runnerup_s", (int, float)),
    ("mean_s", (int, float)),
    ("median_s", (int, float)),
    ("stdev_s", (int, float)),
    ("cv", (int, float)),
)


def _check(condition: bool, message: str, errors: list[str]) -> bool:
    if not condition:
        errors.append(message)
    return condition


def validate_payload(payload: object) -> list[str]:
    """Problems with one BENCH payload; empty list means valid."""
    errors: list[str] = []
    if not _check(isinstance(payload, dict), "payload must be a JSON object", errors):
        return errors
    assert isinstance(payload, dict)

    version = payload.get("schema_version")
    _check(
        version == SCHEMA_VERSION,
        f"schema_version must be {SCHEMA_VERSION}, got {version!r}",
        errors,
    )
    benchmark = payload.get("benchmark")
    _check(
        isinstance(benchmark, str) and bool(benchmark),
        "benchmark must be a non-empty string",
        errors,
    )
    _check(payload.get("mode") in ("full", "smoke"), "mode must be 'full' or 'smoke'", errors)
    _check(isinstance(payload.get("settings"), dict), "settings must be an object", errors)
    if "derived" in payload:
        derived = payload["derived"]
        if _check(isinstance(derived, dict), "derived must be an object", errors):
            assert isinstance(derived, dict)
            for key, entry in derived.items():
                if not (isinstance(key, str) and key.startswith("speedup_")):
                    continue
                where = f"derived.{key}"
                if not _check(
                    isinstance(entry, dict),
                    f"{where} must be an object with value and noise_floor",
                    errors,
                ):
                    continue
                assert isinstance(entry, dict)
                value = entry.get("value")
                _check(
                    isinstance(value, (int, float)) and not isinstance(value, bool),
                    f"{where}.value must be a number",
                    errors,
                )
                _check(
                    isinstance(entry.get("noise_floor"), bool),
                    f"{where}.noise_floor must be a boolean",
                    errors,
                )
    if "observability" in payload:
        for error in validate_snapshot(payload["observability"]):
            errors.append(f"observability: {error}")

    results = payload.get("results")
    if not _check(
        isinstance(results, list) and bool(results),
        "results must be a non-empty array",
        errors,
    ):
        return errors
    assert isinstance(results, list)
    for index, result in enumerate(results):
        where = f"results[{index}]"
        if not _check(isinstance(result, dict), f"{where} must be an object", errors):
            continue
        _check(
            isinstance(result.get("name"), str) and bool(result.get("name")),
            f"{where}.name must be a non-empty string",
            errors,
        )
        rss = result.get("peak_rss_kb")
        _check(
            isinstance(rss, int) and not isinstance(rss, bool) and rss >= 0,
            f"{where}.peak_rss_kb must be a non-negative integer",
            errors,
        )
        stats = result.get("stats")
        if not _check(isinstance(stats, dict), f"{where}.stats must be an object", errors):
            continue
        assert isinstance(stats, dict)
        for field_name, expected in _STATS_FIELDS:
            value = stats.get(field_name)
            ok = isinstance(value, expected) and not isinstance(value, bool)
            _check(ok, f"{where}.stats.{field_name} must be a number", errors)
        if isinstance(stats.get("repetitions"), int):
            _check(
                stats["repetitions"] >= 1, f"{where}.stats.repetitions must be >= 1", errors
            )
    return errors
