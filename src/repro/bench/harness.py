"""Measurement core: warmup + repetition timing.

Every scenario builds a fresh case per run (setup cost stays outside the
timed region), runs ``warmup`` untimed iterations to settle allocator
and cache state, then records ``repetitions`` wall-clock samples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.obs.walltime import read_peak_rss_kb


def peak_rss_kb() -> int:
    """Process-wide peak resident set size in KiB (``ru_maxrss``).

    Delegates to :func:`repro.obs.walltime.read_peak_rss_kb` — the one
    sanctioned host-probe module (OBS003). This is a high-water mark
    over the whole process lifetime: it never decreases, so a reading
    taken after a case's runs subsumes every earlier case's peak.
    Per-case readings in one bench process are an upper bound, not an
    isolated measurement — cross-*process* readings (separate bench
    invocations) are the comparable ones.
    """
    return read_peak_rss_kb()


@dataclass(frozen=True)
class Stats:
    """Summary of one timed case's samples.

    On a shared runner, noise is one-sided: interference only ever adds
    time, so the *minimum* is the best estimate of the code's true cost
    and the mean/stdev are contaminated by whatever else the host was
    doing. ``best_s`` (min-of-N) is therefore the estimator derived
    speedups compare, and ``runnerup_s`` — the second-smallest sample —
    gauges how reproducible that minimum is: a small best-to-runnerup
    gap means the floor was reached repeatedly and can be trusted.

    ``stdev_s``/``cv`` (sample standard deviation and coefficient of
    variation over all samples) are still recorded as the dispersion of
    the whole sample set.
    """

    warmup: int
    repetitions: int
    best_s: float
    runnerup_s: float
    mean_s: float
    median_s: float
    stdev_s: float
    cv: float

    def as_dict(self) -> dict:
        return {
            "warmup": self.warmup,
            "repetitions": self.repetitions,
            "best_s": self.best_s,
            "runnerup_s": self.runnerup_s,
            "mean_s": self.mean_s,
            "median_s": self.median_s,
            "stdev_s": self.stdev_s,
            "cv": self.cv,
        }


def time_repeated(
    make_case: Callable[[], Callable[[], object]],
    warmup: int,
    repetitions: int,
) -> list[float]:
    """Timed samples of ``make_case()()``, one fresh case per run.

    ``make_case`` is invoked once per run (warmup included) and its cost
    is excluded; only the returned thunk is timed. Cases that must reuse
    expensive shared state (a populated study) close over it.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    samples: list[float] = []
    for index in range(warmup + repetitions):
        case = make_case()
        started = time.perf_counter()
        case()
        elapsed = time.perf_counter() - started
        if index >= warmup:
            samples.append(elapsed)
    return samples


def time_interleaved(
    make_cases: dict[str, Callable[[], Callable[[], object]]],
    warmup: int,
    repetitions: int,
) -> dict[str, list[float]]:
    """Like :func:`time_repeated`, but round-robin across several cases.

    A/B comparisons timed back-to-back are biased by whatever drifts
    monotonically over the process lifetime (CPU frequency ramp, page
    cache, allocator arenas): the case timed first pays the cold costs.
    Interleaving — round 1 times every case once, then round 2, ... —
    spreads that drift evenly, so derived ratios compare like with like.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    samples: dict[str, list[float]] = {name: [] for name in make_cases}
    for index in range(warmup + repetitions):
        for name, make_case in make_cases.items():
            case = make_case()
            started = time.perf_counter()
            case()
            elapsed = time.perf_counter() - started
            if index >= warmup:
                samples[name].append(elapsed)
    return samples


def summarize(samples: list[float], warmup: int) -> Stats:
    """Collapse raw samples into the stats block the JSON schema carries."""
    if not samples:
        raise ValueError("no samples to summarize")
    ordered = sorted(samples)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        median = ordered[middle]
    else:
        median = (ordered[middle - 1] + ordered[middle]) / 2.0
    mean = sum(samples) / len(samples)
    if len(samples) > 1:
        variance = sum((value - mean) ** 2 for value in samples) / (len(samples) - 1)
        stdev = variance ** 0.5
    else:
        stdev = 0.0
    return Stats(
        warmup=warmup,
        repetitions=len(samples),
        best_s=ordered[0],
        runnerup_s=ordered[1] if len(ordered) > 1 else ordered[0],
        mean_s=mean,
        median_s=median,
        stdev_s=stdev,
        cv=stdev / mean if mean > 0 else 0.0,
    )
