"""The perf harness: ``python -m repro.bench``.

Times the simulator's canonical hot paths — the tick loop at several
population scales, attribution-sweep latency across the three classifier
tiers, and the full ``run_standard`` pipeline — with warmup runs and
repetitions, and writes one schema-versioned ``BENCH_<NAME>.json`` per
scenario (see :mod:`repro.bench.schema` for the envelope and README for
the field reference).

This package is the one subtree allowed to read the wall clock: timings
are reporting outputs that never feed back into simulation state, so
``repro.lint``'s DET003 rule is waived for ``repro.bench`` in
:mod:`repro.lint.waivers` (and only there).
"""

from repro.bench.harness import Stats, summarize, time_repeated
from repro.bench.schema import SCHEMA_VERSION, validate_payload
from repro.bench.scenarios import SCENARIOS, bench_file_name

__all__ = [
    "SCENARIOS",
    "SCHEMA_VERSION",
    "Stats",
    "bench_file_name",
    "summarize",
    "time_repeated",
    "validate_payload",
]
