"""The organic activity driver.

Advances the organic population one tick at a time:

* **Reciprocity**: users check notifications (per-user hourly rate); for
  each inbound like/follow they may reciprocate per the
  :class:`~repro.behavior.reciprocity.ReciprocityModel`. This is the
  channel reciprocity-abuse AASs exploit.
* **Background traffic**: users like and follow organically (media of
  accounts they follow, plus popularity-weighted discovery). This is the
  legitimate activity blended into mixed ASNs that intervention
  thresholds must not misclassify (Section 6.2's false-positive bound).

Organic users never discover zero-follower accounts on their own, so
inactive honeypot accounts receive no actions — the attribution baseline
the paper validated (Section 4.1.3) holds by construction, and tests
verify it.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.behavior.population import OrganicPopulation
from repro.behavior.profiles import OrganicProfile, account_attractiveness
from repro.behavior.reciprocity import ReciprocityModel
from repro.platform.auth import Session
from repro.platform.errors import PlatformError
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionType, ApiSurface
from repro.util.timeutils import HOURS_PER_DAY


@dataclass
class OrganicActivityParams:
    """Driver knobs."""

    #: fraction of background actions that are likes (rest are follows)
    background_like_share: float = 0.8
    #: minimum in-degree for an account to be organically "discoverable"
    discovery_min_followers: int = 1

    def __post_init__(self):
        if not 0.0 <= self.background_like_share <= 1.0:
            raise ValueError("background_like_share must be a probability")


class OrganicActivityDriver:
    """Runs organic reciprocity and background traffic each tick."""

    def __init__(
        self,
        platform: InstagramPlatform,
        population: OrganicPopulation,
        model: ReciprocityModel,
        rng: np.random.Generator,
        params: OrganicActivityParams | None = None,
    ):
        self.platform = platform
        self.population = population
        self.model = model
        self.params = params if params is not None else OrganicActivityParams()
        self._rng = rng
        self._sessions: dict[AccountId, Session] = {}
        self._last_login_day: dict[AccountId, int] = {}
        # Precomputed background-actor sampling distribution.
        self._actor_ids = list(population.account_ids)
        rates = np.array(
            [population.profiles[a].background_rate for a in self._actor_ids], dtype=float
        )
        self._hourly_rate_total = float(rates.sum()) / HOURS_PER_DAY
        self._actor_cumulative = np.cumsum(rates)
        if self._actor_cumulative[-1] > 0:
            self._actor_cumulative = self._actor_cumulative / self._actor_cumulative[-1]
        # scalar sampling runs on bisect over a plain list: element-for-
        # element identical to np.searchsorted(side='left') on the same
        # floats (test-pinned), minus the per-call numpy dispatch cost
        self._actor_cumulative_list: list[float] = self._actor_cumulative.tolist()
        # Observability counters.
        self.reciprocal_actions = 0
        self.background_actions = 0
        self.blocked_actions = 0
        self.failed_actions = 0

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------

    def _session_for(self, account_id: AccountId) -> Session:
        # Users re-login (from their home network) at most daily; this
        # keeps their own logins dominant over the occasional AAS login,
        # which the geolocation rule relies on (paper footnote 3).
        day = self.platform.clock.day
        session = self._sessions.get(account_id)
        if session is not None and self._last_login_day.get(account_id) == day:
            try:
                self.platform.auth.validate(session)
                return session
            except PlatformError:
                pass
        profile = self.population.profiles[account_id]
        account = self.platform.get_account(account_id)
        session = self.platform.login(account.username, profile.password, profile.endpoint)
        self._sessions[account_id] = session
        self._last_login_day[account_id] = day
        return session

    def _perform(self, action, *args, **kwargs) -> bool:
        """Execute a platform call, tallying blocks/failures."""
        from repro.platform.errors import ActionBlockedError, InvalidActionError

        try:
            action(*args, **kwargs)
            return True
        except ActionBlockedError:
            self.blocked_actions += 1
            return False
        except (InvalidActionError, PlatformError):
            self.failed_actions += 1
            return False

    # ------------------------------------------------------------------
    # Reciprocity
    # ------------------------------------------------------------------

    def _process_inbox(self, account_id: AccountId) -> None:
        profile = self.population.profiles[account_id]
        notifications = self.platform.notifications.drain(account_id)
        for notification in notifications:
            actor = notification.actor
            if actor == account_id or not self.platform.account_exists(actor):
                continue
            attractiveness = account_attractiveness(self.platform, actor)
            intents = self.model.respond(
                notification.action_type,
                attractiveness,
                profile.propensity,
                profile.follow_on_like_affinity,
            )
            for intent in intents:
                self._execute_response(account_id, actor, intent.response_type, profile)

    def _execute_response(
        self,
        responder: AccountId,
        actor: AccountId,
        response_type: ActionType,
        profile: OrganicProfile,
    ) -> None:
        session = self._session_for(responder)
        if response_type is ActionType.FOLLOW:
            if self.platform.graph.is_following(responder, actor):
                return
            if self._perform(
                self.platform.follow, session, actor, profile.endpoint, ApiSurface.PRIVATE_MOBILE
            ):
                self.reciprocal_actions += 1
        elif response_type is ActionType.LIKE:
            media = [
                m
                for m in self.platform.media.media_of(actor)
                if not self.platform.media.has_liked(m.media_id, responder)
            ]
            if not media:
                return
            choice = media[int(self._rng.integers(0, len(media)))]
            if self._perform(
                self.platform.like,
                session,
                choice.media_id,
                profile.endpoint,
                ApiSurface.PRIVATE_MOBILE,
            ):
                self.reciprocal_actions += 1

    def _run_reciprocity(self) -> None:
        for account_id in self.platform.notifications.recipients_with_pending():
            profile = self.population.profiles.get(account_id)
            if profile is None:
                continue  # not an organic account (honeypot/customer drivers handle their own)
            if self._rng.random() < profile.check_rate:
                self._process_inbox(account_id)

    # ------------------------------------------------------------------
    # Background traffic
    # ------------------------------------------------------------------

    def _pick_background_target(self, actor: AccountId) -> AccountId | None:
        """An account the actor would plausibly interact with.

        Background engagement stays within the organic population: the
        paper's honeypots measured a 0.0% like-response to follows, i.e.
        users do not spontaneously engage with the fresh, unknown
        accounts they just followed back.
        """
        # following_view is sorted by contract: the follow set's
        # hash-table iteration order is a function of its mutation
        # history, which a snapshot/restore cycle (repro.fleet) does not
        # preserve — the RNG-indexed pick below must see a reproducible
        # ordering either way. The columnar graph serves the view from
        # its cached sorted array (no copy); the reference graph sorts a
        # fresh copy, matching the old frozenset+sorted() behaviour.
        profiles = self.population.profiles
        following = [
            account
            for account in self.platform.graph.following_view(actor)
            if account in profiles
        ]
        if following and self._rng.random() < 0.7:
            return following[int(self._rng.integers(0, len(following)))]
        # Discovery: sample organically popular accounts.
        for _ in range(4):
            draw = self._rng.random()
            index = bisect_left(self._actor_cumulative_list, draw)
            index = min(index, len(self._actor_ids) - 1)
            candidate = self._actor_ids[index]
            if candidate == actor:
                continue
            if self.platform.follower_count(candidate) >= self.params.discovery_min_followers:
                return candidate
        return None

    def _run_background(self) -> None:
        event_count = int(self._rng.poisson(self._hourly_rate_total))
        cumulative = self._actor_cumulative_list
        last = len(self._actor_ids) - 1
        for _ in range(event_count):
            draw = self._rng.random()
            index = min(bisect_left(cumulative, draw), last)
            actor = self._actor_ids[index]
            if not self.platform.account_exists(actor):
                continue
            target = self._pick_background_target(actor)
            if target is None or not self.platform.account_exists(target):
                continue
            profile = self.population.profiles[actor]
            session = self._session_for(actor)
            if self._rng.random() < self.params.background_like_share:
                media = [
                    m
                    for m in self.platform.media.media_of(target)
                    if not self.platform.media.has_liked(m.media_id, actor)
                ]
                if not media:
                    continue
                choice = media[int(self._rng.integers(0, len(media)))]
                if self._perform(
                    self.platform.like,
                    session,
                    choice.media_id,
                    profile.endpoint,
                    ApiSurface.PRIVATE_MOBILE,
                ):
                    self.background_actions += 1
            else:
                if self.platform.graph.is_following(actor, target):
                    continue
                if self._perform(
                    self.platform.follow,
                    session,
                    target,
                    profile.endpoint,
                    ApiSurface.PRIVATE_MOBILE,
                ):
                    self.background_actions += 1

    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Run one simulated hour of organic behaviour."""
        self._run_reciprocity()
        self._run_background()

    def next_wake_tick(self, now: int) -> int:
        """Always due: background traffic is a Poisson draw per tick, so
        skipping would shift the seeded draw sequence."""
        return now + 1
