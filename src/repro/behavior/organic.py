"""The organic activity driver.

Advances the organic population one tick at a time:

* **Reciprocity**: users check notifications (per-user hourly rate); for
  each inbound like/follow they may reciprocate per the
  :class:`~repro.behavior.reciprocity.ReciprocityModel`. This is the
  channel reciprocity-abuse AASs exploit.
* **Background traffic**: users like and follow organically (media of
  accounts they follow, plus popularity-weighted discovery). This is the
  legitimate activity blended into mixed ASNs that intervention
  thresholds must not misclassify (Section 6.2's false-positive bound).

Organic users never discover zero-follower accounts on their own, so
inactive honeypot accounts receive no actions — the attribution baseline
the paper validated (Section 4.1.3) holds by construction, and tests
verify it.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.behavior.population import OrganicPopulation
from repro.behavior.profiles import OrganicProfile, account_attractiveness
from repro.behavior.reciprocity import ReciprocityModel
from repro.platform.auth import Session
from repro.platform.errors import (
    ActionBlockedError,
    InvalidActionError,
    PlatformError,
)
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionType, ApiSurface
from repro.util.timeutils import HOURS_PER_DAY


@dataclass
class OrganicActivityParams:
    """Driver knobs."""

    #: fraction of background actions that are likes (rest are follows)
    background_like_share: float = 0.8
    #: minimum in-degree for an account to be organically "discoverable"
    discovery_min_followers: int = 1

    def __post_init__(self):
        if not 0.0 <= self.background_like_share <= 1.0:
            raise ValueError("background_like_share must be a probability")


class OrganicActivityDriver:
    """Runs organic reciprocity and background traffic each tick."""

    def __init__(
        self,
        platform: InstagramPlatform,
        population: OrganicPopulation,
        model: ReciprocityModel,
        rng: np.random.Generator,
        params: OrganicActivityParams | None = None,
    ):
        self.platform = platform
        self.population = population
        self.model = model
        self.params = params if params is not None else OrganicActivityParams()
        self._rng = rng
        #: fast-path switch for the fused unliked-media pick
        #: (:meth:`~repro.platform.mediastore.MediaStore.unliked_of`); the
        #: naive branch keeps the per-media has_liked listcomp as the
        #: oracle. Neither branch draws RNG, so the pick draw that follows
        #: is identical either way.
        self._fast = platform.fast_path
        #: fast-path memo of the profile-filtered following list, keyed by
        #: actor and validated by *identity* of the graph's following_view
        #: array: the columnar graph drops the cached view object on any
        #: mutation of that actor's out-row and builds a fresh one, so
        #: ``entry_view is view`` proves the filtered list is current (the
        #: memo holds a reference to the old view, so its id cannot be
        #: recycled). The reference graph returns a fresh tuple per call,
        #: which would never match — the memo is fast-path only.
        self._following_memo: dict[AccountId, tuple[object, list[AccountId]]] = {}
        #: fast-path memo of ``account_attractiveness``, validated by
        #: identity of the media store's cached ``media_of`` list (the
        #: fast store returns the same object until the owner's media
        #: change) plus the following count. The third input, profile
        #: completeness, is set once at account creation and never
        #: mutated afterwards, so those two cover every way the score can
        #: move.
        self._attr_memo: dict[AccountId, tuple[object, int, float]] = {}
        #: per-account (session, last-login-day) — one dict probe on the
        #: per-action hot path instead of two parallel dicts
        self._sessions: dict[AccountId, tuple[Session, int]] = {}
        #: flat ``account -> check_rate`` probe for the reciprocity scan:
        #: one dict get answers both "is this an organic account" and
        #: "at what rate" (profiles are fixed at construction, so the
        #: projection can never go stale)
        self._check_rates: dict[AccountId, float] = {
            account_id: profile.check_rate
            for account_id, profile in population.profiles.items()
        }
        # Precomputed background-actor sampling distribution.
        self._actor_ids = list(population.account_ids)
        rates = np.array(
            [population.profiles[a].background_rate for a in self._actor_ids], dtype=float
        )
        self._hourly_rate_total = float(rates.sum()) / HOURS_PER_DAY
        self._actor_cumulative = np.cumsum(rates)
        if self._actor_cumulative[-1] > 0:
            self._actor_cumulative = self._actor_cumulative / self._actor_cumulative[-1]
        # scalar sampling runs on bisect over a plain list: element-for-
        # element identical to np.searchsorted(side='left') on the same
        # floats (test-pinned), minus the per-call numpy dispatch cost
        self._actor_cumulative_list: list[float] = self._actor_cumulative.tolist()
        # Observability counters.
        self.reciprocal_actions = 0
        self.background_actions = 0
        self.blocked_actions = 0
        self.failed_actions = 0

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------

    def _session_for(self, account_id: AccountId) -> Session:
        # Users re-login (from their home network) at most daily; this
        # keeps their own logins dominant over the occasional AAS login,
        # which the geolocation rule relies on (paper footnote 3).
        day = self.platform.clock.day
        entry = self._sessions.get(account_id)
        if entry is not None and entry[1] == day:
            session = entry[0]
            try:
                self.platform.auth.validate(session)
                return session
            except PlatformError:
                pass
        profile = self.population.profiles[account_id]
        account = self.platform.get_account(account_id)
        session = self.platform.login(account.username, profile.password, profile.endpoint)
        self._sessions[account_id] = (session, day)
        return session

    def _perform(self, action, *args, **kwargs) -> bool:
        """Execute a platform call, tallying blocks/failures."""
        try:
            action(*args, **kwargs)
            return True
        except ActionBlockedError:
            self.blocked_actions += 1
            return False
        except (InvalidActionError, PlatformError):
            self.failed_actions += 1
            return False

    # ------------------------------------------------------------------
    # Reciprocity
    # ------------------------------------------------------------------

    def _attractiveness(self, actor: AccountId) -> float:
        """Fast-path ``account_attractiveness`` behind the identity memo."""
        platform = self.platform
        media = platform.media.media_of(actor)
        following = platform.following_count(actor)
        entry = self._attr_memo.get(actor)
        if entry is not None and entry[0] is media and entry[1] == following:
            return entry[2]
        value = account_attractiveness(platform, actor)
        self._attr_memo[actor] = (media, following, value)
        return value

    def _process_inbox(self, account_id: AccountId) -> None:
        profile = self.population.profiles[account_id]
        notifications = self.platform.notifications.drain(account_id)
        platform = self.platform
        account_exists = platform.account_exists
        respond = self.model.respond
        propensity = profile.propensity
        affinity = profile.follow_on_like_affinity
        fast = self._fast
        attractiveness_of = self._attractiveness
        for notification in notifications:
            actor = notification.actor
            if actor == account_id or not account_exists(actor):
                continue
            if fast:
                attractiveness = attractiveness_of(actor)
            else:
                attractiveness = account_attractiveness(platform, actor)
            intents = respond(
                notification.action_type, attractiveness, propensity, affinity
            )
            for intent in intents:
                self._execute_response(account_id, actor, intent.response_type, profile)

    def _execute_response(
        self,
        responder: AccountId,
        actor: AccountId,
        response_type: ActionType,
        profile: OrganicProfile,
    ) -> None:
        session = self._session_for(responder)
        if response_type is ActionType.FOLLOW:
            if self.platform.graph.is_following(responder, actor):
                return
            if self._perform(
                self.platform.follow, session, actor, profile.endpoint, ApiSurface.PRIVATE_MOBILE
            ):
                self.reciprocal_actions += 1
        elif response_type is ActionType.LIKE:
            if self._fast:
                media = self.platform.media.unliked_of(actor, responder)
            else:
                media = [
                    m
                    for m in self.platform.media.media_of(actor)
                    if not self.platform.media.has_liked(m.media_id, responder)
                ]
            if not media:
                return
            choice = media[int(self._rng.integers(0, len(media)))]
            if self._perform(
                self.platform.like,
                session,
                choice.media_id,
                profile.endpoint,
                ApiSurface.PRIVATE_MOBILE,
            ):
                self.reciprocal_actions += 1

    def _run_reciprocity(self) -> None:
        rates_get = self._check_rates.get
        random = self._rng.random
        process = self._process_inbox
        for account_id in self.platform.notifications.recipients_with_pending():
            rate = rates_get(account_id)
            if rate is None:
                continue  # not an organic account (honeypot/customer drivers handle their own)
            if random() < rate:
                process(account_id)

    # ------------------------------------------------------------------
    # Background traffic
    # ------------------------------------------------------------------

    def _run_background(self) -> None:
        event_count = int(self._rng.poisson(self._hourly_rate_total))
        cumulative = self._actor_cumulative_list
        actor_ids = self._actor_ids
        last = len(actor_ids) - 1
        platform = self.platform
        account_exists = platform.account_exists
        profiles = self.population.profiles
        random = self._rng.random
        integers = self._rng.integers
        session_for = self._session_for
        perform = self._perform
        like_share = self.params.background_like_share
        fast = self._fast
        unliked_of = platform.media.unliked_of
        following_view = platform.graph.following_view
        following_memo = self._following_memo
        follower_count = platform.follower_count
        min_followers = self.params.discovery_min_followers
        for _ in range(event_count):
            draw = random()
            index = min(bisect_left(cumulative, draw), last)
            actor = actor_ids[index]
            # Actors come from the population and targets from the
            # profile-filtered following list / population discovery, and
            # population accounts are never deleted (only honeypot
            # accounts are, and they live outside ``profiles``), so both
            # existence probes are vacuously true reads — the fast path
            # skips them; the naive branch keeps them as the oracle.
            if not fast and not account_exists(actor):
                continue
            # Target pick: an account the actor would plausibly interact
            # with. Background engagement stays within the organic
            # population: the paper's honeypots measured a 0.0%
            # like-response to follows, i.e. users do not spontaneously
            # engage with the fresh, unknown accounts they just followed
            # back. (Folded into the event loop so its locals hoist once
            # per tick rather than once per event.)
            #
            # following_view is sorted by contract: the follow set's
            # hash-table iteration order is a function of its mutation
            # history, which a snapshot/restore cycle (repro.fleet) does
            # not preserve — the RNG-indexed pick below must see a
            # reproducible ordering either way. The columnar graph serves
            # the view from its cached sorted array (no copy); the
            # reference graph sorts a fresh copy, matching the old
            # frozenset+sorted() behaviour.
            view = following_view(actor)
            if fast:
                entry = following_memo.get(actor)
                if entry is not None and entry[0] is view:
                    following = entry[1]
                else:
                    following = [account for account in view if account in profiles]
                    following_memo[actor] = (view, following)
            else:
                following = [account for account in view if account in profiles]
            target = None
            if following and random() < 0.7:
                target = following[int(integers(0, len(following)))]
            else:
                # Discovery: sample organically popular accounts.
                for _attempt in range(4):
                    pick = random()
                    candidate = actor_ids[min(bisect_left(cumulative, pick), last)]
                    if candidate == actor:
                        continue
                    if follower_count(candidate) >= min_followers:
                        target = candidate
                        break
            if target is None or (not fast and not account_exists(target)):
                continue
            profile = profiles[actor]
            session = session_for(actor)
            if random() < like_share:
                if fast:
                    media = unliked_of(target, actor)
                else:
                    media = [
                        m
                        for m in platform.media.media_of(target)
                        if not platform.media.has_liked(m.media_id, actor)
                    ]
                if not media:
                    continue
                choice = media[int(integers(0, len(media)))]
                if perform(
                    platform.like,
                    session,
                    choice.media_id,
                    profile.endpoint,
                    ApiSurface.PRIVATE_MOBILE,
                ):
                    self.background_actions += 1
            else:
                if platform.graph.is_following(actor, target):
                    continue
                if perform(
                    platform.follow,
                    session,
                    target,
                    profile.endpoint,
                    ApiSurface.PRIVATE_MOBILE,
                ):
                    self.background_actions += 1

    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Run one simulated hour of organic behaviour."""
        self._run_reciprocity()
        self._run_background()

    def next_wake_tick(self, now: int) -> int:
        """Always due: background traffic is a Poisson draw per tick, so
        skipping would shift the seeded draw sequence."""
        return now + 1
