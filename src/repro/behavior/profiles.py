"""Per-user organic behaviour profiles and account attractiveness.

Two facts from the paper shape this module:

* Users are "sensitive to the differences in honeypot accounts": lived-in
  accounts draw 1.6x-2.6x the reciprocal likes of empty ones
  (Section 4.3). We summarize how credible an account looks to a human
  in :func:`account_attractiveness`.
* Reciprocation propensity varies across users, and AASs exploit it by
  targeting accounts "already inclined to follow other users" with few
  followers of their own (Section 5.3). Each organic user therefore
  carries its own propensity multiplier, derived from its graph position
  by :func:`repro.behavior.calibration.propensity_multiplier`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.client import ClientEndpoint
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId


@dataclass
class OrganicProfile:
    """Behavioural state for one organic account."""

    account_id: AccountId
    country: str
    endpoint: ClientEndpoint
    password: str
    #: probability of checking notifications in any given hour
    check_rate: float
    #: personal reciprocation multiplier (graph-position derived)
    propensity: float
    #: background organic actions per day (likes/follows to followed/trending accounts)
    background_rate: float
    #: hidden trait: multiplier on the follow-response-to-a-like rate. A
    #: small minority of users carries a large value; curated AAS target
    #: lists biased toward them reproduce the Instalex anomaly (Table 5).
    follow_on_like_affinity: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.check_rate <= 1.0:
            raise ValueError("check_rate must be a probability")
        if self.propensity < 0:
            raise ValueError("propensity must be non-negative")
        if self.background_rate < 0:
            raise ValueError("background_rate must be non-negative")


def account_attractiveness(platform: InstagramPlatform, account_id: AccountId) -> float:
    """Score in [0, 1]: how credible/engaging an account looks to a human.

    Combines profile completeness (picture/name/bio), having real content,
    and following other accounts. An "empty" honeypot (photos only) lands
    near 0.25; a "lived-in" honeypot (full profile, follows high-profile
    accounts) lands near 1.0.
    """
    account = platform.get_account(account_id)
    media_count = len(platform.media.media_of(account_id))
    has_content = 1.0 if media_count >= 10 else media_count / 10.0
    following = platform.following_count(account_id)
    follows_others = 1.0 if following >= 10 else following / 10.0
    completeness = account.profile.completeness
    return 0.25 * has_content + 0.35 * completeness + 0.40 * follows_others
