"""Organic-user behaviour models.

Reciprocity-abuse AASs "fundamentally rely upon natural social behavior
in online networks" (Section 4.3). This package is the synthetic stand-in
for Instagram's organic population:

* :mod:`repro.behavior.degree` — heavy-tailed in/out-degree sampling for
  the pre-existing follower graph (the Figures 3/4 baselines).
* :mod:`repro.behavior.population` — builds organic accounts on the
  platform, wires the initial graph, assigns countries/endpoints.
* :mod:`repro.behavior.reciprocity` — the calibrated probability model
  for responding to inbound likes/follows (paper Table 5).
* :mod:`repro.behavior.organic` — the per-tick driver that makes organic
  users check notifications, reciprocate, and generate benign background
  traffic (the legitimate activity blended into mixed ASNs).
* :mod:`repro.behavior.calibration` — fits base response rates so that a
  *targeted* pool reproduces the paper's measured reciprocation table.

Calibration constants cite the paper value they encode; see DESIGN.md
Section 4 for the substitution rationale.
"""

from repro.behavior.degree import DegreeDistribution
from repro.behavior.population import OrganicPopulation, PopulationConfig
from repro.behavior.profiles import OrganicProfile, account_attractiveness
from repro.behavior.reciprocity import ReciprocityModel, ReciprocityParams, ResponseIntent
from repro.behavior.organic import OrganicActivityDriver, OrganicActivityParams
from repro.behavior.calibration import calibrate_reciprocity_params, propensity_multiplier

__all__ = [
    "DegreeDistribution",
    "OrganicPopulation",
    "PopulationConfig",
    "OrganicProfile",
    "account_attractiveness",
    "ReciprocityModel",
    "ReciprocityParams",
    "ResponseIntent",
    "OrganicActivityDriver",
    "OrganicActivityParams",
    "calibrate_reciprocity_params",
    "propensity_multiplier",
]
