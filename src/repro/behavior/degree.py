"""Heavy-tailed degree sampling for the organic follower graph.

Online-social-network degree distributions are heavy tailed (Mislove et
al., IMC 2007 — reference [22] of the paper). We use a log-normal
parameterized by its *median*, which is the statistic the paper reports
for the Figure 3/4 samples, plus a shape parameter controlling tail
weight.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DegreeDistribution:
    """Log-normal degree model specified by median and log-space sigma."""

    median: float
    sigma: float = 1.0
    max_degree: int = 100_000

    def __post_init__(self):
        if self.median <= 0:
            raise ValueError("median must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.max_degree < 1:
            raise ValueError("max_degree must be at least 1")

    @property
    def mu(self) -> float:
        """Log-space location; for a log-normal, median = exp(mu)."""
        return math.log(self.median)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` integer degrees, clipped to [0, max_degree]."""
        if n < 0:
            raise ValueError("n must be non-negative")
        raw = rng.lognormal(mean=self.mu, sigma=self.sigma, size=n)
        return np.clip(np.round(raw), 0, self.max_degree).astype(int)

    def scaled(self, factor: float) -> "DegreeDistribution":
        """Return a copy with the median scaled by ``factor``.

        Scenario builders use this to shrink the paper-scale medians
        (hundreds of follows) to simulation scale while preserving shape.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return DegreeDistribution(
            median=self.median * factor,
            sigma=self.sigma,
            max_degree=max(1, int(self.max_degree * factor)),
        )


#: Paper Figure 3: the median random-Instagram account follows 465 others.
PAPER_MEDIAN_OUT_DEGREE = 465.0

#: Paper Figure 4: the median random-Instagram account has 796 followers.
#: (The sample is accounts that *received* actions, hence popularity-biased;
#: we reproduce that bias at sampling time, see analysis.target_bias.)
PAPER_MEDIAN_IN_DEGREE = 796.0
