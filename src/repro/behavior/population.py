"""Organic population synthesis.

Builds the platform's pre-existing world: organic accounts with country
homes, consumer endpoints, media, an initial heavy-tailed follower
graph, and per-user behaviour profiles. The initial graph is installed
directly into platform state (it predates the measurement window, so it
must not appear in the action log).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.behavior.calibration import propensity_multiplier
from repro.behavior.degree import DegreeDistribution
from repro.behavior.profiles import OrganicProfile
from repro.netsim.client import DeviceFingerprint
from repro.netsim.fabric import NetworkFabric
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId
from repro.util.stats import median

#: A default country mix; weights roughly follow Instagram's 2017 usage
#: and include the countries the paper's Figure 2 calls out.
DEFAULT_COUNTRY_WEIGHTS: dict[str, float] = {
    "USA": 0.22,
    "BRA": 0.10,
    "IDN": 0.13,
    "IND": 0.10,
    "RUS": 0.09,
    "TUR": 0.06,
    "GBR": 0.05,
    "DEU": 0.04,
    "MEX": 0.04,
    "OTHER": 0.17,
}


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs for organic-population synthesis."""

    size: int = 2000
    out_degree: DegreeDistribution = field(default_factory=lambda: DegreeDistribution(median=40.0, sigma=1.0))
    #: log-space sigma of the popularity weights driving in-degree skew
    popularity_sigma: float = 1.3
    country_weights: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_COUNTRY_WEIGHTS))
    media_per_account: tuple[int, int] = (5, 30)
    #: probability per hour that a user checks notifications
    check_rate: tuple[float, float] = (0.05, 0.25)
    #: organic background actions per day per user
    background_rate: tuple[float, float] = (0.5, 6.0)
    #: fraction of users with a strong follow-on-like affinity, and its size
    affinity_fraction: float = 0.08
    affinity_multiplier: float = 12.0
    #: the interest-hashtag vocabulary; each user posts under 1-3 of these
    hashtag_vocabulary: tuple[str, ...] = (
        "travel", "food", "fitness", "fashion", "art", "music",
        "photography", "nature", "pets", "gaming", "beauty", "sports",
    )

    def __post_init__(self):
        if self.size <= 1:
            raise ValueError("population needs at least two accounts")
        if not self.country_weights:
            raise ValueError("country_weights must be non-empty")
        if abs(sum(self.country_weights.values()) - 1.0) > 1e-6:
            raise ValueError("country weights must sum to 1")
        if not 0.0 <= self.affinity_fraction <= 1.0:
            raise ValueError("affinity_fraction must be a probability")


class OrganicPopulation:
    """The synthesized organic user base and its behaviour profiles."""

    def __init__(self, platform: InstagramPlatform, profiles: dict[AccountId, OrganicProfile]):
        self.platform = platform
        self.profiles = profiles
        self.account_ids = sorted(profiles)
        out_degrees = [platform.following_count(a) for a in self.account_ids]
        in_degrees = [platform.follower_count(a) for a in self.account_ids]
        self.median_out_degree = median(out_degrees) if out_degrees else 0.0
        self.median_in_degree = median(in_degrees) if in_degrees else 0.0

    def __len__(self) -> int:
        return len(self.account_ids)

    def __contains__(self, account_id: AccountId) -> bool:
        return account_id in self.profiles

    def profile(self, account_id: AccountId) -> OrganicProfile:
        return self.profiles[account_id]

    def sample_accounts(self, rng: np.random.Generator, n: int) -> list[AccountId]:
        """Uniform sample without replacement."""
        if n > len(self.account_ids):
            raise ValueError("sample larger than population")
        picks = rng.choice(len(self.account_ids), size=n, replace=False)
        return [self.account_ids[int(i)] for i in picks]

    @classmethod
    def generate(
        cls,
        platform: InstagramPlatform,
        fabric: NetworkFabric,
        rng: np.random.Generator,
        config: PopulationConfig,
    ) -> "OrganicPopulation":
        """Create accounts, media, the initial graph, and profiles."""
        countries = list(config.country_weights)
        weights = np.array([config.country_weights[c] for c in countries], dtype=float)
        weights = weights / weights.sum()
        for country in countries:
            fabric.ensure_country(country)

        account_ids: list[AccountId] = []
        profile_map: dict[AccountId, OrganicProfile] = {}
        country_picks = rng.choice(len(countries), size=config.size, p=weights)
        lo_media, hi_media = config.media_per_account
        for index in range(config.size):
            country = countries[int(country_picks[index])]
            username = f"user_{index:07d}"
            password = f"pw_{index:07d}"
            account = platform.create_account(username, password)
            account.profile.display_name = f"User {index}"
            account.profile.biography = "organic user"
            account.profile.has_profile_picture = True
            fingerprint = DeviceFingerprint("android" if rng.random() < 0.7 else "ios")
            endpoint = fabric.home_endpoint(country, fingerprint)
            platform.auth.login(account.account_id, password, endpoint, platform.clock.now)
            media_count = int(rng.integers(lo_media, hi_media + 1))
            vocabulary = config.hashtag_vocabulary
            interest_count = int(rng.integers(1, min(3, len(vocabulary)) + 1))
            picks = rng.choice(len(vocabulary), size=interest_count, replace=False)
            interests = tuple(vocabulary[int(i)] for i in picks)
            for _ in range(media_count):
                tag = interests[int(rng.integers(0, len(interests)))]
                platform.media.create(
                    account.account_id, platform.clock.now, hashtags=(tag,)
                )
            account_ids.append(account.account_id)
            profile_map[account.account_id] = OrganicProfile(
                account_id=account.account_id,
                country=country,
                endpoint=endpoint,
                password=password,
                check_rate=float(rng.uniform(*config.check_rate)),
                propensity=1.0,  # filled in after the graph is wired
                background_rate=float(rng.uniform(*config.background_rate)),
                follow_on_like_affinity=(
                    config.affinity_multiplier
                    if rng.random() < config.affinity_fraction
                    else 1.0
                ),
            )

        _wire_initial_graph(platform, account_ids, rng, config)

        out_degrees = [platform.following_count(a) for a in account_ids]
        in_degrees = [platform.follower_count(a) for a in account_ids]
        median_out = max(median(out_degrees), 1.0)
        median_in = max(median(in_degrees), 1.0)
        for account_id in account_ids:
            profile_map[account_id].propensity = propensity_multiplier(
                platform.following_count(account_id),
                platform.follower_count(account_id),
                median_out,
                median_in,
            )
        return cls(platform, profile_map)


def _wire_initial_graph(
    platform: InstagramPlatform,
    account_ids: list[AccountId],
    rng: np.random.Generator,
    config: PopulationConfig,
) -> None:
    """Install the pre-existing follower graph.

    Out-degrees are drawn from the configured log-normal; edge targets
    are sampled with probability proportional to a per-account popularity
    weight (log-normal), producing a heavy-tailed in-degree distribution.
    """
    n = len(account_ids)
    out_degrees = config.out_degree.sample(rng, n)
    out_degrees = np.minimum(out_degrees, n - 1)
    popularity = rng.lognormal(mean=0.0, sigma=config.popularity_sigma, size=n)
    cumulative = np.cumsum(popularity)
    cumulative /= cumulative[-1]
    # candidate ids materialize through numpy (one vectorized take +
    # tolist per source) and the dedup/self-skip edge loop runs inside
    # the graph's bulk append — no RNG below, so the edge set is
    # identical to the old per-pick `follow` loop on either graph
    ids_arr = np.asarray(account_ids, dtype=np.int64)
    graph = platform.graph
    for i, src in enumerate(account_ids):
        degree = int(out_degrees[i])
        if degree == 0:
            continue
        # Oversample to absorb duplicates/self-picks, then trim.
        draws = rng.random(min(int(degree * 1.6) + 4, 4 * n))
        picks = np.searchsorted(cumulative, draws)
        graph.bulk_follow_new(src, ids_arr[picks].tolist(), degree)
