"""Propensity derivation and base-rate calibration.

Section 5.3: "accounts targeted by the AASs are already inclined to
follow other users, but have far fewer followers themselves and, as a
result, are presumably more open to reciprocating." We encode that as a
per-user multiplier derived from graph position, and provide a
calibration routine so that the *population* average (or any designated
target pool's average) of effective rates hits the paper's Table 5
anchors regardless of scenario scale.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.behavior.reciprocity import ReciprocityParams

#: Clip range keeps a single outlier account from dominating measured rates.
MIN_PROPENSITY = 0.2
MAX_PROPENSITY = 3.0


def propensity_multiplier(
    out_degree: int, in_degree: int, median_out: float, median_in: float
) -> float:
    """Reciprocation propensity from graph position.

    Rises with out-degree (the user already follows freely) and falls
    with in-degree (popular accounts ignore strangers). Equal to 1.0 at
    the population medians, clipped to [0.2, 3.0].
    """
    if median_out <= 0 or median_in <= 0:
        raise ValueError("medians must be positive")
    if out_degree < 0 or in_degree < 0:
        raise ValueError("degrees must be non-negative")
    out_factor = math.sqrt((out_degree + 1.0) / (median_out + 1.0))
    in_factor = math.sqrt((median_in + 1.0) / (in_degree + 1.0))
    value = out_factor * in_factor
    return min(max(value, MIN_PROPENSITY), MAX_PROPENSITY)


def mean_propensity(propensities: Iterable[float]) -> float:
    """Average propensity over a pool (e.g. an AAS target pool)."""
    values = list(propensities)
    if not values:
        raise ValueError("pool is empty")
    return sum(values) / len(values)


def calibrate_reciprocity_params(
    params: ReciprocityParams, pool_mean_propensity: float
) -> ReciprocityParams:
    """Rescale base rates so the pool's *effective* rates match ``params``.

    If the AAS target pool has mean propensity m, honeypot-measured rates
    would come out m times the configured anchors; dividing the base
    rates by m restores the paper's Table 5 values for that pool.
    """
    if pool_mean_propensity <= 0:
        raise ValueError("mean propensity must be positive")
    return params.scaled(1.0 / pool_mean_propensity)
