"""The reciprocity response model (paper Sections 3.1, 4.3, Table 5).

When an organic user checks notifications and finds an inbound action,
they may reciprocate. The paper measured the aggregate probabilities
(Table 5); this model encodes them as per-notification Bernoulli draws,
modulated by:

* the *recipient's* personal propensity (graph-position derived — the
  basis of AAS target-selection bias, Section 5.3),
* the *actor's* attractiveness (empty vs lived-in accounts — the 1.6x
  to 2.6x lived-in effect, Section 4.3),
* a per-recipient ``follow_on_like_affinity`` trait: a small minority of
  users responds to likes by following. Services that curate recipient
  lists toward such users exhibit the elevated like->follow rate the
  paper observed for Instalex and could not explain from observable
  account features.

Paper Table 5 anchor values (empty honeypot accounts):
  like   -> like    1.5%-2.1%
  like   -> follow  0.1%-0.2%   (Instalex anomaly: 1.4%)
  follow -> follow  10.3%-13.0%
  follow -> like    0.0%
Lived-in accounts: likes ~1.6x-2.6x higher, follows ~1.1x-1.25x higher.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.platform.models import ActionType

#: Attractiveness anchors: where empty/lived-in honeypots land on the
#: profiles.account_attractiveness scale.
EMPTY_ATTRACTIVENESS = 0.25
LIVED_IN_ATTRACTIVENESS = 0.95


@dataclass(frozen=True)
class ResponseIntent:
    """One reciprocal action an organic user intends to perform."""

    response_type: ActionType


@dataclass(frozen=True)
class ReciprocityParams:
    """Base per-notification response probabilities and gain factors.

    Base rates apply to a recipient with propensity 1.0 reacting to an
    *empty*-looking actor; see module docstring for the paper anchors.
    """

    like_to_like: float = 0.020
    like_to_follow: float = 0.0015
    follow_to_follow: float = 0.115
    follow_to_like: float = 0.0
    lived_in_like_gain: float = 2.0
    lived_in_follow_gain: float = 1.18

    def __post_init__(self):
        for name in ("like_to_like", "like_to_follow", "follow_to_follow", "follow_to_like"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.lived_in_like_gain < 1.0 or self.lived_in_follow_gain < 1.0:
            raise ValueError("lived-in gains must be >= 1 (lived-in never hurts)")

    def scaled(self, factor: float) -> "ReciprocityParams":
        """Scale all base rates by ``factor`` (used by calibration)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            like_to_like=min(1.0, self.like_to_like * factor),
            like_to_follow=min(1.0, self.like_to_follow * factor),
            follow_to_follow=min(1.0, self.follow_to_follow * factor),
            follow_to_like=min(1.0, self.follow_to_like * factor),
        )


class ReciprocityModel:
    """Draws reciprocal-response intents for inbound notifications."""

    def __init__(self, params: ReciprocityParams, rng: np.random.Generator):
        self.params = params
        self._rng = rng
        #: memo of :meth:`_response_items` — a pure function of its
        #: arguments (``params`` is frozen), so caching is exact. Keys
        #: repeat heavily: attractiveness saturates (profile completeness
        #: is discrete, content/following contributions cap at 10) and
        #: propensity/affinity are per-profile constants.
        self._items_memo: dict[tuple, tuple] = {}

    def _attractiveness_gain(self, attractiveness: float, full_gain: float) -> float:
        """Interpolate the lived-in gain along the attractiveness scale."""
        span = LIVED_IN_ATTRACTIVENESS - EMPTY_ATTRACTIVENESS
        position = (attractiveness - EMPTY_ATTRACTIVENESS) / span
        position = min(max(position, 0.0), 1.2)  # slightly extrapolate above anchors
        return 1.0 + (full_gain - 1.0) * position

    def response_probabilities(
        self,
        inbound_type: ActionType,
        actor_attractiveness: float,
        recipient_propensity: float,
        follow_on_like_affinity: float = 1.0,
    ) -> dict[ActionType, float]:
        """Per-response-type probabilities for a single notification."""
        p = self.params
        if inbound_type is ActionType.LIKE:
            like_gain = self._attractiveness_gain(actor_attractiveness, p.lived_in_like_gain)
            follow_gain = self._attractiveness_gain(actor_attractiveness, p.lived_in_follow_gain)
            raw = {
                ActionType.LIKE: p.like_to_like * like_gain * recipient_propensity,
                ActionType.FOLLOW: p.like_to_follow
                * follow_gain
                * recipient_propensity
                * follow_on_like_affinity,
            }
        elif inbound_type is ActionType.FOLLOW:
            follow_gain = self._attractiveness_gain(actor_attractiveness, p.lived_in_follow_gain)
            like_gain = self._attractiveness_gain(actor_attractiveness, p.lived_in_like_gain)
            raw = {
                ActionType.FOLLOW: p.follow_to_follow * follow_gain * recipient_propensity,
                ActionType.LIKE: p.follow_to_like * like_gain * recipient_propensity,
            }
        elif inbound_type is ActionType.COMMENT:
            # Comments behave like weak likes for reciprocation purposes.
            like_gain = self._attractiveness_gain(actor_attractiveness, p.lived_in_like_gain)
            raw = {ActionType.LIKE: 0.5 * p.like_to_like * like_gain * recipient_propensity}
        else:
            raw = {}
        return {k: min(v, 1.0) for k, v in raw.items() if v > 0.0}

    def _response_items(
        self,
        inbound_type: ActionType,
        actor_attractiveness: float,
        recipient_propensity: float,
        follow_on_like_affinity: float,
    ) -> tuple[tuple[ActionType, float], ...]:
        """:meth:`response_probabilities` as a memoized item tuple.

        Same values in the same (insertion) order the dict would yield —
        the order :meth:`respond` draws in, so the memo cannot perturb
        the RNG sequence.
        """
        # keyed on the dense column code rather than the enum member:
        # tuple hashing then costs three float hashes and an int hash
        # instead of entering Enum.__hash__ (a Python-level call) per probe
        key = (
            inbound_type.col_code,
            actor_attractiveness,
            recipient_propensity,
            follow_on_like_affinity,
        )
        items = self._items_memo.get(key)
        if items is None:
            items = self._items_memo[key] = tuple(
                self.response_probabilities(
                    inbound_type,
                    actor_attractiveness,
                    recipient_propensity,
                    follow_on_like_affinity,
                ).items()
            )
        return items

    def respond(
        self,
        inbound_type: ActionType,
        actor_attractiveness: float,
        recipient_propensity: float,
        follow_on_like_affinity: float = 1.0,
    ) -> list[ResponseIntent]:
        """Sample the recipient's reciprocal actions for one notification."""
        items = self._response_items(
            inbound_type, actor_attractiveness, recipient_propensity, follow_on_like_affinity
        )
        random = self._rng.random
        # listcomp draws left-to-right over the memoized items — the same
        # one-draw-per-candidate order as an explicit loop
        return [
            ResponseIntent(response_type=response_type)
            for response_type, probability in items
            if random() < probability
        ]
