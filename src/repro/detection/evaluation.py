"""Classifier quality evaluation against simulation ground truth.

The paper could only state that its classification is "a lower bound"
on AAS activity — completeness against the real services was
unverifiable. The simulation knows the truth (every action's endpoint
fingerprint identifies the automation stack), so this module computes
the precision/recall the paper could not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.detection.classifier import AASClassifier
from repro.platform.models import ActionRecord


@dataclass(frozen=True)
class ClassificationReport:
    """Action-level confusion counts for one service label."""

    service: str
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def ground_truth_label(record: ActionRecord, variant_to_service: dict[str, str]) -> str | None:
    """The simulation's own label for a record (None = organic)."""
    return variant_to_service.get(record.endpoint.fingerprint.variant)


def evaluate_classifier(
    classifier: AASClassifier,
    records: Iterable[ActionRecord],
    variant_to_service: dict[str, str],
) -> dict[str, ClassificationReport]:
    """Compare classifier attributions with ground-truth stack variants.

    ``variant_to_service`` maps automation-stack variants (e.g.
    ``"aas-insta-parent"``) to the *reported* service label (e.g.
    ``"Insta*"``) — the same merging the classifier is expected to do.
    Returns one report per reported service, plus an ``"(organic)"``
    entry whose false positives are benign actions wrongly attributed.
    """
    counts: dict[str, dict[str, int]] = {}

    def bucket(service: str) -> dict[str, int]:
        return counts.setdefault(service, {"tp": 0, "fp": 0, "fn": 0})

    for record in records:
        truth = ground_truth_label(record, variant_to_service)
        predicted = classifier.attribute(record)
        if truth is None and predicted is None:
            continue
        if truth == predicted:
            bucket(truth)["tp"] += 1
        else:
            if predicted is not None:
                bucket(predicted)["fp"] += 1
            if truth is not None:
                bucket(truth)["fn"] += 1
            if truth is None:
                bucket("(organic)")["fn"] += 0  # ensure bucket exists
                bucket("(organic)")["fp"] += 1
    return {
        service: ClassificationReport(
            service=service,
            true_positives=c["tp"],
            false_positives=c["fp"],
            false_negatives=c["fn"],
        )
        for service, c in counts.items()
    }


def default_variant_map(service_names: Iterable[str]) -> dict[str, str]:
    """The standard variant→label mapping for the built-in services.

    Instalex/Instazood share the parent stack and are reported merged as
    Insta*; every other service maps to itself.
    """
    mapping: dict[str, str] = {}
    for name in service_names:
        if name in ("Instalex", "Instazood"):
            mapping["aas-insta-parent"] = "Insta*"
        else:
            mapping[f"aas-{name.lower()}"] = name
    return mapping
