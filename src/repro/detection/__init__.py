"""Abuse detection and attribution (paper Section 5 preamble).

"Based on features gathered from our honeypot accounts, such as the type
of action, commonly tracked information about the client (e.g., IP
address, ASN, etc.), and additional signals produced within Instagram,
we can identify the actions initiated by each AAS."

* :mod:`repro.detection.signals` — learns per-service signatures
  (ASN + client-stack variant) from honeypot ground truth.
* :mod:`repro.detection.classifier` — sweeps the platform's action log,
  attributing actions to services and identifying customer accounts.
* :mod:`repro.detection.customers` — customer-base analytics: activity
  spans, long/short-term split, birth/death dynamics, conversion rates,
  and geolocation (Tables 6-7, Section 5.1).
"""

from repro.detection.signals import ServiceSignature, learn_signature
from repro.detection.classifier import AASClassifier, AttributedActivity
from repro.detection.customers import (
    CustomerActivity,
    CustomerBaseAnalytics,
    PopulationDynamics,
)
from repro.detection.evaluation import (
    ClassificationReport,
    default_variant_map,
    evaluate_classifier,
)

__all__ = [
    "ServiceSignature",
    "learn_signature",
    "AASClassifier",
    "AttributedActivity",
    "CustomerActivity",
    "CustomerBaseAnalytics",
    "PopulationDynamics",
    "ClassificationReport",
    "evaluate_classifier",
    "default_variant_map",
]
