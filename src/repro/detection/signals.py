"""Service signature learning from honeypot ground truth.

Every action a registered honeypot account emits (reciprocity services)
or receives (collusion networks) was produced by the AAS's automation
stack, so the (ASN, client-variant) pairs observed on those actions form
a signature for the service. The paper notes these signals "accurately
characterize the entire activity of an AAS" per Instagram but cannot be
verified complete — classification is a lower bound, and the classifier
here inherits that property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.aas.base import ServiceType
from repro.platform.models import ActionRecord


@dataclass(frozen=True)
class ServiceSignature:
    """Learned network/client fingerprint of one service."""

    service: str
    service_type: ServiceType
    asns: frozenset[int]
    client_variants: frozenset[str]

    def __post_init__(self):
        if not self.asns and not self.client_variants:
            raise ValueError("a signature needs at least one feature")

    def matches(self, record: ActionRecord) -> bool:
        """Whether an action record matches this service's signature.

        Both features must match: the ASN ties traffic to the service's
        exit infrastructure, the client variant to its automation stack.
        """
        if self.asns and record.endpoint.asn not in self.asns:
            return False
        if self.client_variants and record.endpoint.fingerprint.variant not in self.client_variants:
            return False
        return True

    def merged_with(self, other: "ServiceSignature") -> "ServiceSignature":
        """Union two signatures for the same service (e.g. re-learning
        after the service migrates ASNs)."""
        if other.service != self.service:
            raise ValueError("cannot merge signatures of different services")
        return ServiceSignature(
            service=self.service,
            service_type=self.service_type,
            asns=self.asns | other.asns,
            client_variants=self.client_variants | other.client_variants,
        )


def learn_signature(
    service: str,
    service_type: ServiceType,
    ground_truth_records: Iterable[ActionRecord],
) -> ServiceSignature:
    """Build a signature from honeypot-attributed action records.

    For reciprocity services, pass the honeypots' *outbound* actions
    (the AAS issued them); for collusion networks, pass the honeypots'
    *inbound* actions (the AAS delivered them from other customers).
    """
    asns: set[int] = set()
    variants: set[str] = set()
    for record in ground_truth_records:
        asns.add(record.endpoint.asn)
        variants.add(record.endpoint.fingerprint.variant)
    if not asns:
        raise ValueError(f"no ground-truth records to learn {service} from")
    return ServiceSignature(
        service=service,
        service_type=service_type,
        asns=frozenset(asns),
        client_variants=frozenset(variants),
    )
