"""Sweeping the action log: attribution and customer identification.

"Using our service characterizations we were then able to identify all
accounts used by customers of each service" (Section 1). The classifier
matches every logged action against the learned signatures; actors of
matched actions are service customers, and for collusion networks the
*recipients* of matched actions are customers as well (including the
inbound-only accounts that pay the no-outbound fee — Section 5.2 counts
them exactly this way).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.aas.base import ServiceType
from repro.detection.signals import ServiceSignature
from repro.platform.models import AccountId, ActionRecord, ActionStatus


@dataclass
class AttributedActivity:
    """Everything attributed to one service in a sweep."""

    service: str
    service_type: ServiceType
    records: list[ActionRecord] = field(default_factory=list)

    @property
    def actors(self) -> set[AccountId]:
        """Accounts the service drove outbound actions from."""
        return {r.actor for r in self.records}

    @property
    def recipients(self) -> set[AccountId]:
        """Accounts that received service-delivered actions."""
        return {r.target_account for r in self.records if r.target_account is not None}

    @property
    def customers(self) -> set[AccountId]:
        """The service's customer accounts, per the paper's rules."""
        if self.service_type is ServiceType.COLLUSION_NETWORK:
            return self.actors | self.recipients
        return self.actors

    @property
    def inbound_only_accounts(self) -> set[AccountId]:
        """Collusion customers that never source actions (no-outbound fee)."""
        if self.service_type is not ServiceType.COLLUSION_NETWORK:
            return set()
        return self.recipients - self.actors

    @property
    def observed_asns(self) -> set[int]:
        return {r.endpoint.asn for r in self.records}


class AASClassifier:
    """Attributes log records to services via learned signatures."""

    def __init__(self, signatures: Iterable[ServiceSignature]):
        self.signatures = list(signatures)
        names = [s.service for s in self.signatures]
        if len(names) != len(set(names)):
            raise ValueError("duplicate service signatures")

    def attribute(self, record: ActionRecord) -> Optional[str]:
        """Service name for one record, or None if it looks benign."""
        for signature in self.signatures:
            if signature.matches(record):
                return signature.service
        return None

    def sweep(
        self,
        records: Iterable[ActionRecord],
        start_tick: int = 0,
        end_tick: int | None = None,
        include_blocked: bool = True,
    ) -> dict[str, AttributedActivity]:
        """Attribute every record in the window to a service (or drop it).

        Blocked attempts are included by default — they are still abuse
        attempts and the intervention analyses need them.
        """
        out = {
            s.service: AttributedActivity(service=s.service, service_type=s.service_type)
            for s in self.signatures
        }
        for record in records:
            if record.tick < start_tick:
                continue
            if end_tick is not None and record.tick >= end_tick:
                continue
            if not include_blocked and record.status is ActionStatus.BLOCKED:
                continue
            service = self.attribute(record)
            if service is not None:
                out[service].records.append(record)
        return out

    def benign_records(
        self,
        records: Iterable[ActionRecord],
        start_tick: int = 0,
        end_tick: int | None = None,
    ) -> list[ActionRecord]:
        """Records matching no signature — the legitimate-traffic pool the
        intervention thresholds are computed from (Section 6.2)."""
        out = []
        for record in records:
            if record.tick < start_tick:
                continue
            if end_tick is not None and record.tick >= end_tick:
                continue
            if self.attribute(record) is None:
                out.append(record)
        return out

    def daily_counts_by_account(
        self,
        records: Iterable[ActionRecord],
        action_type=None,
    ) -> dict[AccountId, dict[int, int]]:
        """Per-account, per-day action counts (helper for thresholds)."""
        counts: dict[AccountId, dict[int, int]] = defaultdict(lambda: defaultdict(int))
        for record in records:
            if action_type is not None and record.action_type is not action_type:
                continue
            counts[record.actor][record.day] += 1
        return {a: dict(d) for a, d in counts.items()}
