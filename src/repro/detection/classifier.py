"""Sweeping the action log: attribution and customer identification.

"Using our service characterizations we were then able to identify all
accounts used by customers of each service" (Section 1). The classifier
matches every logged action against the learned signatures; actors of
matched actions are service customers, and for collusion networks the
*recipients* of matched actions are customers as well (including the
inbound-only accounts that pay the no-outbound fee — Section 5.2 counts
them exactly this way).

Three execution tiers produce bit-identical results (the equivalence is
test-enforced):

1. **Brute force** — any iterable of records; every record is matched
   against the signature list. The reference semantics.
2. **Bucketed cold sweep** — an :class:`~repro.platform.actions.ActionLog`
   argument lets the sweep read the log's (ASN, action type, variant)
   buckets: only records whose bucket intersects some signature are
   touched, with first-matching-signature conflict resolution identical
   to brute force.
3. **Streaming attribution** — :meth:`AASClassifier.attach` registers the
   classifier as a log observer; records are attributed once, on append,
   into per-service (and benign) record caches, so every later sweep over
   the attached log is a binary search plus one list slice per service.

All tiers share a per-(ASN, variant) match memo: signatures only inspect
the endpoint, so distinct endpoints — not records — bound the matching
work.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.aas.base import ServiceType
from repro.detection.signals import ServiceSignature
from repro.obs import NULL_OBS, Observability
from repro.platform.actions import ActionLog
from repro.platform.columns import ActionView
from repro.platform.models import AccountId, ActionRecord, ActionStatus


@dataclass
class AttributedActivity:
    """Everything attributed to one service in a sweep."""

    service: str
    service_type: ServiceType
    records: list[ActionRecord] = field(default_factory=list)

    @property
    def actors(self) -> set[AccountId]:
        """Accounts the service drove outbound actions from."""
        return {r.actor for r in self.records}

    @property
    def recipients(self) -> set[AccountId]:
        """Accounts that received service-delivered actions."""
        return {r.target_account for r in self.records if r.target_account is not None}

    @property
    def customers(self) -> set[AccountId]:
        """The service's customer accounts, per the paper's rules."""
        if self.service_type is ServiceType.COLLUSION_NETWORK:
            return self.actors | self.recipients
        return self.actors

    @property
    def inbound_only_accounts(self) -> set[AccountId]:
        """Collusion customers that never source actions (no-outbound fee)."""
        if self.service_type is not ServiceType.COLLUSION_NETWORK:
            return set()
        return self.recipients - self.actors

    @property
    def observed_asns(self) -> set[int]:
        return {r.endpoint.asn for r in self.records}


#: sentinel distinguishing "endpoint id never attributed" from a memoized
#: benign (None) attribution in the streaming observer's id memo
_UNSEEN = object()


def _cut_window(values: list, ticks: list[int], start_tick: int, end_tick: int | None) -> list:
    """Slice ``values`` (parallel to sorted ``ticks``) to a tick window."""
    lo = bisect_left(ticks, start_tick)
    hi = len(ticks) if end_tick is None else bisect_left(ticks, end_tick)
    return values[lo:max(hi, lo)]


class AASClassifier:
    """Attributes log records to services via learned signatures.

    The signature list must not be mutated after construction (the match
    memo and streaming caches key off it); re-learning builds a new
    classifier, as :meth:`repro.core.study.Study.learn_signatures` does.
    """

    def __init__(
        self, signatures: Iterable[ServiceSignature], obs: Optional[Observability] = None
    ):
        self.signatures = list(signatures)
        names = [s.service for s in self.signatures]
        if len(names) != len(set(names)):
            raise ValueError("duplicate service signatures")
        _obs = obs if obs is not None else NULL_OBS
        _obs.gauge("detection.classifier.signatures").set(len(self.signatures))
        self._obs_memo_hit = _obs.counter("detection.classifier.memo", result="hit")
        self._obs_memo_miss = _obs.counter("detection.classifier.memo", result="miss")
        #: signature.matches() probes — the classifier's work unit for
        #: the cost profiler; memo hits cost zero comparisons
        self._obs_comparisons = _obs.counter("detection.classifier.comparisons")
        self._obs_sweep_tier = {
            tier: _obs.counter("detection.classifier.sweeps", tier=tier)
            for tier in ("streamed", "bucketed", "brute")
        }
        #: (asn, variant) -> service-or-None; matching depends only on the
        #: endpoint, so distinct endpoints bound the matching work
        self._match_memo: dict[tuple[int, str], Optional[str]] = {}
        #: interned endpoint id -> service-or-None for the attached
        #: columnar log: the streaming observer's memo probe without
        #: decoding the endpoint or building a key tuple. Ids are
        #: per-log, so attach/detach resets it.
        self._eid_memo: dict[int, Optional[str]] = {}
        # streaming-attribution state (populated by attach()); records are
        # cached by reference so a window sweep is a bisect plus one slice
        self._log: ActionLog | None = None
        self._stream_records: dict[str, list[ActionRecord]] = {}
        self._stream_ticks: dict[str, list[int]] = {}
        self._benign_records: list[ActionRecord] = []
        self._benign_ticks: list[int] = []
        self._stream_ordered = True

    def attribute(self, record: ActionRecord) -> Optional[str]:
        """Service name for one record, or None if it looks benign."""
        key = (record.endpoint.asn, record.endpoint.fingerprint.variant)
        try:
            service = self._match_memo[key]
        except KeyError:
            pass
        else:
            self._obs_memo_hit.inc()
            return service
        self._obs_memo_miss.inc()
        service = None
        comparisons = 0
        for signature in self.signatures:
            comparisons += 1
            if signature.matches(record):
                service = signature.service
                break
        self._obs_comparisons.inc(comparisons)
        self._match_memo[key] = service
        return service

    # ------------------------------------------------------------------
    # Streaming attribution (the incremental fast path)
    # ------------------------------------------------------------------

    @property
    def attached_log(self) -> ActionLog | None:
        """The log this classifier streams from, if any."""
        return self._log

    def attach(self, log: ActionLog) -> None:
        """Stream-attribute ``log``: existing records now, the rest on append.

        Once attached, :meth:`sweep` and :meth:`benign_records` calls that
        pass this log become index lookups over the cached attribution
        instead of full rescans.
        """
        if self._log is log:
            return
        if self._log is not None:
            self.detach()
        self._log = log
        self._eid_memo = {}
        self._stream_records = {s.service: [] for s in self.signatures}
        self._stream_ticks = {s.service: [] for s in self.signatures}
        self._benign_records = []
        self._benign_ticks = []
        self._stream_ordered = True
        for record in log:
            self._observe(record)
        log.add_observer(self._observe, batch=self._observe_batch)

    def detach(self) -> None:
        """Stop observing; subsequent sweeps fall back to cold paths."""
        if self._log is None:
            return
        self._log.remove_observer(self._observe)
        self._log = None
        self._eid_memo = {}
        self._stream_records = {}
        self._stream_ticks = {}
        self._benign_records = []
        self._benign_ticks = []

    def _observe(self, record: ActionRecord) -> None:
        # the per-append hot path: one memo lookup, two list appends.
        # Columnar views expose their row directly, so the memo probes on
        # the interned endpoint id and reads the tick straight out of the
        # column — no endpoint decode, no key tuple, no property calls.
        cols = getattr(record, "_cols", None)
        if cols is not None:
            row = record.action_id
            service = self._eid_memo.get(cols.endpoint_ids[row], _UNSEEN)
            if service is _UNSEEN:
                service = self._eid_memo[cols.endpoint_ids[row]] = self.attribute(record)
            else:
                self._obs_memo_hit.inc()
            tick = cols.ticks[row]
        else:
            endpoint = record.endpoint
            key = (endpoint.asn, endpoint.fingerprint.variant)
            memo = self._match_memo
            if key in memo:
                service = memo[key]
                self._obs_memo_hit.inc()
            else:
                service = self.attribute(record)
            tick = record.tick
        if service is None:
            records, ticks = self._benign_records, self._benign_ticks
        else:
            records, ticks = self._stream_records[service], self._stream_ticks[service]
        if ticks and tick < ticks[-1]:
            self._stream_ordered = False  # out-of-order append: bisect invalid
        records.append(record)
        ticks.append(tick)

    def _observe_batch(self, cols, start: int, end: int) -> None:
        """Bulk ingestion for :meth:`ActionLog.append_batch` row ranges.

        Exactly ``end - start`` :meth:`_observe` calls' worth of state
        and telemetry (memo hits are accumulated and charged once), but
        with the memo dict, columns, and — since batches are dominated
        by single-service bursts — the per-service stream lists resolved
        outside the per-row loop.
        """
        eid_memo = self._eid_memo
        endpoint_ids = cols.endpoint_ids
        col_ticks = cols.ticks
        benign = (self._benign_records, self._benign_ticks)
        stream_records = self._stream_records
        stream_ticks = self._stream_ticks
        last_service: object = _UNSEEN
        records: list = benign[0]
        ticks: list = benign[1]
        last_tick = None
        memo_hits = 0
        for row in range(start, end):
            record = ActionView(cols, row)
            service = eid_memo.get(endpoint_ids[row], _UNSEEN)
            if service is _UNSEEN:
                service = eid_memo[endpoint_ids[row]] = self.attribute(record)
            else:
                memo_hits += 1
            if service is not last_service:
                last_service = service
                if service is None:
                    records, ticks = benign
                else:
                    records, ticks = stream_records[service], stream_ticks[service]
                # re-read the stream's tail once per run of same-service
                # rows; within the run the previous row's tick is local
                last_tick = ticks[-1] if ticks else None
            tick = col_ticks[row]
            if last_tick is not None and tick < last_tick:
                self._stream_ordered = False
            last_tick = tick
            records.append(record)
            ticks.append(tick)
        if memo_hits:
            self._obs_memo_hit.add(memo_hits)

    def _streaming_for(self, records: Iterable[ActionRecord]) -> bool:
        return self._log is not None and records is self._log and self._stream_ordered

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------

    def sweep(
        self,
        records: Iterable[ActionRecord],
        start_tick: int = 0,
        end_tick: int | None = None,
        include_blocked: bool = True,
    ) -> dict[str, AttributedActivity]:
        """Attribute every record in the window to a service (or drop it).

        Blocked attempts are included by default — they are still abuse
        attempts and the intervention analyses need them.
        """
        if self._streaming_for(records):
            self._obs_sweep_tier["streamed"].inc()
            return self._sweep_streamed(start_tick, end_tick, include_blocked)
        if isinstance(records, ActionLog) and records.ticks_monotonic:
            self._obs_sweep_tier["bucketed"].inc()
            return self._sweep_bucketed(records, start_tick, end_tick, include_blocked)
        self._obs_sweep_tier["brute"].inc()
        out = {
            s.service: AttributedActivity(service=s.service, service_type=s.service_type)
            for s in self.signatures
        }
        for record in records:
            if record.tick < start_tick:
                continue
            if end_tick is not None and record.tick >= end_tick:
                continue
            if not include_blocked and record.status is ActionStatus.BLOCKED:
                continue
            service = self.attribute(record)
            if service is not None:
                out[service].records.append(record)
        return out

    def _materialize(
        self, log: ActionLog, ids: list[int], include_blocked: bool
    ) -> list[ActionRecord]:
        records = [log.get(i) for i in ids]
        if not include_blocked:
            records = [r for r in records if r.status is not ActionStatus.BLOCKED]
        return records

    def _sweep_streamed(
        self, start_tick: int, end_tick: int | None, include_blocked: bool
    ) -> dict[str, AttributedActivity]:
        assert self._log is not None
        out = {}
        for signature in self.signatures:
            records = _cut_window(
                self._stream_records[signature.service],
                self._stream_ticks[signature.service],
                start_tick,
                end_tick,
            )
            if not include_blocked:
                records = [r for r in records if r.status is not ActionStatus.BLOCKED]
            out[signature.service] = AttributedActivity(
                service=signature.service,
                service_type=signature.service_type,
                records=records,
            )
        return out

    def _sweep_bucketed(
        self,
        log: ActionLog,
        start_tick: int,
        end_tick: int | None,
        include_blocked: bool,
    ) -> dict[str, AttributedActivity]:
        """Cold sweep via the log's signature buckets.

        Signatures are tried in list order per record (first match wins)
        — reproduced here by letting earlier signatures claim bucket ids
        before later ones see them. A signature with an open feature set
        (no ASNs or no variants) cannot be enumerated from buckets and
        falls back to scanning the window once for that signature.
        """
        out = {
            s.service: AttributedActivity(service=s.service, service_type=s.service_type)
            for s in self.signatures
        }
        claimed: set[int] = set()
        for signature in self.signatures:
            if signature.asns and signature.client_variants:
                ids: list[int] = []
                for asn in sorted(signature.asns):
                    for variant in sorted(signature.client_variants):
                        ids.extend(
                            log.ids_by_signature(
                                asn, variant, start_tick=start_tick, end_tick=end_tick
                            )
                        )
                ids.sort()
            else:
                ids = [
                    r.action_id
                    for r in log.records_between(start_tick, end_tick)
                    if signature.matches(r)
                ]
            fresh = [i for i in ids if i not in claimed]
            claimed.update(fresh)
            out[signature.service].records = self._materialize(log, fresh, include_blocked)
        return out

    def benign_records(
        self,
        records: Iterable[ActionRecord],
        start_tick: int = 0,
        end_tick: int | None = None,
    ) -> list[ActionRecord]:
        """Records matching no signature — the legitimate-traffic pool the
        intervention thresholds are computed from (Section 6.2)."""
        if self._streaming_for(records):
            return _cut_window(self._benign_records, self._benign_ticks, start_tick, end_tick)
        if isinstance(records, ActionLog):
            records = records.records_between(start_tick, end_tick)
            start_tick, end_tick = 0, None
        out = []
        for record in records:
            if record.tick < start_tick:
                continue
            if end_tick is not None and record.tick >= end_tick:
                continue
            if self.attribute(record) is None:
                out.append(record)
        return out

    def daily_counts_by_account(
        self,
        records: Iterable[ActionRecord],
        action_type=None,
    ) -> dict[AccountId, dict[int, int]]:
        """Per-account, per-day action counts (helper for thresholds)."""
        counts: dict[AccountId, dict[int, int]] = defaultdict(lambda: defaultdict(int))
        for record in records:
            if action_type is not None and record.action_type is not action_type:
                continue
            counts[record.actor][record.day] += 1
        return {a: dict(d) for a, d in counts.items()}
