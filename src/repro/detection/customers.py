"""Customer-base analytics (paper Section 5.1, Tables 6-7).

Given the records attributed to one service, reconstructs each
customer's activity span and derives the paper's population metrics:

* long-term vs short-term customers — long-term means active for more
  than ``long_term_days`` *consecutive* days (7 for reciprocity AASs,
  strictly longer than the trial; 4 for Hublaagram),
* share of actions from long-term customers,
* birth/death rates and daily active long-term counts (user stability),
* the long-term conversion rate for users new in a window,
* customer geolocation (most frequent login country, with service-ASN
  logins excluded per the paper's footnote that AAS logins are too
  infrequent to move the statistic).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.aas.base import ServiceType
from repro.detection.classifier import AttributedActivity
from repro.netsim.geo import GeoIP
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId


@dataclass
class CustomerActivity:
    """One customer's observed engagement with a service."""

    account_id: AccountId
    active_days: set[int] = field(default_factory=set)
    action_count: int = 0

    @property
    def first_day(self) -> int:
        return min(self.active_days)

    @property
    def last_day(self) -> int:
        return max(self.active_days)

    def max_consecutive_days(self) -> int:
        """Length of the longest run of consecutive active days."""
        if not self.active_days:
            return 0
        days_sorted = sorted(self.active_days)
        best = run = 1
        for previous, current in zip(days_sorted, days_sorted[1:]):
            run = run + 1 if current == previous + 1 else 1
            best = max(best, run)
        return best


class CustomerBaseAnalytics:
    """Population metrics for one service's attributed activity."""

    def __init__(self, activity: AttributedActivity, long_term_days: int):
        if long_term_days < 1:
            raise ValueError("long_term_days must be positive")
        self.service = activity.service
        self.service_type = activity.service_type
        self.long_term_days = long_term_days
        self.customers: dict[AccountId, CustomerActivity] = {}
        self._build(activity)

    def _build(self, activity: AttributedActivity) -> None:
        collusion = self.service_type is ServiceType.COLLUSION_NETWORK
        for record in activity.records:
            participants = [record.actor]
            if collusion and record.target_account is not None:
                # For collusion networks, receiving service actions is
                # engagement too (it is what customers request).
                participants.append(record.target_account)
            for account in participants:
                entry = self.customers.setdefault(account, CustomerActivity(account_id=account))
                entry.active_days.add(record.day)
            self.customers[record.actor].action_count += 1

    # ------------------------------------------------------------------
    # Table 6
    # ------------------------------------------------------------------

    def total_customers(self) -> int:
        return len(self.customers)

    def long_term_customers(self) -> set[AccountId]:
        """Customers active more than ``long_term_days`` consecutive days."""
        return {
            account
            for account, activity in self.customers.items()
            if activity.max_consecutive_days() > self.long_term_days
        }

    def short_term_customers(self) -> set[AccountId]:
        return set(self.customers) - self.long_term_customers()

    def long_term_action_share(self) -> float:
        """Fraction of the service's actions issued by long-term customers."""
        long_term = self.long_term_customers()
        total = sum(a.action_count for a in self.customers.values())
        if total == 0:
            return 0.0
        from_long_term = sum(
            a.action_count for account, a in self.customers.items() if account in long_term
        )
        return from_long_term / total

    # ------------------------------------------------------------------
    # User stability (Section 5.1)
    # ------------------------------------------------------------------

    def daily_active_long_term(self) -> dict[int, int]:
        """Day -> number of long-term customers active that day."""
        long_term = self.long_term_customers()
        series: dict[int, int] = defaultdict(int)
        for account in long_term:
            for day in self.customers[account].active_days:
                series[day] += 1
        return dict(series)

    def birth_death_rates(self, window_days: int = 7) -> dict[str, float]:
        """Long-term births/deaths per window, averaged over the period.

        A "birth" is a long-term customer's first active day; a "death"
        is their last (as observed in the data, i.e. the paper's
        "appear to have dropped out").
        """
        long_term = self.long_term_customers()
        if not long_term:
            return {"birth_rate": 0.0, "death_rate": 0.0, "growth": 0.0}
        firsts = [self.customers[a].first_day for a in long_term]
        lasts = [self.customers[a].last_day for a in long_term]
        span_days = max(lasts) - min(firsts) + 1
        windows = max(span_days / window_days, 1.0)
        # Customers still active in the final window have not died.
        horizon = max(lasts) - window_days
        deaths = sum(1 for last in lasts if last <= horizon)
        births = sum(1 for first in firsts if first > min(firsts) + window_days)
        return {
            "birth_rate": births / windows,
            "death_rate": deaths / windows,
            "growth": (births - deaths) / max(len(long_term), 1),
        }

    def conversion_rate(self, cohort_start_day: int, cohort_days: int = 30) -> float:
        """Fraction of users *new* in the cohort window that become
        long-term within that window (Section 5.1's stable metric)."""
        cohort_end = cohort_start_day + cohort_days
        cohort = [
            activity
            for activity in self.customers.values()
            if cohort_start_day <= activity.first_day < cohort_end
        ]
        if not cohort:
            return 0.0
        converted = sum(
            1
            for activity in cohort
            if activity.max_consecutive_days() > self.long_term_days
            and activity.first_day + activity.max_consecutive_days() <= cohort_end + cohort_days
        )
        return converted / len(cohort)

    # ------------------------------------------------------------------
    # Geography (Table 7 / Figure 2)
    # ------------------------------------------------------------------

    def customer_countries(
        self,
        platform: InstagramPlatform,
        geoip: GeoIP,
        service_asns: set[int],
    ) -> Counter:
        """Country -> customer count via most-frequent login country.

        Logins from the service's own ASNs are excluded: the paper notes
        AAS logins are infrequent enough not to move the statistic, and
        excluding them models exactly that.
        """
        counts: Counter = Counter()
        for account in self.customers:
            try:
                endpoints = platform.auth.login_endpoints(account)
            except Exception:
                continue  # account deleted since
            own = [e for e in endpoints if e.asn not in service_asns]
            if not own:
                continue
            country_counts = Counter(geoip.country(e.address) for e in own)
            top = max(country_counts.values())
            country = sorted(c for c, n in country_counts.items() if n == top)[0]
            counts[country] += 1
        return counts


@dataclass
class PopulationDynamics:
    """Cross-service overlap metrics (Section 5.1 "Popularity")."""

    analytics: list[CustomerBaseAnalytics]

    def overlap(self, minimum_services: int = 2) -> set[AccountId]:
        """Accounts enrolled in at least ``minimum_services`` services."""
        membership: Counter = Counter()
        for analytic in self.analytics:
            for account in analytic.customers:
                membership[account] += 1
        return {account for account, n in membership.items() if n >= minimum_services}
