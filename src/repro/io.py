"""Dataset export/import.

Downstream analyses (notebooks, plotting, external classifiers) want the
measurement event stream without re-running the simulation. These
helpers serialize action records to JSON-lines and load them back as
plain dicts or reconstructed :class:`ActionRecord` objects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.netsim.client import ClientEndpoint, DeviceFingerprint
from repro.netsim.ipspace import format_ipv4, parse_ipv4
from repro.platform.models import (
    ActionRecord,
    ActionStatus,
    ActionType,
    ApiSurface,
)


def record_to_dict(record: ActionRecord) -> dict:
    """Flatten one action record into a JSON-safe dict."""
    return {
        "action_id": record.action_id,
        "type": record.action_type.value,
        "actor": record.actor,
        "target_account": record.target_account,
        "target_media": record.target_media,
        "tick": record.tick,
        "status": record.status.value,
        "api": record.api.value,
        "ip": format_ipv4(record.endpoint.address),
        "asn": record.endpoint.asn,
        "client_family": record.endpoint.fingerprint.family,
        "client_variant": record.endpoint.fingerprint.variant,
        "removed_at": record.removed_at,
        "comment_text": record.comment_text,
    }


def record_from_dict(data: dict) -> ActionRecord:
    """Rebuild an action record from :func:`record_to_dict` output."""
    return ActionRecord(
        action_id=int(data["action_id"]),
        action_type=ActionType(data["type"]),
        actor=int(data["actor"]),
        tick=int(data["tick"]),
        endpoint=ClientEndpoint(
            address=parse_ipv4(data["ip"]),
            asn=int(data["asn"]),
            fingerprint=DeviceFingerprint(
                family=data["client_family"], variant=data["client_variant"]
            ),
        ),
        api=ApiSurface(data["api"]),
        status=ActionStatus(data["status"]),
        target_account=data.get("target_account"),
        target_media=data.get("target_media"),
        removed_at=data.get("removed_at"),
        comment_text=data.get("comment_text"),
    )


def export_records(records: Iterable[ActionRecord], path: str | Path) -> int:
    """Write records to a JSON-lines file; returns the count written."""
    count = 0
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record_to_dict(record)) + "\n")
            count += 1
    return count


def iter_records(path: str | Path) -> Iterator[ActionRecord]:
    """Stream records back from a JSON-lines file."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield record_from_dict(json.loads(line))


def load_records(path: str | Path) -> list[ActionRecord]:
    """Load a whole JSON-lines file into memory."""
    return list(iter_records(path))
