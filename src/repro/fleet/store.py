"""Disk-backed, digest-addressed snapshot store.

Cross-invocation persistence for reuse-tree nodes: the tree scheduler
writes every node envelope it builds under its node key, and a later
sweep — same grid, one changed threshold — restores everything above
the divergence point instead of rebuilding it.

Layout (all under one ``root`` directory)::

    root/
      index.json            {"schema_version", "seq", "entries": {key: {bytes, seq}}}
      envelopes/<key>.snap   one JSON header line + raw envelope bytes

Integrity: every envelope file opens with a single JSON header line
recording the store schema version, the node key, the payload length,
and the payload's BLAKE2 digest; :meth:`SnapshotStore.get` re-verifies
all four on every read. A failed check — truncation, bit rot, a
half-written file from a crashed process — deletes the entry and
returns ``None``: corruption degrades to a rebuild, never to a crash
and never to trusting bad bytes.

Atomicity: writes land in a same-directory temp file first and are
published with ``os.replace``, so a reader can never observe a partial
envelope under its final name.

Eviction: size-bounded LRU. Recency is a persisted monotonic sequence
counter in the index (bumped on every hit and write) — *not* file
mtimes, which would smuggle wall-clock state into behaviour the
determinism contract can't see. Evicting by lowest sequence is then a
pure function of the access history.

This module is the repo's only sanctioned home for snapshot disk I/O
(plus the ``tempfile``/``shutil`` throwaway-root helpers below): the
ARCH004 lint rule confines those imports to ``repro/fleet/`` the same
way it confines ``pickle`` and process pools.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from typing import Dict, Optional

from repro.obs.facade import NULL_OBS, Observability

#: bumped whenever the envelope-file or index layout changes incompatibly
STORE_SCHEMA_VERSION = 1

_INDEX_NAME = "index.json"
_ENVELOPE_DIR = "envelopes"
_SUFFIX = ".snap"


def _payload_digest(blob: bytes) -> str:
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


class SnapshotStore:
    """Digest-addressed envelope files with verified reads and LRU bounds."""

    def __init__(
        self,
        root: str,
        max_bytes: Optional[int] = None,
        obs: Observability = NULL_OBS,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = str(root)
        self.max_bytes = max_bytes
        self._envelope_dir = os.path.join(self.root, _ENVELOPE_DIR)
        os.makedirs(self._envelope_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corruptions = 0
        self.evictions = 0
        self._hit_counter = obs.counter("fleet.store.hits")
        self._miss_counter = obs.counter("fleet.store.misses")
        self._write_counter = obs.counter("fleet.store.writes")
        self._corruption_counter = obs.counter("fleet.store.corruptions")
        self._eviction_counter = obs.counter("fleet.store.evictions")
        self._bytes_gauge = obs.gauge("fleet.store.bytes")
        self._seq = 0
        self._entries: Dict[str, Dict[str, int]] = {}
        self._load_index()

    # -- public API -----------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        """The verified envelope under ``key``, or None (miss/corrupt)."""
        path = self._path(key)
        if not os.path.exists(path):
            self.misses += 1
            self._miss_counter.inc()
            if self._entries.pop(key, None) is not None:
                self._save_index()
            return None
        blob = self._read_verified(path, key)
        if blob is None:
            self.corruptions += 1
            self._corruption_counter.inc()
            self.misses += 1
            self._miss_counter.inc()
            os.remove(path)
            self._entries.pop(key, None)
            self._save_index()
            return None
        self.hits += 1
        self._hit_counter.inc()
        self._seq += 1
        self._entries.setdefault(key, {"bytes": self._file_bytes(path)})["seq"] = self._seq
        self._save_index()
        return blob

    def put(self, key: str, blob: bytes) -> None:
        """Atomically (over)write the envelope under ``key``."""
        path = self._path(key)
        header = json.dumps(
            {
                "store_schema": STORE_SCHEMA_VERSION,
                "key": key,
                "payload_bytes": len(blob),
                "payload_digest": _payload_digest(blob),
            },
            sort_keys=True,
        ).encode("ascii")
        data = header + b"\n" + blob
        tmp = path + f".{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)
        self.writes += 1
        self._write_counter.inc()
        self._seq += 1
        self._entries[key] = {"bytes": len(data), "seq": self._seq}
        self._evict()
        self._save_index()

    def keys(self) -> list:
        """Stored node keys, most recently used last."""
        return sorted(self._entries, key=lambda k: self._entries[k]["seq"])

    @property
    def bytes_stored(self) -> int:
        return sum(entry["bytes"] for entry in self._entries.values())

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "bytes": self.bytes_stored,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corruptions": self.corruptions,
            "evictions": self.evictions,
        }

    # -- internals ------------------------------------------------------

    def _path(self, key: str) -> str:
        if not key or not all(c.isalnum() or c in "-_" for c in key):
            raise ValueError(f"store keys must be filesystem-safe digests, got {key!r}")
        return os.path.join(self._envelope_dir, key + _SUFFIX)

    @staticmethod
    def _file_bytes(path: str) -> int:
        try:
            return os.path.getsize(path)
        except OSError:
            return 0

    @staticmethod
    def _read_verified(path: str, key: str) -> Optional[bytes]:
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        newline = data.find(b"\n")
        if newline < 0:
            return None
        try:
            header = json.loads(data[:newline].decode("ascii"))
        except (UnicodeDecodeError, ValueError):
            return None
        if not isinstance(header, dict):
            return None
        payload = data[newline + 1 :]
        if (
            header.get("store_schema") != STORE_SCHEMA_VERSION
            or header.get("key") != key
            or header.get("payload_bytes") != len(payload)
            or header.get("payload_digest") != _payload_digest(payload)
        ):
            return None
        return payload

    def _evict(self) -> None:
        if self.max_bytes is None:
            return
        while self._entries and self.bytes_stored > self.max_bytes:
            victim = min(self._entries, key=lambda k: self._entries[k]["seq"])
            del self._entries[victim]
            path = os.path.join(self._envelope_dir, victim + _SUFFIX)
            if os.path.exists(path):
                os.remove(path)
            self.evictions += 1
            self._eviction_counter.inc()

    def _index_path(self) -> str:
        return os.path.join(self.root, _INDEX_NAME)

    def _load_index(self) -> None:
        raw: dict = {}
        try:
            with open(self._index_path(), "r", encoding="utf-8") as handle:
                parsed = json.load(handle)
            if isinstance(parsed, dict) and parsed.get("schema_version") == STORE_SCHEMA_VERSION:
                raw = parsed
        except (OSError, ValueError):
            raw = {}
        seq = raw.get("seq")
        self._seq = seq if isinstance(seq, int) and seq >= 0 else 0
        entries = raw.get("entries")
        if isinstance(entries, dict):
            for key, entry in entries.items():
                if (
                    isinstance(entry, dict)
                    and isinstance(entry.get("bytes"), int)
                    and isinstance(entry.get("seq"), int)
                ):
                    self._entries[str(key)] = {
                        "bytes": entry["bytes"],
                        "seq": entry["seq"],
                    }
        # reconcile with what is actually on disk: drop index entries
        # whose file vanished, adopt files the index never heard of
        # (sorted by name so adoption order is deterministic)
        on_disk = sorted(
            name[: -len(_SUFFIX)]
            for name in os.listdir(self._envelope_dir)
            if name.endswith(_SUFFIX)
        )
        for key in list(self._entries):
            if key not in set(on_disk):
                del self._entries[key]
        for key in on_disk:
            if key not in self._entries:
                self._seq += 1
                self._entries[key] = {
                    "bytes": self._file_bytes(os.path.join(self._envelope_dir, key + _SUFFIX)),
                    "seq": self._seq,
                }
        self._save_index()

    def _save_index(self) -> None:
        payload = {
            "schema_version": STORE_SCHEMA_VERSION,
            "seq": self._seq,
            "entries": self._entries,
        }
        path = self._index_path()
        tmp = path + f".{os.getpid()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)
        self._bytes_gauge.set(self.bytes_stored)


def temporary_store_root(prefix: str = "repro-snap-store-") -> str:
    """A throwaway store root directory (caller removes it when done).

    Lives here because ``tempfile`` is confined to the fleet layer by
    ARCH004 — bench scenarios and smoke scripts get their scratch store
    through this helper instead of importing tempfile themselves.
    """
    return tempfile.mkdtemp(prefix=prefix)


def remove_store_root(root: str) -> None:
    """Best-effort recursive removal of a store root."""
    shutil.rmtree(root, ignore_errors=True)


__all__ = [
    "STORE_SCHEMA_VERSION",
    "SnapshotStore",
    "remove_store_root",
    "temporary_store_root",
]
