"""Deterministic process-pool sweep orchestrator.

:class:`FleetRunner` fans a list of :class:`~repro.fleet.spec.ReplicaSpec`
over shared-nothing worker processes and merges the results back in
**spec order** — never completion order — so the merged payload and the
merged trace are byte-identical for any worker count (enforced by
``tests/test_fleet_runner.py``).

Three strategies, one merge contract:

* ``tree`` (default) — nested prefix reuse. The planner
  (:func:`repro.fleet.tree.plan_tree`) derives the maximal reuse tree
  from the spec list; the runner materializes it level by level
  (parents strictly before children, siblings dispatched to the worker
  pool), resolving each node through the in-memory cache, then the
  optional disk store, and only then building it from its parent's
  frozen bytes. Replicas are grouped by leaf node and dispatched whole.
* ``flat`` — the historical grouping by ``(config digest, prefix)``:
  each group builds its entire chain once. Kept as the tree's bench
  baseline and as a bisection aid.
* ``no-reuse`` — every replica rebuilds its own chain (the
  ``reuse_prefix=False`` baseline that prices what reuse saves).

Why the fan-out preserves determinism:

* The reuse tree, the build set, and the charged replicas are computed
  in the parent as pure functions of (spec list, cache/store state) —
  scheduling cannot change who builds what.
* Node blobs travel to workers by value (pickled with the submission);
  workers never touch the disk store, so there are no cross-process
  file races and a sweep's store mutations are single-writer.
* Every replica — builder included — starts from a restore of frozen
  envelope bytes (a dump/load normalizes hash-table layout), and
  restored studies are bit-identical going forward by the snapshot
  contract, so *where* a blob was built (pool worker or parent) cannot
  leak into results.
* Workers are ``multiprocessing`` *spawn* processes, not forks: each
  re-imports the code fresh, so no parent-process state leaks in.
* Results carry their original spec index home and are re-slotted by
  it; the merge is a pure function of the spec list.

Cost attribution survives the fan-out: when profiling is on
(``StudyConfig.profile``) each worker's replica trace carries the
deterministic ``cost_total``/``cost_self`` span attrs written by
:class:`repro.obs.prof.CostProfiler` — :func:`canonical_lines` keeps
them (they are seed-pure, unlike ``wall_s``) — and the merged
``__fleet__`` segment rolls the per-replica self-costs up into
``fleet.cost.self_units{depth,kind}`` counters bucketed by the prefix
tree depth each span's root phase belongs to (see
:meth:`repro.fleet.spec.FleetResult.fleet_trace_segment`).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import StudyConfig
from repro.fleet.snapshot import (
    SnapshotCache,
    advance_prefix,
    build_prefix,
    config_digest,
    restore_study,
    snapshot_study,
)
from repro.fleet.spec import (
    PREFIX_DEPTH,
    FleetResult,
    ReplicaResult,
    ReplicaSpec,
)
from repro.fleet.store import SnapshotStore
from repro.fleet.tree import TreePlan, graft_config, plan_tree
from repro.obs.trace import canonical_lines, label_replica, trace_lines

#: one flat group = the (spec index, spec) pairs sharing a prefix snapshot
_Group = List[Tuple[int, ReplicaSpec]]

#: one tree leaf group = (spec index, spec, charged-for-a-build) triples
_LeafGroup = List[Tuple[int, ReplicaSpec, bool]]

_STRATEGIES = ("tree", "flat", "no-reuse")


def _run_replica(spec: ReplicaSpec, study: object, prefix_reused: bool) -> ReplicaResult:
    from repro.fleet.arms import resolve_arm

    arm = resolve_arm(spec.arm)
    payload = arm(study, spec.options())  # type: ignore[arg-type]
    trace: List[dict] | None = None
    if spec.config.observability:
        meta = {
            "replica": spec.name,
            "arm": spec.arm,
            "seed": spec.seed,
            "prefix": spec.prefix,
            "prefix_reused": prefix_reused,
        }
        lines = canonical_lines(trace_lines(study.obs, meta))  # type: ignore[attr-defined]
        trace = label_replica(lines, spec.name)  # type: ignore[assignment]
    return ReplicaResult(
        name=spec.name,
        arm=spec.arm,
        seed=spec.seed,
        prefix=spec.prefix,
        payload=payload,
        trace=trace,
        prefix_reused=prefix_reused,
    )


def _build_node_blob(
    config: StudyConfig, phase: str, parent_blob: Optional[bytes]
) -> bytes:
    """Build one reuse-tree node envelope (module-level for spawn).

    World roots are built from scratch; deeper nodes restore the
    parent's frozen bytes, graft the node's representative config on,
    and advance exactly one chain link.
    """
    if parent_blob is None:
        study = build_prefix(config, phase)
    else:
        study = restore_study(parent_blob)
        graft_config(study, config, depth=PREFIX_DEPTH[phase] - 1)
        advance_prefix(study, phase)
    return snapshot_study(study, phase)


def _run_leaf_group(group: _LeafGroup, blob: bytes) -> List[Tuple[int, ReplicaResult]]:
    """Run the replicas sharing one leaf node (module-level for spawn).

    Each replica forks its own study from the shared envelope bytes and
    grafts its own config back on (sharers may differ in post-prefix
    fields such as ``measurement_days``).
    """
    results: List[Tuple[int, ReplicaResult]] = []
    for index, spec, charged in group:
        study = restore_study(blob)
        graft_config(study, spec.config, depth=spec.depth)
        results.append((index, _run_replica(spec, study, prefix_reused=not charged)))
    return results


def _run_group(
    group: _Group, reuse_prefix: bool
) -> Tuple[List[Tuple[int, ReplicaResult]], int, int]:
    """Run one flat prefix-sharing group; returns (results, builds, restores).

    Module-level on purpose: spawn workers resolve it by qualified name,
    and its arguments (specs + a bool) pickle without custom support.
    """
    results: List[Tuple[int, ReplicaResult]] = []
    builds = 0
    restores = 0
    if reuse_prefix:
        cache = SnapshotCache()
        for index, spec in group:
            study, hit = cache.get_or_build(spec.config, spec.prefix)
            results.append((index, _run_replica(spec, study, prefix_reused=hit)))
        builds, restores = cache.builds, cache.restores
    else:
        for index, spec in group:
            # build fresh, but still round-trip through an envelope so
            # the starting state is identical to the reuse path (a
            # dump/load normalizes hash-table layout either way)
            built = build_prefix(spec.config, spec.prefix)
            study = restore_study(snapshot_study(built, spec.prefix))
            builds += 1
            restores += 1
            results.append((index, _run_replica(spec, study, prefix_reused=False)))
    return results, builds, restores


def _group_specs(specs: Sequence[ReplicaSpec]) -> List[_Group]:
    """Group specs by (config digest, prefix), first-appearance order."""
    groups: Dict[Tuple[str, str], _Group] = {}
    order: List[Tuple[str, str]] = []
    for index, spec in enumerate(specs):
        key = (config_digest(spec.config), spec.prefix)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((index, spec))
    return [groups[key] for key in order]


class FleetRunner:
    """Runs replica specs across ``workers`` spawn processes.

    ``workers <= 1`` runs everything in-process through the *same*
    scheduling code path, so the pooled and serial outputs are
    byte-comparable by construction. ``reuse_prefix=False`` forces the
    ``no-reuse`` strategy (every replica pays its own chain) — the
    bench baseline that prices what reuse saves.

    ``store`` plugs in a :class:`~repro.fleet.store.SnapshotStore` for
    cross-invocation node reuse; ``cache`` a (bounded)
    :class:`~repro.fleet.snapshot.SnapshotCache` shared across ``run``
    calls. Both are tree-strategy features. Only the parent process
    touches them — workers receive node bytes by value.
    """

    def __init__(
        self,
        workers: int = 1,
        reuse_prefix: bool = True,
        strategy: str = "tree",
        store: Optional[SnapshotStore] = None,
        cache: Optional[SnapshotCache] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r} (known: {_STRATEGIES})")
        self.workers = workers
        self.reuse_prefix = reuse_prefix
        self.strategy = strategy if reuse_prefix else "no-reuse"
        self.store = store
        self.cache = cache

    # -- dispatch helper ------------------------------------------------

    def _dispatch(
        self,
        pool: Optional[ProcessPoolExecutor],
        fn: Callable,
        tasks: Sequence[tuple],
    ) -> List[object]:
        """Run ``fn(*task)`` for every task, pooled when it pays off.

        Results come back in task order regardless of completion order.
        """
        if pool is None or len(tasks) <= 1:
            return [fn(*task) for task in tasks]
        futures = [pool.submit(fn, *task) for task in tasks]
        return [future.result() for future in futures]

    def _make_pool(self, parallelism: int) -> Optional[ProcessPoolExecutor]:
        if self.workers <= 1 or parallelism <= 1:
            return None
        context = get_context("spawn")
        return ProcessPoolExecutor(
            max_workers=min(self.workers, parallelism), mp_context=context
        )

    # -- strategies -----------------------------------------------------

    def run(self, specs: Sequence[ReplicaSpec]) -> FleetResult:
        specs = list(specs)
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("replica names must be unique within a fleet")
        if not specs:
            return FleetResult(
                replicas=[],
                prefix_builds=0,
                prefix_restores=0,
                prefix_groups=0,
                strategy=self.strategy,
            )
        if self.strategy == "tree":
            return self._run_tree(specs)
        return self._run_flat(specs, reuse=self.strategy == "flat")

    def _run_flat(self, specs: List[ReplicaSpec], reuse: bool) -> FleetResult:
        groups = _group_specs(specs)
        pool = self._make_pool(len(groups))
        try:
            outcomes = self._dispatch(
                pool, _run_group, [(group, reuse) for group in groups]
            )
        finally:
            if pool is not None:
                pool.shutdown()
        indexed: List[Tuple[int, ReplicaResult]] = []
        builds = 0
        restores = 0
        for group_results, group_builds, group_restores in outcomes:  # type: ignore[misc]
            indexed.extend(group_results)
            builds += group_builds
            restores += group_restores
        indexed.sort(key=lambda pair: pair[0])
        phase_units = sum(spec.depth for spec in specs)
        if reuse:
            # each group built its whole chain exactly once
            phase_builds = sum(PREFIX_DEPTH[group[0][1].prefix] for group in groups)
        else:
            phase_builds = phase_units
        return FleetResult(
            replicas=[result for _, result in indexed],
            prefix_builds=builds,
            prefix_restores=restores,
            prefix_groups=len(groups),
            phase_units=phase_units,
            phase_builds=phase_builds,
            strategy="flat" if reuse else "no-reuse",
        )

    def _run_tree(self, specs: List[ReplicaSpec]) -> FleetResult:
        plan = plan_tree(specs)
        cache = self.cache if self.cache is not None else SnapshotCache()
        builds = 0
        restores = 0
        charged: set[int] = set()
        level_stats: List[dict] = []
        #: this run's working set of node envelopes; parents are dropped
        #: as soon as no deeper level (and no leaf group) needs them, so
        #: residency tracks the tree's frontier, not its total size
        blobs: Dict[str, bytes] = {}
        needed_as_leaf = set(plan.leaf_keys)
        max_parallelism = max(
            max((len(level) for level in plan.levels), default=1),
            len(set(plan.leaf_keys)),
        )
        pool = self._make_pool(max_parallelism)
        try:
            for depth0, level in enumerate(plan.levels):
                stats = {
                    "phase": plan.nodes[level[0]].phase if level else "",
                    "nodes": len(level),
                    "built": 0,
                    "from_memory": 0,
                    "from_store": 0,
                }
                to_build: List[str] = []
                for key in level:
                    blob = cache.get_blob(key)
                    if blob is not None:
                        stats["from_memory"] += 1
                    elif self.store is not None:
                        blob = self.store.get(key)
                        if blob is not None:
                            stats["from_store"] += 1
                            cache.put_blob(key, blob)
                    if blob is None:
                        to_build.append(key)
                    else:
                        blobs[key] = blob
                tasks = []
                for key in to_build:
                    node = plan.nodes[key]
                    parent_blob = blobs[node.parent] if node.parent is not None else None
                    tasks.append((node.config, node.phase, parent_blob))
                built = self._dispatch(pool, _build_node_blob, tasks)
                for key, blob in zip(to_build, built):
                    assert isinstance(blob, bytes)
                    node = plan.nodes[key]
                    blobs[key] = blob
                    builds += 1
                    stats["built"] += 1
                    if node.parent is not None:
                        restores += 1  # the build restored its parent
                    charged.add(plan.first_needed[key])
                    cache.put_blob(key, blob)
                    if self.store is not None:
                        self.store.put(key, blob)
                level_stats.append(stats)
                if depth0 >= 1:
                    for key in plan.levels[depth0 - 1]:
                        if key not in needed_as_leaf:
                            blobs.pop(key, None)

            leaf_order: List[str] = []
            group_map: Dict[str, _LeafGroup] = {}
            for index, spec in enumerate(specs):
                key = plan.leaf_keys[index]
                if key not in group_map:
                    group_map[key] = []
                    leaf_order.append(key)
                group_map[key].append((index, spec, index in charged))
            outcomes = self._dispatch(
                pool,
                _run_leaf_group,
                [(group_map[key], blobs[key]) for key in leaf_order],
            )
        finally:
            if pool is not None:
                pool.shutdown()
        restores += len(specs)
        indexed: List[Tuple[int, ReplicaResult]] = []
        for group_results in outcomes:
            indexed.extend(group_results)  # type: ignore[arg-type]
        indexed.sort(key=lambda pair: pair[0])
        return FleetResult(
            replicas=[result for _, result in indexed],
            prefix_builds=builds,
            prefix_restores=restores,
            prefix_groups=len(leaf_order),
            phase_units=sum(spec.depth for spec in specs),
            phase_builds=builds,
            strategy="tree",
            tree_stats={
                "depth": plan.depth,
                "nodes": len(plan.nodes),
                "levels": level_stats,
            },
            store_stats=_stable_stats(self.store.stats()) if self.store is not None else None,
            cache_stats=_stable_stats(cache.stats()),
        )


def _stable_stats(stats: dict) -> dict:
    """Stats safe for the worker-invariant merged payload and trace.

    Envelope byte sizes depend on which process serialized the blob
    (hash-randomized container layouts pickle to different lengths), so
    raw ``bytes`` totals would leak the worker count into the merged
    result. Counts are scheduling-independent; bytes stay available on
    :meth:`SnapshotStore.stats` / :meth:`SnapshotCache.stats` directly.
    """
    return {key: value for key, value in stats.items() if key != "bytes"}


def materialize_tree(specs: Sequence[ReplicaSpec], store: SnapshotStore) -> TreePlan:
    """Populate a disk store with every reuse-tree node for ``specs``.

    A warm-up helper (used by benches and smoke jobs): after it runs, a
    tree-strategy fleet over the same specs performs zero prefix builds.
    """
    plan = plan_tree(specs)
    blobs: Dict[str, bytes] = {}
    for level in plan.levels:
        for key in level:
            node = plan.nodes[key]
            blob = store.get(key)
            if blob is None:
                parent_blob = blobs[node.parent] if node.parent is not None else None
                blob = _build_node_blob(node.config, node.phase, parent_blob)
                store.put(key, blob)
            blobs[key] = blob
    return plan


__all__ = ["FleetRunner", "materialize_tree"]
