"""Deterministic process-pool replication runner.

:class:`FleetRunner` fans a list of :class:`~repro.fleet.spec.ReplicaSpec`
over shared-nothing worker processes and merges the results back in
**spec order** — never completion order — so the merged payload and the
merged trace are byte-identical for any worker count (enforced by
``tests/test_fleet_runner.py``).

How the fan-out preserves determinism:

* Specs are grouped by ``(config digest, prefix)`` — replicas that can
  share a prefix snapshot. Groups are dispatched *whole*: the snapshot
  cache lives inside one worker's group, so no cross-process state is
  shared and scheduling cannot change which replica pays the build.
* Within a group the prefix is built once and **every** replica —
  including the one whose turn triggered the build — starts from a
  restore of the frozen envelope. A replica therefore sees the exact
  same starting state whether prefix reuse is on or off, and whether it
  ran first or last.
* Workers are ``multiprocessing`` *spawn* processes, not forks: each
  re-imports the code fresh, so no parent-process state (open handles,
  module-level caches, RNG positions) leaks in to differ between the
  in-process path and the pooled path.
* Results carry their original spec index home and are re-slotted by
  it; the merge is a pure function of the spec list.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from typing import Dict, List, Sequence, Tuple

from repro.fleet.snapshot import (
    SnapshotCache,
    build_prefix,
    config_digest,
    restore_study,
    snapshot_study,
)
from repro.fleet.spec import FleetResult, ReplicaResult, ReplicaSpec
from repro.obs.trace import canonical_lines, label_replica, trace_lines

#: one group = the (spec index, spec) pairs sharing a prefix snapshot
_Group = List[Tuple[int, ReplicaSpec]]


def _run_replica(spec: ReplicaSpec, study: object, prefix_reused: bool) -> ReplicaResult:
    from repro.fleet.arms import resolve_arm

    arm = resolve_arm(spec.arm)
    payload = arm(study, spec.options())  # type: ignore[arg-type]
    trace: List[dict] | None = None
    if spec.config.observability:
        meta = {
            "replica": spec.name,
            "arm": spec.arm,
            "seed": spec.seed,
            "prefix": spec.prefix,
            "prefix_reused": prefix_reused,
        }
        lines = canonical_lines(trace_lines(study.obs, meta))  # type: ignore[attr-defined]
        trace = label_replica(lines, spec.name)  # type: ignore[assignment]
    return ReplicaResult(
        name=spec.name,
        arm=spec.arm,
        seed=spec.seed,
        prefix=spec.prefix,
        payload=payload,
        trace=trace,
        prefix_reused=prefix_reused,
    )


def _run_group(
    group: _Group, reuse_prefix: bool
) -> Tuple[List[Tuple[int, ReplicaResult]], int, int]:
    """Run one prefix-sharing group; returns (indexed results, builds, restores).

    Module-level on purpose: spawn workers resolve it by qualified name,
    and its arguments (specs + a bool) pickle without custom support.
    """
    results: List[Tuple[int, ReplicaResult]] = []
    builds = 0
    restores = 0
    if reuse_prefix:
        cache = SnapshotCache()
        for index, spec in group:
            study, hit = cache.get_or_build(spec.config, spec.prefix)
            results.append((index, _run_replica(spec, study, prefix_reused=hit)))
        builds, restores = cache.builds, cache.restores
    else:
        for index, spec in group:
            # build fresh, but still round-trip through an envelope so
            # the starting state is identical to the reuse path (a
            # dump/load normalizes hash-table layout either way)
            built = build_prefix(spec.config, spec.prefix)
            study = restore_study(snapshot_study(built, spec.prefix))
            builds += 1
            restores += 1
            results.append((index, _run_replica(spec, study, prefix_reused=False)))
    return results, builds, restores


def _group_specs(specs: Sequence[ReplicaSpec]) -> List[_Group]:
    """Group specs by (config digest, prefix), first-appearance order."""
    groups: Dict[Tuple[str, str], _Group] = {}
    order: List[Tuple[str, str]] = []
    for index, spec in enumerate(specs):
        key = (config_digest(spec.config), spec.prefix)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((index, spec))
    return [groups[key] for key in order]


class FleetRunner:
    """Runs replica specs across ``workers`` spawn processes.

    ``workers <= 1`` runs everything in-process through the *same*
    group/snapshot code path, so the pooled and serial outputs are
    byte-comparable by construction. ``reuse_prefix=False`` disables the
    snapshot cache (every replica pays its own build) — used by the
    bench scenario to price what the cache saves.
    """

    def __init__(self, workers: int = 1, reuse_prefix: bool = True) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.reuse_prefix = reuse_prefix

    def run(self, specs: Sequence[ReplicaSpec]) -> FleetResult:
        specs = list(specs)
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("replica names must be unique within a fleet")
        groups = _group_specs(specs)
        indexed: List[Tuple[int, ReplicaResult]] = []
        builds = 0
        restores = 0
        if self.workers <= 1 or len(groups) <= 1:
            outcomes = [_run_group(group, self.reuse_prefix) for group in groups]
        else:
            context = get_context("spawn")
            max_workers = min(self.workers, len(groups))
            with ProcessPoolExecutor(max_workers=max_workers, mp_context=context) as pool:
                futures = [
                    pool.submit(_run_group, group, self.reuse_prefix) for group in groups
                ]
                outcomes = [future.result() for future in futures]
        for group_results, group_builds, group_restores in outcomes:
            indexed.extend(group_results)
            builds += group_builds
            restores += group_restores
        indexed.sort(key=lambda pair: pair[0])
        return FleetResult(
            replicas=[result for _, result in indexed],
            prefix_builds=builds,
            prefix_restores=restores,
            prefix_groups=len(groups),
        )


__all__ = ["FleetRunner"]
