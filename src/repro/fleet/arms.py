"""Fleet arms: what one replica runs after its prefix is in place.

An *arm* is a named continuation — it receives a study already advanced
to the replica's prefix phase (world built, or signatures learned) and
drives the remaining pipeline, returning a JSON-able payload. Arms are
plain module-level functions so a spawn worker can resolve them by name
without pickling callables across the process boundary.

Payload rule: everything an arm returns must be JSON-serializable and a
pure function of the study's seeded state — no wall time, no process
identity — because the merged fleet payload is compared byte-for-byte
across worker counts.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core import experiments as E
from repro.core import reporting as R
from repro.core.experiments import render_study_report
from repro.core.study import INSTA_STAR, MeasurementDataset, Study
from repro.interventions.experiment import BroadInterventionPlan, NarrowInterventionPlan
from repro.platform.models import ActionStatus

ArmFn = Callable[[Study, dict], dict]


def _int_option(options: dict, key: str, default: int) -> int:
    value = options.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"arm option {key!r} must be an int, got {value!r}")
    return value


def _measure(study: Study, options: dict) -> MeasurementDataset:
    days = options.get("measurement_days")
    if days is not None and (not isinstance(days, int) or isinstance(days, bool)):
        raise TypeError(f"arm option 'measurement_days' must be an int, got {days!r}")
    return study.run_measurement(days_=days)


def _dataset_summary(dataset: MeasurementDataset) -> dict:
    services = {}
    for name in sorted(dataset.analytics):
        analytics = dataset.analytics[name]
        services[name] = {
            "total_customers": analytics.total_customers(),
            "long_term_customers": len(analytics.long_term_customers()),
            "attributed_actions": len(dataset.attributed[name].records),
        }
    return {
        "window_days": dataset.window_days,
        "start_day": dataset.start_day,
        "end_day": dataset.end_day,
        "services": services,
    }


def arm_standard(study: Study, options: dict) -> dict:
    """Measurement window only: per-service customer-base counts."""
    dataset = _measure(study, options)
    return _dataset_summary(dataset)


def arm_report(study: Study, options: dict) -> dict:
    """Measurement window + the full run-study report text.

    Uses the same section assembly as ``python -m repro run-study``, so
    a fleet replica's report is byte-identical to a serial run of the
    same config.
    """
    dataset = _measure(study, options)
    summary = _dataset_summary(dataset)
    summary["report"] = render_study_report(study, dataset)
    return summary


def _status_counts(attributed: dict) -> dict:
    blocked = 0
    removed = 0
    for activity in attributed.values():
        for record in activity.records:
            if record.status is ActionStatus.BLOCKED:
                blocked += 1
            elif record.status is ActionStatus.REMOVED:
                removed += 1
    return {"blocked_actions": blocked, "removed_actions": removed}


def _maybe_measure(study: Study, options: dict) -> MeasurementDataset | None:
    """Intervention arms treat ``measurement_days == 0`` as "skip":
    calibration draws on the honeypot-phase log, so a pre-intervention
    measurement window is optional context, not a prerequisite."""
    if options.get("measurement_days") == 0:
        return None
    return _measure(study, options)


def arm_narrow(study: Study, options: dict) -> dict:
    """Optional short measurement, then the Section 6.3 narrow intervention."""
    dataset = _maybe_measure(study, options)
    outcome = study.run_narrow_intervention(
        NarrowInterventionPlan(duration_days=_int_option(options, "narrow_days", 14)),
        calibration_days=_int_option(options, "calibration_days", 5),
    )
    payload = _dataset_summary(dataset) if dataset is not None else {}
    payload.update(_status_counts(outcome.attributed))
    payload["thresholds"] = len(outcome.thresholds)
    payload["fig5"] = R.render_fig5(E.fig5_median_follows(outcome, service=INSTA_STAR))
    return payload


def arm_broad(study: Study, options: dict) -> dict:
    """Optional short measurement, then the Section 6.4 broad intervention."""
    dataset = _maybe_measure(study, options)
    outcome = study.run_broad_intervention(
        BroadInterventionPlan(
            delay_days=_int_option(options, "delay_days", 6),
            block_days=_int_option(options, "block_days", 8),
        ),
        calibration_days=_int_option(options, "calibration_days", 5),
    )
    payload = _dataset_summary(dataset) if dataset is not None else {}
    payload.update(_status_counts(outcome.attributed))
    payload["fig7"] = R.render_fig7(E.fig7_broad_follows(outcome, service=INSTA_STAR))
    return payload


#: arm name → runner; workers resolve arms from this table by name
ARMS: Dict[str, ArmFn] = {
    "standard": arm_standard,
    "report": arm_report,
    "narrow": arm_narrow,
    "broad": arm_broad,
}


def resolve_arm(name: str) -> ArmFn:
    try:
        return ARMS[name]
    except KeyError:
        raise ValueError(f"unknown arm {name!r} (known: {sorted(ARMS)})") from None


__all__ = [
    "ARMS",
    "ArmFn",
    "arm_broad",
    "arm_narrow",
    "arm_report",
    "arm_standard",
    "resolve_arm",
]
