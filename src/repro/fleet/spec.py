"""Replica specifications and merged fleet results.

A :class:`ReplicaSpec` names one independent study run: a config (which
carries the seed), an *arm* (what to run once the shared prefix is in
place — see :mod:`repro.fleet.arms`), and the prefix phase it resumes
from. A fleet is just an ordered list of specs; the merge contract is
that fleet output is a pure function of that list — results are always
assembled in **spec order**, never completion order, so the merged
payload and merged trace are byte-identical for any worker count.

Prefix phases form a chain (``build-world → honeypot → signatures``);
:data:`PREFIX_DEPTH` gives each phase its 1-based position. The sweep
orchestrator (:mod:`repro.fleet.tree`) reuses snapshots along that
chain, so the cost accounting here is phase-granular: ``phase_units``
counts the phase-steps the fleet *would* execute with no reuse at all
(one per chain link per replica) and ``phase_builds`` the steps it
actually executed; their ratio is the headline
``build_cost_avoided_frac``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.config import StudyConfig

#: bumped whenever the merged fleet payload shape changes incompatibly
#: (v2: phase-granular snapshot accounting + tree/store stats blocks)
FLEET_SCHEMA_VERSION = 2

#: snapshot point: immediately after world construction
PREFIX_BUILD_WORLD = "build-world"
#: snapshot point: after the honeypot phase, before signature learning
PREFIX_HONEYPOT = "honeypot"
#: snapshot point: after the honeypot phase and signature learning
PREFIX_SIGNATURES = "signatures"
#: every sanctioned prefix phase, in pipeline order
PREFIXES = (PREFIX_BUILD_WORLD, PREFIX_HONEYPOT, PREFIX_SIGNATURES)
#: 1-based chain position of each prefix phase
PREFIX_DEPTH = {phase: depth for depth, phase in enumerate(PREFIXES, start=1)}


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica: a config + named seed, an arm label, a prefix phase.

    ``name`` must be unique within a fleet — it keys the replica's
    segment in the merged trace. ``arm_options`` is an ordered tuple of
    ``(key, value)`` pairs (kept hashable and picklable) passed to the
    arm runner as a dict.
    """

    name: str
    config: StudyConfig
    arm: str = "standard"
    prefix: str = PREFIX_SIGNATURES
    arm_options: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("replica name must be non-empty")
        if self.prefix not in PREFIXES:
            raise ValueError(f"unknown prefix {self.prefix!r} (known: {PREFIXES})")

    @property
    def seed(self) -> int:
        return self.config.seed

    @property
    def depth(self) -> int:
        """Chain length of this replica's prefix (phase-units it costs)."""
        return PREFIX_DEPTH[self.prefix]

    def options(self) -> dict[str, object]:
        return dict(self.arm_options)


@dataclass
class ReplicaResult:
    """One replica's outcome: a JSON-able payload and its trace lines."""

    name: str
    arm: str
    seed: int
    prefix: str
    payload: dict
    #: canonical (wall-stripped) trace lines, each carrying a
    #: ``replica`` label; None when the config ran with observability off
    trace: list[dict] | None
    #: whether this replica resumed from a prefix snapshot (False means
    #: it is the replica charged for building part of its own chain)
    prefix_reused: bool


#: label carried by the fleet-level roll-up trace segment
FLEET_TRACE_REPLICA = "__fleet__"

#: root span name -> chain-depth label for the fleet cost roll-up: which
#: prefix-chain link a span's cost belongs to (anything else is work
#: past the snapshot chain — arms, measurement, analysis)
_COST_ROOT_DEPTH = {
    "build-world": "1",
    "honeypot-phase": "2",
    "learn-signatures": "3",
}
_COST_POST_DEPTH = "post"


@dataclass
class FleetResult:
    """Merged outcome of one fleet run, in spec order.

    ``prefix_builds``/``prefix_restores`` count snapshot-node builds and
    envelope restores; ``phase_units``/``phase_builds`` are the
    phase-granular cost ledger (see the module docstring).
    ``tree_stats``/``store_stats`` are present when the run used the
    tree scheduler / a disk snapshot store.
    """

    replicas: list[ReplicaResult]
    prefix_builds: int
    prefix_restores: int
    prefix_groups: int
    phase_units: int = 0
    phase_builds: int = 0
    #: "tree" (nested prefix reuse), "flat" (whole-chain groups), or
    #: "no-reuse" (every replica rebuilds its own chain)
    strategy: str = "flat"
    tree_stats: dict | None = None
    store_stats: dict | None = None
    cache_stats: dict | None = field(default=None, repr=False)

    @property
    def build_cost_avoided_frac(self) -> float:
        """Fraction of no-reuse phase-steps the fleet did not execute."""
        if self.phase_units > 0:
            return 1.0 - self.phase_builds / self.phase_units
        if not self.replicas:
            return 0.0
        return 1.0 - self.prefix_builds / len(self.replicas)

    def merged_payload(self) -> dict:
        """The spec-order merged payload (worker count independent)."""
        snapshot: dict = {
            "strategy": self.strategy,
            "prefix_groups": self.prefix_groups,
            "prefix_builds": self.prefix_builds,
            "prefix_restores": self.prefix_restores,
            "phase_units": self.phase_units,
            "phase_builds": self.phase_builds,
            "build_cost_avoided_frac": self.build_cost_avoided_frac,
        }
        if self.tree_stats is not None:
            snapshot["tree"] = self.tree_stats
        if self.store_stats is not None:
            snapshot["store"] = self.store_stats
        return {
            "schema_version": FLEET_SCHEMA_VERSION,
            "replica_count": len(self.replicas),
            "replicas": [
                {
                    "name": r.name,
                    "arm": r.arm,
                    "seed": r.seed,
                    "prefix": r.prefix,
                    "prefix_reused": r.prefix_reused,
                    "payload": r.payload,
                }
                for r in self.replicas
            ],
            "snapshot": snapshot,
        }

    def merged_payload_text(self) -> str:
        """Canonical JSON of the merged payload (byte-comparable)."""
        return json.dumps(self.merged_payload(), sort_keys=True, indent=2) + "\n"

    def merged_trace_lines(self) -> list[dict]:
        """Spec-order concatenation of every replica's trace segment."""
        merged: list[dict] = []
        for replica in self.replicas:
            if replica.trace is not None:
                merged.extend(replica.trace)
        return merged

    def _self_cost_by_depth(self) -> dict[tuple[str, str], int]:
        """Profiler self-costs summed by (prefix-chain depth, kind).

        Walks every replica trace's span lines: a span's ``cost_self``
        dict (present when the fleet ran with profiling on) is charged
        to the chain link its *root* span names — ``build-world`` is
        depth 1, ``honeypot-phase`` depth 2, ``learn-signatures`` depth
        3, everything else ``post``. Summing *self* costs keeps the
        ledger double-count-free: each work unit is charged exactly
        once. Pure function of the merged result, so the roll-up is
        byte-identical for any worker count.
        """
        totals: dict[tuple[str, str], int] = {}
        for replica in self.replicas:
            if replica.trace is None:
                continue
            spans = [
                line
                for line in replica.trace
                if isinstance(line, dict) and line.get("kind") == "span"
            ]
            by_id = {
                span["id"]: span
                for span in spans
                if isinstance(span.get("id"), int)
            }
            for span in spans:
                attrs = span.get("attrs")
                if not isinstance(attrs, dict):
                    continue
                self_cost = attrs.get("cost_self")
                if not isinstance(self_cost, dict):
                    continue
                root = span
                while root.get("parent") is not None and root.get("parent") in by_id:
                    root = by_id[root["parent"]]
                depth = _COST_ROOT_DEPTH.get(str(root.get("name")), _COST_POST_DEPTH)
                for kind, units in self_cost.items():
                    if isinstance(units, int) and not isinstance(units, bool) and units:
                        key = (depth, str(kind))
                        totals[key] = totals.get(key, 0) + units
        return totals

    def fleet_trace_segment(self) -> list[dict]:
        """A roll-up trace segment for the whole fleet.

        One header + metrics-snapshot segment labelled
        :data:`FLEET_TRACE_REPLICA`, carrying the node build/restore and
        store counters as ordinary obs metrics so ``repro.obs summarize
        --sweep`` (and ``validate``) can consume a sweep trace with the
        standard tooling. Pure function of the merged result —
        byte-identical for any worker count.
        """
        from repro.obs.facade import Observability
        from repro.obs.trace import canonical_lines, label_replica, trace_lines

        obs = Observability(enabled=True)
        obs.counter("fleet.replicas").inc(len(self.replicas))
        obs.counter("fleet.prefix.builds").inc(self.prefix_builds)
        obs.counter("fleet.prefix.restores").inc(self.prefix_restores)
        obs.counter("fleet.phase.units").inc(self.phase_units)
        obs.counter("fleet.phase.builds").inc(self.phase_builds)
        if self.tree_stats is not None:
            for level in self.tree_stats.get("levels", []):
                phase = str(level.get("phase"))
                obs.counter("fleet.node.count", phase=phase).inc(level.get("nodes", 0))
                obs.counter("fleet.node.builds", phase=phase).inc(level.get("built", 0))
                obs.counter("fleet.node.restores", phase=phase, source="disk").inc(
                    level.get("from_store", 0)
                )
                obs.counter("fleet.node.restores", phase=phase, source="memory").inc(
                    level.get("from_memory", 0)
                )
        if self.store_stats is not None:
            for key in ("hits", "misses", "writes", "corruptions", "evictions"):
                obs.counter(f"fleet.store.{key}").inc(self.store_stats.get(key, 0))
            if "bytes" in self.store_stats:
                obs.gauge("fleet.store.bytes").set(self.store_stats["bytes"])
        if self.cache_stats is not None:
            obs.counter("fleet.snapshot.evictions").inc(self.cache_stats.get("evictions", 0))
            if "bytes" in self.cache_stats:
                obs.gauge("fleet.snapshot.bytes").set(self.cache_stats["bytes"])
        # per-tree-depth cost attribution: where the fleet's work units
        # actually went, chain link by chain link (profiled runs only)
        for (depth, kind), units in sorted(self._self_cost_by_depth().items()):
            obs.counter("fleet.cost.self_units", depth=depth, kind=kind).inc(units)
        meta = {
            "replica": FLEET_TRACE_REPLICA,
            "fleet": {
                "strategy": self.strategy,
                "replica_count": len(self.replicas),
                "prefix_groups": self.prefix_groups,
                "phase_units": self.phase_units,
                "phase_builds": self.phase_builds,
                "build_cost_avoided_frac": self.build_cost_avoided_frac,
            },
        }
        lines = canonical_lines(trace_lines(obs, meta))
        return label_replica(lines, FLEET_TRACE_REPLICA)  # type: ignore[return-value]


def seed_sweep(
    base_config: StudyConfig,
    seeds: list[int],
    arm: str = "standard",
    prefix: str = PREFIX_SIGNATURES,
    arm_options: tuple[tuple[str, object], ...] = (),
) -> list[ReplicaSpec]:
    """Specs for the same config replicated across ``seeds``.

    The canonical multi-seed fleet: one replica per seed, named
    ``seed-<seed>/<arm>``. A thin shim over the manifest expansion path
    (:func:`repro.fleet.manifest.expand_manifest`) so there is exactly
    one sweep entry point; kept here for import compatibility.
    """
    from repro.fleet.manifest import ArmSpec, SweepManifest, expand_manifest

    manifest = SweepManifest(
        name=f"seed-sweep/{arm}",
        prefix=prefix,
        seeds=tuple(seeds),
        arms=(ArmSpec(arm=arm, options=tuple(arm_options)),),
    )
    return expand_manifest(manifest, base_config=base_config)


__all__ = [
    "FLEET_SCHEMA_VERSION",
    "FLEET_TRACE_REPLICA",
    "PREFIX_BUILD_WORLD",
    "PREFIX_DEPTH",
    "PREFIX_HONEYPOT",
    "PREFIX_SIGNATURES",
    "PREFIXES",
    "FleetResult",
    "ReplicaResult",
    "ReplicaSpec",
    "seed_sweep",
]
