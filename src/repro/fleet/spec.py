"""Replica specifications and merged fleet results.

A :class:`ReplicaSpec` names one independent study run: a config (which
carries the seed), an *arm* (what to run once the shared prefix is in
place — see :mod:`repro.fleet.arms`), and the prefix phase it resumes
from. A fleet is just an ordered list of specs; the merge contract is
that fleet output is a pure function of that list — results are always
assembled in **spec order**, never completion order, so the merged
payload and merged trace are byte-identical for any worker count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.config import StudyConfig

#: bumped whenever the merged fleet payload shape changes incompatibly
FLEET_SCHEMA_VERSION = 1

#: snapshot point: immediately after world construction
PREFIX_BUILD_WORLD = "build-world"
#: snapshot point: after the honeypot phase and signature learning
PREFIX_SIGNATURES = "signatures"
#: every sanctioned prefix phase, in pipeline order
PREFIXES = (PREFIX_BUILD_WORLD, PREFIX_SIGNATURES)


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica: a config + named seed, an arm label, a prefix phase.

    ``name`` must be unique within a fleet — it keys the replica's
    segment in the merged trace. ``arm_options`` is an ordered tuple of
    ``(key, value)`` pairs (kept hashable and picklable) passed to the
    arm runner as a dict.
    """

    name: str
    config: StudyConfig
    arm: str = "standard"
    prefix: str = PREFIX_SIGNATURES
    arm_options: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("replica name must be non-empty")
        if self.prefix not in PREFIXES:
            raise ValueError(f"unknown prefix {self.prefix!r} (known: {PREFIXES})")

    @property
    def seed(self) -> int:
        return self.config.seed

    def options(self) -> dict[str, object]:
        return dict(self.arm_options)


@dataclass
class ReplicaResult:
    """One replica's outcome: a JSON-able payload and its trace lines."""

    name: str
    arm: str
    seed: int
    prefix: str
    payload: dict
    #: canonical (wall-stripped) trace lines, each carrying a
    #: ``replica`` label; None when the config ran with observability off
    trace: list[dict] | None
    #: whether this replica resumed from a prefix snapshot (False means
    #: it paid the full build itself)
    prefix_reused: bool


@dataclass
class FleetResult:
    """Merged outcome of one fleet run, in spec order."""

    replicas: list[ReplicaResult]
    prefix_builds: int
    prefix_restores: int
    prefix_groups: int

    @property
    def build_cost_avoided_frac(self) -> float:
        """Fraction of replicas that did not pay the prefix build."""
        if not self.replicas:
            return 0.0
        return 1.0 - self.prefix_builds / len(self.replicas)

    def merged_payload(self) -> dict:
        """The spec-order merged payload (worker count independent)."""
        return {
            "schema_version": FLEET_SCHEMA_VERSION,
            "replica_count": len(self.replicas),
            "replicas": [
                {
                    "name": r.name,
                    "arm": r.arm,
                    "seed": r.seed,
                    "prefix": r.prefix,
                    "prefix_reused": r.prefix_reused,
                    "payload": r.payload,
                }
                for r in self.replicas
            ],
            "snapshot": {
                "prefix_groups": self.prefix_groups,
                "prefix_builds": self.prefix_builds,
                "prefix_restores": self.prefix_restores,
                "build_cost_avoided_frac": self.build_cost_avoided_frac,
            },
        }

    def merged_payload_text(self) -> str:
        """Canonical JSON of the merged payload (byte-comparable)."""
        return json.dumps(self.merged_payload(), sort_keys=True, indent=2) + "\n"

    def merged_trace_lines(self) -> list[dict]:
        """Spec-order concatenation of every replica's trace segment."""
        merged: list[dict] = []
        for replica in self.replicas:
            if replica.trace is not None:
                merged.extend(replica.trace)
        return merged


def seed_sweep(
    base_config: StudyConfig,
    seeds: list[int],
    arm: str = "standard",
    prefix: str = PREFIX_SIGNATURES,
    arm_options: tuple[tuple[str, object], ...] = (),
) -> list[ReplicaSpec]:
    """Specs for the same config replicated across ``seeds``.

    The canonical multi-seed fleet: one replica per seed, named
    ``seed-<seed>/<arm>``.
    """
    from dataclasses import replace

    return [
        ReplicaSpec(
            name=f"seed-{seed}/{arm}",
            config=replace(base_config, seed=seed),
            arm=arm,
            prefix=prefix,
            arm_options=arm_options,
        )
        for seed in seeds
    ]


__all__ = [
    "FLEET_SCHEMA_VERSION",
    "PREFIX_BUILD_WORLD",
    "PREFIX_SIGNATURES",
    "PREFIXES",
    "FleetResult",
    "ReplicaResult",
    "ReplicaSpec",
    "seed_sweep",
]
