"""Nested prefix-snapshot reuse trees.

The flat cache keys a whole prefix chain by ``(config digest, prefix)``
— two configs differing only in ``honeypot_days`` share *nothing*, even
though they build the identical world. This module replaces that key
with a **reuse tree**: one node per (chain position, phase-relevant
config slice), where a child snapshot is derived from its parent's
frozen bytes. Replicas that share a world but diverge at honeypot
config fork at the deepest common ancestor, and a 200-replica threshold
sweep pays world-build once.

Phase-scoped sub-digests
------------------------
Each chain link consumes a disjoint slice of :class:`StudyConfig`:

* ``build-world`` — everything except the later slices. Membership is
  computed by *exclusion*, so a config field added in a future PR lands
  in the world slice by default: conservative (it may split worlds that
  could have been shared) but never wrong (it cannot silently share
  state across configs that differ).
* ``honeypot`` — :data:`HONEYPOT_FIELDS` (deployment batch sizes, the
  inactive-baseline count, phase length).
* ``signatures`` — nothing: learning is a pure function of the state
  the honeypot phase left behind.
* ``measurement_days`` is consumed only after every prefix phase and
  belongs to no node (:data:`POST_PREFIX_FIELDS`).

A node's key is the running BLAKE2 digest of its ancestry — parent key,
phase name, the canonical JSON of the phase slice, and
:data:`~repro.fleet.snapshot.SNAPSHOT_SCHEMA_VERSION` (so a schema bump
orphans on-disk nodes the same way it orphans in-memory envelopes).
Equal keys ⇒ byte-equivalent snapshots, because every ancestor slice
agreed.

Config grafting
---------------
A node's snapshot embeds the *representative* config — the first spec
(in spec order) that needed the node. Sharers may legitimately differ
in slices no ancestor consumed (e.g. ``measurement_days``), so whoever
restores a node's bytes must graft its own config back on before
consuming any post-node field; :func:`graft_config` is that one
sanctioned mutation point, and it refuses to change any field an
ancestor phase already consumed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.fleet.snapshot import SNAPSHOT_SCHEMA_VERSION, _canonical
from repro.fleet.spec import PREFIX_BUILD_WORLD, PREFIX_DEPTH, PREFIXES, ReplicaSpec

#: StudyConfig fields consumed by the honeypot phase (and nothing earlier)
HONEYPOT_FIELDS: Tuple[str, ...] = (
    "honeypots_empty_per_batch",
    "honeypots_lived_in_per_batch",
    "inactive_honeypots",
    "honeypot_days",
)

#: fields consumed only after every prefix phase — they never split a node
POST_PREFIX_FIELDS: Tuple[str, ...] = ("measurement_days",)


def phase_fields(phase: str) -> Tuple[str, ...]:
    """The StudyConfig field names whose values the phase consumes."""
    if phase == PREFIX_BUILD_WORLD:
        later = set(HONEYPOT_FIELDS) | set(POST_PREFIX_FIELDS)
        return tuple(f.name for f in fields(StudyConfig) if f.name not in later)
    if phase == "honeypot":
        return HONEYPOT_FIELDS
    if phase == "signatures":
        return ()
    raise ValueError(f"unknown prefix phase {phase!r} (known: {PREFIXES})")


def phase_subdigest(config: StudyConfig, phase: str) -> str:
    """Digest of the config slice one phase consumes."""
    slice_ = {name: _canonical(getattr(config, name)) for name in phase_fields(phase)}
    text = json.dumps(slice_, sort_keys=True)
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def node_chain(config: StudyConfig, prefix: str) -> List[Tuple[str, str]]:
    """``(phase, node key)`` pairs from the world root down to ``prefix``.

    Keys are cumulative: each folds the parent key, the phase, the
    phase's sub-digest, and the snapshot schema version.
    """
    if prefix not in PREFIXES:
        raise ValueError(f"unknown prefix {prefix!r} (known: {PREFIXES})")
    chain: List[Tuple[str, str]] = []
    parent_key = ""
    for phase in PREFIXES[: PREFIX_DEPTH[prefix]]:
        text = json.dumps(
            [parent_key, phase, phase_subdigest(config, phase), SNAPSHOT_SCHEMA_VERSION]
        )
        key = hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()
        chain.append((phase, key))
        parent_key = key
    return chain


def graft_config(study: Study, config: StudyConfig, depth: int) -> None:
    """Swap a restored study's embedded config for a sharer's config.

    ``depth`` is the chain position of the snapshot the study was
    restored from — only the slices of phases already consumed must
    agree, which is exactly what equal node keys guarantee. The guard
    re-checks that invariant at runtime so a field-slicing bug fails
    loudly instead of silently grafting divergent world state.
    """
    if not 1 <= depth <= len(PREFIXES):
        raise ValueError(f"depth must be in 1..{len(PREFIXES)}, got {depth}")
    current = study.config
    if current is config:
        return
    for phase in PREFIXES[:depth]:
        if phase_subdigest(current, phase) != phase_subdigest(config, phase):
            raise ValueError(
                f"cannot graft config: {phase!r} slice differs from the "
                "snapshot's representative config"
            )
    study.config = config


@dataclass(frozen=True)
class PrefixNode:
    """One reuse-tree node: a snapshot point shared by ≥1 replicas."""

    key: str
    phase: str
    #: 1-based chain position (``PREFIX_DEPTH[phase]``)
    depth: int
    #: parent node key; None for world roots
    parent: Optional[str]
    #: the first spec (in spec order) that needs this node — its config
    #: builds the node's snapshot
    config: StudyConfig


@dataclass
class TreePlan:
    """The maximal reuse tree over one fleet's replica specs."""

    #: node key → node
    nodes: Dict[str, PrefixNode]
    #: node keys grouped by depth (levels[0] = world roots), each level
    #: in first-appearance spec order
    levels: List[List[str]]
    #: per spec index, the key of its chain's deepest node
    leaf_keys: List[str]
    #: node key → smallest spec index whose chain contains the node
    first_needed: Dict[str, int]

    @property
    def depth(self) -> int:
        return len(self.levels)

    def children(self, key: Optional[str]) -> List[str]:
        """Child keys of ``key`` (None = the world roots), level order."""
        return [
            k
            for level in self.levels
            for k in level
            if self.nodes[k].parent == key
        ]


def plan_tree(specs: Sequence[ReplicaSpec]) -> TreePlan:
    """Plan the maximal reuse tree for a replica set.

    Walks every spec's node chain in spec order; the first spec to
    mention a key becomes the node's representative. The result is a
    pure function of the spec list — no scheduling state involved — so
    every worker count sees the identical tree.
    """
    nodes: Dict[str, PrefixNode] = {}
    levels: List[List[str]] = []
    leaf_keys: List[str] = []
    first_needed: Dict[str, int] = {}
    for index, spec in enumerate(specs):
        parent_key: Optional[str] = None
        chain = node_chain(spec.config, spec.prefix)
        for depth, (phase, key) in enumerate(chain, start=1):
            if key not in nodes:
                nodes[key] = PrefixNode(
                    key=key,
                    phase=phase,
                    depth=depth,
                    parent=parent_key,
                    config=spec.config,
                )
                while len(levels) < depth:
                    levels.append([])
                levels[depth - 1].append(key)
                first_needed[key] = index
            parent_key = key
        leaf_keys.append(chain[-1][1])
    return TreePlan(
        nodes=nodes, levels=levels, leaf_keys=leaf_keys, first_needed=first_needed
    )


__all__ = [
    "HONEYPOT_FIELDS",
    "POST_PREFIX_FIELDS",
    "PrefixNode",
    "TreePlan",
    "graft_config",
    "node_chain",
    "phase_fields",
    "phase_subdigest",
    "plan_tree",
]
