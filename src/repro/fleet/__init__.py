"""Deterministic multi-process replication: specs, snapshots, sweeps.

The fleet layer turns one seeded :class:`~repro.core.study.Study` into
many — seed sweeps, intervention arms, ablations, declarative manifest
grids — without giving up the repo's bit-reproducibility contract. See
``DESIGN.md`` §10 for the spec/merge ordering contract and §13 for the
sweep orchestrator (reuse trees, the disk snapshot store, manifests).
"""

from repro.fleet.arms import ARMS, resolve_arm
from repro.fleet.manifest import (
    MANIFEST_SCHEMA_VERSION,
    SERVICE_MIXES,
    ArmSpec,
    ManifestError,
    SweepManifest,
    expand_manifest,
    load_manifest,
    parse_manifest,
)
from repro.fleet.runner import FleetRunner, materialize_tree
from repro.fleet.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotCache,
    SnapshotError,
    advance_prefix,
    build_prefix,
    config_digest,
    restore_study,
    snapshot_study,
)
from repro.fleet.spec import (
    FLEET_SCHEMA_VERSION,
    FLEET_TRACE_REPLICA,
    PREFIX_BUILD_WORLD,
    PREFIX_DEPTH,
    PREFIX_HONEYPOT,
    PREFIX_SIGNATURES,
    PREFIXES,
    FleetResult,
    ReplicaResult,
    ReplicaSpec,
    seed_sweep,
)
from repro.fleet.store import (
    STORE_SCHEMA_VERSION,
    SnapshotStore,
    remove_store_root,
    temporary_store_root,
)
from repro.fleet.tree import (
    PrefixNode,
    TreePlan,
    graft_config,
    node_chain,
    phase_fields,
    phase_subdigest,
    plan_tree,
)

__all__ = [
    "ARMS",
    "FLEET_SCHEMA_VERSION",
    "FLEET_TRACE_REPLICA",
    "MANIFEST_SCHEMA_VERSION",
    "PREFIX_BUILD_WORLD",
    "PREFIX_DEPTH",
    "PREFIX_HONEYPOT",
    "PREFIX_SIGNATURES",
    "PREFIXES",
    "SERVICE_MIXES",
    "SNAPSHOT_SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "ArmSpec",
    "FleetResult",
    "FleetRunner",
    "ManifestError",
    "PrefixNode",
    "ReplicaResult",
    "ReplicaSpec",
    "SnapshotCache",
    "SnapshotError",
    "SnapshotStore",
    "SweepManifest",
    "TreePlan",
    "advance_prefix",
    "build_prefix",
    "config_digest",
    "expand_manifest",
    "graft_config",
    "load_manifest",
    "materialize_tree",
    "node_chain",
    "parse_manifest",
    "phase_fields",
    "phase_subdigest",
    "plan_tree",
    "remove_store_root",
    "resolve_arm",
    "restore_study",
    "seed_sweep",
    "snapshot_study",
    "temporary_store_root",
]
