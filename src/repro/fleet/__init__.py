"""Deterministic multi-process replication: specs, snapshots, runner.

The fleet layer turns one seeded :class:`~repro.core.study.Study` into
many — seed sweeps, intervention arms, ablations — without giving up
the repo's bit-reproducibility contract. See ``DESIGN.md`` §10 for the
spec/merge ordering contract and the snapshot invalidation rule.
"""

from repro.fleet.arms import ARMS, resolve_arm
from repro.fleet.runner import FleetRunner
from repro.fleet.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotCache,
    SnapshotError,
    build_prefix,
    config_digest,
    restore_study,
    snapshot_study,
)
from repro.fleet.spec import (
    FLEET_SCHEMA_VERSION,
    PREFIX_BUILD_WORLD,
    PREFIX_SIGNATURES,
    PREFIXES,
    FleetResult,
    ReplicaResult,
    ReplicaSpec,
    seed_sweep,
)

__all__ = [
    "ARMS",
    "FLEET_SCHEMA_VERSION",
    "PREFIX_BUILD_WORLD",
    "PREFIX_SIGNATURES",
    "PREFIXES",
    "SNAPSHOT_SCHEMA_VERSION",
    "FleetResult",
    "FleetRunner",
    "ReplicaResult",
    "ReplicaSpec",
    "SnapshotCache",
    "SnapshotError",
    "build_prefix",
    "config_digest",
    "resolve_arm",
    "restore_study",
    "seed_sweep",
    "snapshot_study",
]
