"""Declarative sweep manifests.

``python -m repro sweep manifest.json`` turns a small JSON grid spec
into a full replica fleet. A manifest names a preset and the axes to
sweep — seeds, population sizes, honeypot-phase lengths, measurement
windows, service mixes — plus the arm variants to run at every grid
point (each arm may carry its own option grid, e.g. a threshold axis).
Expansion is a pure function of the manifest (plus an optional
explicit base config), so the same file always yields the same specs
in the same order, and the fleet merge contract takes it from there.

Expansion order is fixed: ``seed → population → honeypot_days →
measurement_days → service_mix → arm variant``, depth-first. Replica
names encode the grid point (axes the manifest doesn't sweep are
omitted)::

    seed-42/pop260/hp3/md5/mix-paid-only/narrow-narrow_days7

The orchestration payoff: every axis *after* the seed/population axes
shares reuse-tree ancestry (see :mod:`repro.fleet.tree`) — all
``honeypot_days`` variants of one seeded world fork from the same
world-build node, every ``measurement_days`` variant shares the
*entire* prefix chain (the window length is post-prefix), and every
arm variant of one grid point forks from the same signatures node.

``seed_sweep`` (the historical helper in :mod:`repro.fleet.spec`) is a
thin wrapper over :func:`expand_manifest`, so there is exactly one
sweep entry point.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.core.config import StudyConfig
from repro.fleet.spec import PREFIX_SIGNATURES, PREFIXES, ReplicaSpec

#: bumped whenever the manifest JSON shape changes incompatibly
MANIFEST_SCHEMA_VERSION = 1

#: preset name → config factory (mirrors the CLI's preset table)
PRESET_FACTORIES = {
    "tiny": StudyConfig.tiny,
    "small": StudyConfig.small,
    "paper": StudyConfig.paper_shaped,
}

#: named service mixes: mix name → plan fields *disabled* (set to None).
#: Hublaagram and Followersgratis are the paper's free collusion-style
#: services; Instalex/Instazood/Boostgram are the paid automation tier.
SERVICE_MIXES: Dict[str, Tuple[str, ...]] = {
    "all": (),
    "no-hublaagram": ("hublaagram",),
    "no-followersgratis": ("followersgratis",),
    "paid-only": ("hublaagram", "followersgratis"),
    "free-only": ("instalex", "instazood", "boostgram"),
}

#: JSON option values an arm may carry
_OPTION_TYPES = (int, float, str, bool, type(None))


class ManifestError(ValueError):
    """A sweep manifest failed schema or semantic validation."""


@dataclass(frozen=True)
class ArmSpec:
    """One arm variant family: an arm name, fixed options, an option grid.

    ``grid`` sweeps option values: each combination becomes its own
    replica, labelled ``<name>-<key><value>...`` in grid-key order.
    """

    arm: str
    name: Optional[str] = None
    options: Tuple[Tuple[str, object], ...] = ()
    grid: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()

    @property
    def label(self) -> str:
        return self.name if self.name else self.arm

    def variants(self) -> List[Tuple[str, Tuple[Tuple[str, object], ...]]]:
        """``(label, merged option tuple)`` per grid combination."""
        if not self.grid:
            return [(self.label, self.options)]
        keys = [key for key, _ in self.grid]
        out: List[Tuple[str, Tuple[Tuple[str, object], ...]]] = []
        for combo in itertools.product(*(values for _, values in self.grid)):
            merged = dict(self.options)
            merged.update(zip(keys, combo))
            suffix = "-".join(f"{key}{value}" for key, value in zip(keys, combo))
            out.append((f"{self.label}-{suffix}", tuple(merged.items())))
        return out


@dataclass(frozen=True)
class SweepManifest:
    """A declarative sweep: preset, axes, and arm variants."""

    name: str
    preset: str = "tiny"
    prefix: str = PREFIX_SIGNATURES
    seeds: Tuple[int, ...] = (42,)
    populations: Tuple[int, ...] = ()
    honeypot_days: Tuple[int, ...] = ()
    measurement_days: Tuple[int, ...] = ()
    service_mixes: Tuple[str, ...] = ()
    arms: Tuple[ArmSpec, ...] = (ArmSpec(arm="standard"),)

    def replica_count(self) -> int:
        per_point = sum(len(arm.variants()) for arm in self.arms)
        return (
            len(self.seeds)
            * max(1, len(self.populations))
            * max(1, len(self.honeypot_days))
            * max(1, len(self.measurement_days))
            * max(1, len(self.service_mixes))
            * per_point
        )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ManifestError(message)


def _int_axis(data: dict, key: str, minimum: int) -> Tuple[int, ...]:
    values = data.get(key, [])
    _require(isinstance(values, list), f"{key!r} must be a list of integers")
    out: List[int] = []
    for value in values:
        _require(
            isinstance(value, int) and not isinstance(value, bool) and value >= minimum,
            f"{key!r} entries must be integers >= {minimum}, got {value!r}",
        )
        out.append(value)
    _require(len(set(out)) == len(out), f"{key!r} must not repeat values")
    return tuple(out)


def _parse_options(raw: object, where: str) -> Tuple[Tuple[str, object], ...]:
    _require(isinstance(raw, dict), f"{where}: 'options' must be an object")
    assert isinstance(raw, dict)
    for key, value in raw.items():
        _require(isinstance(key, str) and key, f"{where}: option keys must be strings")
        _require(
            isinstance(value, _OPTION_TYPES),
            f"{where}: option {key!r} must be a JSON scalar, got {value!r}",
        )
    return tuple(raw.items())


def _parse_arm(raw: object, position: int) -> ArmSpec:
    where = f"arms[{position}]"
    _require(isinstance(raw, dict), f"{where} must be an object")
    assert isinstance(raw, dict)
    unknown = set(raw) - {"arm", "name", "options", "grid"}
    _require(not unknown, f"{where}: unknown keys {sorted(unknown)}")
    arm = raw.get("arm")
    _require(isinstance(arm, str) and bool(arm), f"{where}: 'arm' must be a non-empty string")
    assert isinstance(arm, str)
    from repro.fleet.arms import ARMS

    _require(arm in ARMS, f"{where}: unknown arm {arm!r} (known: {sorted(ARMS)})")
    name = raw.get("name")
    if name is not None:
        _require(isinstance(name, str) and bool(name), f"{where}: 'name' must be a non-empty string")
    options = _parse_options(raw.get("options", {}), where)
    grid_raw = raw.get("grid", {})
    _require(isinstance(grid_raw, dict), f"{where}: 'grid' must be an object of value lists")
    grid: List[Tuple[str, Tuple[object, ...]]] = []
    for key, values in grid_raw.items():
        _require(isinstance(key, str) and bool(key), f"{where}: grid keys must be strings")
        _require(
            isinstance(values, list) and len(values) > 0,
            f"{where}: grid {key!r} must be a non-empty list",
        )
        for value in values:
            _require(
                isinstance(value, _OPTION_TYPES),
                f"{where}: grid {key!r} values must be JSON scalars, got {value!r}",
            )
        _require(len(set(values)) == len(values), f"{where}: grid {key!r} repeats values")
        grid.append((key, tuple(values)))
    return ArmSpec(arm=arm, name=name, options=options, grid=tuple(grid))


def parse_manifest(data: object) -> SweepManifest:
    """Validate a decoded manifest document into a :class:`SweepManifest`."""
    _require(isinstance(data, dict), "manifest must be a JSON object")
    assert isinstance(data, dict)
    known = {
        "schema_version",
        "name",
        "preset",
        "prefix",
        "seeds",
        "populations",
        "honeypot_days",
        "measurement_days",
        "service_mixes",
        "arms",
    }
    unknown = set(data) - known
    _require(not unknown, f"unknown manifest keys {sorted(unknown)}")
    version = data.get("schema_version", MANIFEST_SCHEMA_VERSION)
    _require(
        version == MANIFEST_SCHEMA_VERSION,
        f"manifest schema_version {version!r} != supported {MANIFEST_SCHEMA_VERSION}",
    )
    name = data.get("name")
    _require(isinstance(name, str) and bool(name), "'name' must be a non-empty string")
    assert isinstance(name, str)
    preset = data.get("preset", "tiny")
    _require(
        preset in PRESET_FACTORIES,
        f"unknown preset {preset!r} (known: {sorted(PRESET_FACTORIES)})",
    )
    prefix = data.get("prefix", PREFIX_SIGNATURES)
    _require(prefix in PREFIXES, f"unknown prefix {prefix!r} (known: {PREFIXES})")
    seeds = _int_axis(data, "seeds", minimum=0)
    _require(len(seeds) > 0, "'seeds' must name at least one seed")
    populations = _int_axis(data, "populations", minimum=1)
    honeypot_days = _int_axis(data, "honeypot_days", minimum=1)
    measurement_days = _int_axis(data, "measurement_days", minimum=1)
    mixes_raw = data.get("service_mixes", [])
    _require(isinstance(mixes_raw, list), "'service_mixes' must be a list of mix names")
    for mix in mixes_raw:
        _require(
            isinstance(mix, str) and mix in SERVICE_MIXES,
            f"unknown service mix {mix!r} (known: {sorted(SERVICE_MIXES)})",
        )
    _require(len(set(mixes_raw)) == len(mixes_raw), "'service_mixes' must not repeat")
    arms_raw = data.get("arms", [{"arm": "standard"}])
    _require(
        isinstance(arms_raw, list) and len(arms_raw) > 0,
        "'arms' must be a non-empty list",
    )
    arms = tuple(_parse_arm(raw, i) for i, raw in enumerate(arms_raw))
    labels = [label for arm in arms for label, _ in arm.variants()]
    _require(
        len(set(labels)) == len(labels),
        f"arm variant labels must be unique, got {sorted(labels)}",
    )
    return SweepManifest(
        name=name,
        preset=str(preset),
        prefix=str(prefix),
        seeds=seeds,
        populations=populations,
        honeypot_days=honeypot_days,
        measurement_days=measurement_days,
        service_mixes=tuple(mixes_raw),
        arms=arms,
    )


def load_manifest(path: str) -> SweepManifest:
    """Read and validate a manifest JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ManifestError(f"cannot read manifest {path!r}: {exc}") from exc
    except ValueError as exc:
        raise ManifestError(f"manifest {path!r} is not valid JSON: {exc}") from exc
    return parse_manifest(data)


def _apply_mix(config: StudyConfig, mix: str) -> StudyConfig:
    disabled = SERVICE_MIXES[mix]
    if not disabled:
        return config
    plans = replace(config.plans, **{field: None for field in disabled})
    return replace(config, plans=plans)


def expand_manifest(
    manifest: SweepManifest, base_config: Optional[StudyConfig] = None
) -> List[ReplicaSpec]:
    """Expand a manifest into its ordered replica specs.

    ``base_config`` overrides the preset lookup (used by
    :func:`repro.fleet.spec.seed_sweep` and by tests pinning a custom
    config); axes then apply on top of it exactly as they would on the
    preset.
    """
    base = base_config if base_config is not None else PRESET_FACTORIES[manifest.preset]()
    specs: List[ReplicaSpec] = []
    for seed in manifest.seeds:
        seeded = replace(base, seed=seed)
        for population in manifest.populations or (None,):
            pop_config = (
                seeded
                if population is None
                else replace(seeded, population=replace(seeded.population, size=population))
            )
            for days in manifest.honeypot_days or (None,):
                days_config = (
                    pop_config if days is None else replace(pop_config, honeypot_days=days)
                )
                for window in manifest.measurement_days or (None,):
                    window_config = (
                        days_config
                        if window is None
                        else replace(days_config, measurement_days=window)
                    )
                    for mix in manifest.service_mixes or (None,):
                        config = (
                            window_config if mix is None else _apply_mix(window_config, mix)
                        )
                        parts = [f"seed-{seed}"]
                        if population is not None:
                            parts.append(f"pop{population}")
                        if days is not None:
                            parts.append(f"hp{days}")
                        if window is not None:
                            parts.append(f"md{window}")
                        if mix is not None:
                            parts.append(f"mix-{mix}")
                        for arm in manifest.arms:
                            for label, options in arm.variants():
                                specs.append(
                                    ReplicaSpec(
                                        name="/".join(parts + [label]),
                                        config=config,
                                        arm=arm.arm,
                                        prefix=manifest.prefix,
                                        arm_options=options,
                                    )
                                )
    return specs


__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "PRESET_FACTORIES",
    "SERVICE_MIXES",
    "ArmSpec",
    "ManifestError",
    "SweepManifest",
    "expand_manifest",
    "load_manifest",
    "parse_manifest",
]
