"""World-snapshot prefix cache.

The N intervention arms and ablation variants of one seeded config all
share an expensive common prefix — build the world, run the honeypot
phase, learn signatures — and only then diverge. This module lets a
fleet pay that prefix **once**: build it, freeze the whole study into a
schema-versioned pickle envelope, and fork every arm from the frozen
bytes.

Determinism contract: a study restored from a snapshot must be
bit-identical, going forward, to the study that produced it — the same
action stream, the same spans and metrics, the same rendered report
(``tests/test_fleet_snapshot.py`` enforces this property). Three pieces
make that hold:

* ``Study.__getstate__``/``__setstate__`` serialize all behaviour-
  determining state and re-bind only per-process wiring (the obs tick
  source).
* The envelope records every memoized RNG stream's bit-generator state
  explicitly (:meth:`repro.util.rng.SeedSequenceFactory.state_dict`)
  and :func:`restore_study` verifies the restored factory matches it —
  an opaque-pickle-bytes bug cannot silently skew a stream.
* Iteration-order-sensitive consumers of long-lived hash sets order
  their views (hash-table layout is a function of mutation *history*,
  which a dump/load cycle does not preserve).

Invalidation rule: cache keys include the config digest, the prefix
phase, and :data:`SNAPSHOT_SCHEMA_VERSION`; bumping the version (any
time Study state layout changes incompatibly) orphans every old
envelope, and :func:`restore_study` refuses envelopes from another
version rather than guessing. The nested reuse tree
(:mod:`repro.fleet.tree`) folds the same version into every node key,
so disk-store entries are orphaned by the same bump.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import pickle
from typing import Dict, Optional, Tuple

from repro.core.config import StudyConfig
from repro.core.study import Study
from repro.fleet.spec import (
    PREFIX_BUILD_WORLD,
    PREFIX_HONEYPOT,
    PREFIX_SIGNATURES,
    PREFIXES,
)
from repro.obs.facade import NULL_OBS, Observability

#: bumped whenever Study's pickled layout or the envelope shape changes
SNAPSHOT_SCHEMA_VERSION = 1


class SnapshotError(RuntimeError):
    """A snapshot envelope failed schema or integrity verification."""


def _canonical(obj: object) -> object:
    """JSON-able canonical form of a config tree.

    Dataclasses become name-tagged dicts, enums their values, and sets /
    frozensets sorted lists (by their own canonical JSON), so one config
    always digests to one string regardless of hash seeding or set
    construction history.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            **{
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(key): _canonical(value) for key, value in obj.items()}
    if isinstance(obj, (set, frozenset)):
        return sorted(
            (_canonical(item) for item in obj),
            key=lambda c: json.dumps(c, sort_keys=True),
        )
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


def config_digest(config: StudyConfig) -> str:
    """Stable hex digest identifying one config (and its seed)."""
    text = json.dumps(_canonical(config), sort_keys=True)
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def rng_digest(states: Dict[str, dict]) -> str:
    """Hex digest of an explicit RNG state capture."""
    text = json.dumps(states, sort_keys=True, default=int)
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def advance_prefix(study: Study, phase: str) -> None:
    """Advance a live study across exactly one prefix-chain link.

    ``build-world`` is the chain root (construction itself) and cannot
    be applied to an existing study.
    """
    if phase == PREFIX_HONEYPOT:
        study.run_honeypot_phase()
    elif phase == PREFIX_SIGNATURES:
        study.learn_signatures()
    else:
        raise ValueError(
            f"cannot advance an existing study across {phase!r} "
            f"(advanceable: {(PREFIX_HONEYPOT, PREFIX_SIGNATURES)})"
        )


def build_prefix(config: StudyConfig, prefix: str) -> Study:
    """Run a fresh study up to (and including) the named prefix phase."""
    if prefix not in PREFIXES:
        raise ValueError(f"unknown prefix {prefix!r} (known: {PREFIXES})")
    study = Study(config)
    if prefix in (PREFIX_HONEYPOT, PREFIX_SIGNATURES):
        study.run_honeypot_phase()
    if prefix == PREFIX_SIGNATURES:
        study.learn_signatures()
    return study


def snapshot_study(study: Study, prefix: str) -> bytes:
    """Freeze a study into a schema-versioned envelope."""
    if prefix not in PREFIXES:
        raise ValueError(f"unknown prefix {prefix!r} (known: {PREFIXES})")
    rng_state = study.seeds.state_dict()
    envelope = {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "prefix": prefix,
        "config_digest": config_digest(study.config),
        "tick": study.clock.now,
        "rng_digest": rng_digest(rng_state),
        "rng_state": rng_state,
        "study": study,
    }
    return pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)


def restore_study(blob: bytes) -> Study:
    """Thaw an envelope back into a live study, verifying as it goes."""
    try:
        envelope = pickle.loads(blob)
    except Exception as exc:  # unreadable bytes are a schema failure
        raise SnapshotError(f"snapshot envelope is unreadable: {exc}") from exc
    if not isinstance(envelope, dict) or "schema_version" not in envelope:
        raise SnapshotError("snapshot envelope is missing its schema_version")
    version = envelope["schema_version"]
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotError(
            f"snapshot schema_version {version!r} != current "
            f"{SNAPSHOT_SCHEMA_VERSION}; rebuild the prefix"
        )
    study = envelope["study"]
    if not isinstance(study, Study):
        raise SnapshotError("snapshot envelope does not carry a Study")
    restored_digest = rng_digest(study.seeds.state_dict())
    if restored_digest != envelope["rng_digest"]:
        raise SnapshotError(
            "restored RNG streams do not match the captured state "
            f"({restored_digest} != {envelope['rng_digest']})"
        )
    if study.clock.now != envelope["tick"]:
        raise SnapshotError(
            f"restored clock tick {study.clock.now} != captured {envelope['tick']}"
        )
    return study


class SnapshotCache:
    """Bounded in-memory envelope cache, LRU-evicted, obs-instrumented.

    Two access levels share one LRU store:

    * ``get_or_build(config, prefix)`` — the whole-chain interface:
      returns a *live study* forked from the cached envelope (every
      caller gets an independent copy — the envelope bytes are never
      mutated), plus whether the call hit the cache. Envelopes that
      fail verification are evicted and rebuilt, never trusted.
    * ``get_blob``/``put_blob`` — raw string-keyed envelope bytes, used
      by the tree scheduler whose keys are reuse-node digests rather
      than ``(config, prefix)`` pairs.

    ``max_entries``/``max_bytes`` bound residency (``None`` = unbounded,
    the historical behaviour): inserting past either limit evicts
    least-recently-used envelopes first. Residency and eviction counts
    are published on the ``fleet.snapshot.bytes`` gauge and
    ``fleet.snapshot.evictions`` counter of the optional ``obs`` handle,
    so a long sweep's memory profile shows up in its trace.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        obs: Observability = NULL_OBS,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._cache: Dict[str, bytes] = {}
        self.builds = 0
        self.restores = 0
        self.evictions = 0
        self._bytes_gauge = obs.gauge("fleet.snapshot.bytes")
        self._eviction_counter = obs.counter("fleet.snapshot.evictions")

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def bytes_cached(self) -> int:
        return sum(len(blob) for blob in self._cache.values())

    def stats(self) -> dict:
        return {
            "entries": len(self._cache),
            "bytes": self.bytes_cached,
            "builds": self.builds,
            "restores": self.restores,
            "evictions": self.evictions,
        }

    # -- raw blob access (tree-node keys) -------------------------------

    def get_blob(self, key: str) -> Optional[bytes]:
        """The cached envelope under ``key``, refreshed as most-recent."""
        blob = self._cache.pop(key, None)
        if blob is None:
            return None
        self._cache[key] = blob  # reinsert: dict order is the LRU order
        return blob

    def put_blob(self, key: str, blob: bytes) -> None:
        """Insert an envelope, evicting LRU entries past the bounds."""
        self._cache.pop(key, None)
        self._cache[key] = blob
        self._evict()
        self._bytes_gauge.set(self.bytes_cached)

    def drop(self, key: str) -> None:
        """Forget one entry (without counting it as an eviction)."""
        self._cache.pop(key, None)
        self._bytes_gauge.set(self.bytes_cached)

    def _evict(self) -> None:
        while self._cache and (
            (self.max_entries is not None and len(self._cache) > self.max_entries)
            or (self.max_bytes is not None and self.bytes_cached > self.max_bytes)
        ):
            oldest = next(iter(self._cache))
            del self._cache[oldest]
            self.evictions += 1
            self._eviction_counter.inc()

    # -- whole-chain interface ------------------------------------------

    def _key(self, config: StudyConfig, prefix: str) -> str:
        return f"{config_digest(config)}:{prefix}:v{SNAPSHOT_SCHEMA_VERSION}"

    def get_or_build(self, config: StudyConfig, prefix: str) -> Tuple[Study, bool]:
        key = self._key(config, prefix)
        blob = self.get_blob(key)
        if blob is not None:
            try:
                study = restore_study(blob)
            except SnapshotError:
                self.drop(key)
            else:
                self.restores += 1
                return study, True
        self.builds += 1
        built = build_prefix(config, prefix)
        blob = snapshot_study(built, prefix)
        self.put_blob(key, blob)
        # hand back a fork of the frozen bytes, not the builder study:
        # every replica then starts from the identical restored state,
        # including the one that happened to pay for the build
        study = restore_study(blob)
        self.restores += 1
        return study, False


__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "PREFIX_BUILD_WORLD",
    "PREFIX_HONEYPOT",
    "PREFIX_SIGNATURES",
    "SnapshotCache",
    "SnapshotError",
    "advance_prefix",
    "build_prefix",
    "config_digest",
    "restore_study",
    "rng_digest",
    "snapshot_study",
]
