"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run-study`` — run the full measurement pipeline and print every
  business table (Tables 5-11, Figure 2, Figures 3-4 medians). With
  ``--seeds 42,43,44`` the pipeline runs once per seed as a
  :mod:`repro.fleet` replica fleet (``--workers N`` fans the replicas
  over worker processes; output is byte-identical for any N).
* ``run-interventions`` — continue with the narrow and broad
  intervention experiments and print the Figure 5-7 series.
* ``sweep`` — expand a declarative manifest (seeds × populations ×
  honeypot ablations × service mixes × arm grids) into a replica fleet,
  run it through the tree-reuse orchestrator, and print the merged
  payload; ``--store DIR`` persists prefix snapshots across
  invocations.
* ``list-presets`` — show the available scale presets.

Example::

    python -m repro run-study --preset tiny --seed 7
    python -m repro run-study --preset small --output report.txt
    python -m repro run-interventions --preset tiny
    python -m repro sweep manifest.json --workers 4 --store .snapcache

Progress comes from the study's own ``repro.obs`` phase spans:
``--verbose`` attaches a console reporter to them, and ``--trace PATH``
dumps the full JSONL trace (spans + metrics snapshot) for
``python -m repro.obs summarize``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, TextIO

from repro.core import Study, StudyConfig
from repro.core import experiments as E
from repro.core import reporting as R
from repro.core.study import INSTA_STAR
from repro.interventions.experiment import BroadInterventionPlan, NarrowInterventionPlan
from repro.obs import ConsoleReporter, Observability
from repro.obs.walltime import read_peak_rss_kb, read_wall_seconds

PRESETS: dict[str, Callable[[int], StudyConfig]] = {
    "tiny": StudyConfig.tiny,
    "small": StudyConfig.small,
    "paper": StudyConfig.paper_shaped,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Following Their Footsteps' (IMC 2018)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--preset", choices=sorted(PRESETS), default="tiny")
        sub.add_argument("--seed", type=int, default=42)
        sub.add_argument(
            "--output", type=str, default="", help="write the report to a file instead of stdout"
        )
        sub.add_argument(
            "--verbose",
            action="store_true",
            help="print phase-span progress lines to stderr",
        )
        sub.add_argument(
            "--trace",
            type=str,
            default="",
            help="write a repro.obs JSONL trace (spans + metrics) to this path",
        )
        sub.add_argument(
            "--profile",
            action="store_true",
            help=(
                "attach the deterministic cost-model profiler: spans in the "
                "trace carry cost_total/cost_self attrs for repro.obs flame"
            ),
        )

    run_study = subparsers.add_parser("run-study", help="measurement pipeline + business tables")
    add_common(run_study)
    run_study.add_argument(
        "--measurement-days", type=int, default=0, help="override the preset's window length"
    )
    run_study.add_argument(
        "--seeds",
        type=str,
        default="",
        help=(
            "comma-separated seed list; runs one replica per seed via the "
            "fleet runner and prints each seed's report (overrides --seed)"
        ),
    )
    run_study.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for --seeds fleets (default: REPRO_WORKERS "
            "or 1); merged output is byte-identical for any value"
        ),
    )

    run_interventions = subparsers.add_parser(
        "run-interventions", help="narrow + broad intervention experiments"
    )
    add_common(run_interventions)
    run_interventions.add_argument("--narrow-days", type=int, default=14)

    run_epilogue = subparsers.add_parser(
        "run-epilogue", help="the Section 6.4 arms race (migration, out-of-stock)"
    )
    add_common(run_epilogue)
    run_epilogue.add_argument("--days", type=int, default=30)
    run_epilogue.add_argument(
        "--relearn-days",
        type=int,
        default=0,
        help="defender re-learns signatures every N days (0 = frozen defender)",
    )

    sweep = subparsers.add_parser(
        "sweep", help="run a declarative sweep manifest through the fleet orchestrator"
    )
    sweep.add_argument("manifest", help="path to a sweep manifest JSON file")
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes (default: REPRO_WORKERS or 1); merged "
            "output is byte-identical for any value"
        ),
    )
    sweep.add_argument(
        "--store",
        type=str,
        default="",
        help=(
            "disk snapshot store directory: prefix snapshots persist "
            "here across invocations (created if missing)"
        ),
    )
    sweep.add_argument(
        "--store-max-bytes",
        type=int,
        default=None,
        help="LRU-evict the disk store past this many bytes",
    )
    sweep.add_argument(
        "--strategy",
        choices=["tree", "flat", "no-reuse"],
        default="tree",
        help="prefix reuse strategy (default: tree; others are baselines)",
    )
    sweep.add_argument(
        "--output", type=str, default="", help="write the merged payload to a file instead of stdout"
    )
    sweep.add_argument(
        "--trace",
        type=str,
        default="",
        help=(
            "write the merged sweep trace (fleet roll-up segment + one "
            "segment per replica) to this path"
        ),
    )
    sweep.add_argument(
        "--profile",
        action="store_true",
        help=(
            "profile every replica: spans carry cost attrs and the fleet "
            "segment rolls self-costs up by tree depth"
        ),
    )

    subparsers.add_parser("list-presets", help="show available scale presets")
    return parser


def _make_study(config: StudyConfig, args) -> Study:
    """Build a Study with the CLI's observability wiring attached.

    ``--verbose`` and ``--trace`` force telemetry on (they are explicit
    requests for it); otherwise the config switch decides. Traces
    written by the CLI carry wall-clock span durations and peak-RSS
    stamps — the waived, non-canonical extras — since a human asked for
    them. ``--profile`` additionally attaches the deterministic cost
    profiler (it implies telemetry: cost attrs ride on spans).
    """
    profile = bool(getattr(args, "profile", False))
    wants_obs = bool(getattr(args, "verbose", False) or getattr(args, "trace", ""))
    tracing = bool(getattr(args, "trace", ""))
    obs = Observability(
        enabled=config.observability or wants_obs or profile,
        wall_source=read_wall_seconds if tracing else None,
        rss_source=read_peak_rss_kb if tracing else None,
        profile=profile,
    )
    if getattr(args, "verbose", False):
        obs.add_listener(ConsoleReporter(sys.stderr))
    return Study(config, obs=obs)


def _write_trace(study: Study, args) -> None:
    path = getattr(args, "trace", "")
    if path:
        study.obs.dump_trace(
            path,
            meta={"command": args.command, "preset": args.preset, "seed": args.seed},
        )
        print(f"Wrote trace to {path}", file=sys.stderr)


def _run_measurement(args, out: TextIO) -> Study:
    config = PRESETS[args.preset](seed=args.seed)
    if getattr(args, "measurement_days", 0):
        config = config.with_measurement_days(args.measurement_days)
    study = _make_study(config, args)
    study.run_honeypot_phase()
    study.learn_signatures()
    dataset = study.run_measurement()
    print(E.render_study_report(study, dataset), file=out)
    return study


def _parse_seeds(raw: str) -> list[int]:
    try:
        seeds = [int(part.strip()) for part in raw.split(",") if part.strip()]
    except ValueError as exc:
        raise SystemExit(f"--seeds must be comma-separated integers: {exc}")
    if not seeds:
        raise SystemExit("--seeds must name at least one seed")
    if len(set(seeds)) != len(seeds):
        raise SystemExit("--seeds must not repeat a seed")
    return seeds


def _run_study_fleet(args, out: TextIO) -> int:
    from repro.core.config import resolve_workers
    from repro.fleet import FleetRunner, seed_sweep
    from repro.obs.trace import render_trace

    seeds = _parse_seeds(args.seeds)
    config = PRESETS[args.preset](seed=seeds[0])
    if getattr(args, "profile", False):
        config = dataclasses.replace(config, profile=True)
    arm_options: tuple[tuple[str, object], ...] = ()
    if getattr(args, "measurement_days", 0):
        arm_options = (("measurement_days", args.measurement_days),)
    specs = seed_sweep(config, seeds, arm="report", arm_options=arm_options)
    runner = FleetRunner(workers=resolve_workers(args.workers))
    result = runner.run(specs)
    reports = []
    for replica in result.replicas:
        reports.append(
            f"=== {replica.name} (seed {replica.seed}) ===\n\n"
            f"{replica.payload['report']}"
        )
    print("\n\n".join(reports), file=out)
    path = getattr(args, "trace", "")
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(render_trace(result.merged_trace_lines()))
        print(f"Wrote merged trace to {path}", file=sys.stderr)
    return 0


def cmd_run_study(args, out: TextIO) -> int:
    if getattr(args, "seeds", ""):
        return _run_study_fleet(args, out)
    study = _run_measurement(args, out)
    _write_trace(study, args)
    return 0


def cmd_run_interventions(args, out: TextIO) -> int:
    study = _run_measurement(args, out)
    narrow = study.run_narrow_intervention(
        NarrowInterventionPlan(duration_days=args.narrow_days), calibration_days=5
    )
    study.run_days(6)  # washout before the broad design
    broad = study.run_broad_intervention(
        BroadInterventionPlan(delay_days=6, block_days=8), calibration_days=5
    )
    sections = [
        R.render_fig5(E.fig5_median_follows(narrow, service=INSTA_STAR)),
        R.render_fig6(E.fig6_hublaagram_likes(narrow)),
        R.render_fig7(E.fig7_broad_follows(broad, service=INSTA_STAR)),
    ]
    print("\n\n".join(sections), file=out)
    _write_trace(study, args)
    return 0


def cmd_run_epilogue(args, out: TextIO) -> int:
    config = PRESETS[args.preset](seed=args.seed)
    config = dataclasses.replace(config, enable_migration=True)
    study = _make_study(config, args)
    study.run_honeypot_phase()
    study.learn_signatures()
    study.run_measurement(days_=min(7, config.measurement_days))
    outcome = study.run_epilogue(
        days_=args.days,
        defender_relearn_days=args.relearn_days or None,
    )
    lines = [f"Epilogue (days {outcome.start_day}-{outcome.end_day}):"]
    for service, moves in sorted(outcome.migrations.items()):
        if moves:
            history = "; ".join(label for _, label in moves)
            lines.append(f"  {service} migrated {len(moves)}x: {history}")
    lines.append(f"  signature coverage: {outcome.signature_coverage:.1%}")
    lines.append(f"  Hublaagram sales suspended: {outcome.hublaagram_sales_suspended}")
    print("\n".join(lines), file=out)
    _write_trace(study, args)
    return 0


def cmd_sweep(args, out: TextIO) -> int:
    from repro.core.config import resolve_workers
    from repro.fleet import (
        FleetRunner,
        ManifestError,
        SnapshotStore,
        expand_manifest,
        load_manifest,
    )
    from repro.obs.trace import render_trace

    try:
        manifest = load_manifest(args.manifest)
    except ManifestError as exc:
        raise SystemExit(f"sweep: {exc}")
    specs = expand_manifest(manifest)
    if getattr(args, "profile", False):
        specs = [
            dataclasses.replace(
                spec, config=dataclasses.replace(spec.config, profile=True)
            )
            for spec in specs
        ]
    store = (
        SnapshotStore(args.store, max_bytes=args.store_max_bytes) if args.store else None
    )
    runner = FleetRunner(
        workers=resolve_workers(args.workers), strategy=args.strategy, store=store
    )
    result = runner.run(specs)
    out.write(result.merged_payload_text())
    if args.trace:
        lines = result.fleet_trace_segment() + result.merged_trace_lines()
        with open(args.trace, "w", encoding="utf-8") as handle:
            handle.write(render_trace(lines))
        print(f"Wrote sweep trace to {args.trace}", file=sys.stderr)
    print(
        f"sweep {manifest.name}: {len(result.replicas)} replicas, "
        f"strategy={result.strategy}, phase builds {result.phase_builds}/"
        f"{result.phase_units} "
        f"(build cost avoided {result.build_cost_avoided_frac:.1%})",
        file=sys.stderr,
    )
    return 0


def cmd_list_presets(args, out: TextIO) -> int:
    for name, factory in sorted(PRESETS.items()):
        config = factory(42)
        print(
            f"{name:<6} population={config.population.size:<6} "
            f"measurement_days={config.measurement_days:<4} "
            f"budget_scale={config.budget_scale}",
            file=out,
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    output_path = getattr(args, "output", "")
    if output_path:
        with open(output_path, "w") as out:
            return _dispatch(args, out)
    return _dispatch(args, sys.stdout)


def _dispatch(args, out: TextIO) -> int:
    handlers = {
        "run-study": cmd_run_study,
        "run-interventions": cmd_run_interventions,
        "run-epilogue": cmd_run_epilogue,
        "sweep": cmd_sweep,
        "list-presets": cmd_list_presets,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
