"""Customer-outcome analysis: does the product actually work?

Section 2 explains why people buy: influencer status needs "a high
engagement [rate] ... and thousands of followers", and the services
sell exactly those metrics. The paper never measures whether customers
get them; the simulation can. This module compares AAS customers'
follower counts and engagement rates against a matched organic
baseline over the measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionStatus, ActionType
from repro.util.stats import median


@dataclass(frozen=True)
class OutcomeSummary:
    """Follower/engagement outcomes for one group of accounts."""

    group: str
    accounts: int
    median_followers: float
    median_inbound_likes: float
    median_engagement_rate: float


def _inbound_like_counts(
    platform: InstagramPlatform, accounts: Sequence[AccountId], start_tick: int, end_tick: int
) -> list[int]:
    counts = []
    for account in accounts:
        inbound = [
            r
            for r in platform.log.inbound(account)
            if start_tick <= r.tick < end_tick
            and r.action_type is ActionType.LIKE
            and r.status is not ActionStatus.BLOCKED
        ]
        counts.append(len(inbound))
    return counts


def summarize_outcomes(
    platform: InstagramPlatform,
    group: str,
    accounts: Iterable[AccountId],
    start_tick: int,
    end_tick: int,
) -> OutcomeSummary:
    """Window outcomes (followers now, likes received, ER) for a group."""
    live = [a for a in accounts if platform.account_exists(a)]
    if not live:
        raise ValueError(f"group {group!r} has no live accounts")
    followers = [platform.follower_count(a) for a in live]
    likes = _inbound_like_counts(platform, live, start_tick, end_tick)
    engagement = []
    for account in live:
        rate = platform.engagement_rate(account)
        engagement.append(rate if rate is not None else 0.0)
    return OutcomeSummary(
        group=group,
        accounts=len(live),
        median_followers=median(followers),
        median_inbound_likes=median(likes),
        median_engagement_rate=median(engagement),
    )


def customer_vs_organic(
    platform: InstagramPlatform,
    customers: set[AccountId],
    organic_pool: Sequence[AccountId],
    start_tick: int,
    end_tick: int,
    rng: np.random.Generator,
) -> tuple[OutcomeSummary, OutcomeSummary]:
    """(customer summary, matched organic baseline summary).

    The baseline is a same-size random sample of organic accounts that
    never enrolled anywhere — the counterfactual the customers paid to
    escape.
    """
    customer_list = sorted(a for a in customers if platform.account_exists(a))
    baseline_pool = [a for a in organic_pool if a not in customers]
    if not customer_list or not baseline_pool:
        raise ValueError("need non-empty customer and baseline pools")
    size = min(len(customer_list), len(baseline_pool))
    picks = rng.choice(len(baseline_pool), size=size, replace=False)
    baseline = [baseline_pool[int(i)] for i in picks]
    return (
        summarize_outcomes(platform, "customers", customer_list, start_tick, end_tick),
        summarize_outcomes(platform, "organic", baseline, start_tick, end_tick),
    )
