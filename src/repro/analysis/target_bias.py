"""Target-selection bias (paper Section 5.3, Figures 3-4).

Compares the accounts *targeted* by reciprocity AASs against a random
sample of accounts that received actions on the platform during the
window, along two public metrics: how many accounts they follow
(out-degree, Figure 3) and how many followers they have (in-degree,
Figure 4).
"""

from __future__ import annotations

import numpy as np

from repro.detection.classifier import AttributedActivity
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionStatus, ActionType
from repro.util.cdf import EmpiricalCDF

#: Outbound action types whose recipients count as "targeted".
TARGETING_TYPES = (ActionType.LIKE, ActionType.FOLLOW)


def sample_targeted_accounts(
    activity: AttributedActivity,
    rng: np.random.Generator,
    n: int,
    customer_accounts: set[AccountId] | None = None,
) -> list[AccountId]:
    """Up to ``n`` distinct accounts the service directed actions at.

    Customers themselves are excluded (targets are third parties).
    """
    customers = customer_accounts if customer_accounts is not None else activity.customers
    instances = [
        record.target_account
        for record in activity.records
        if record.action_type in TARGETING_TYPES
        and record.target_account is not None
        and record.target_account not in customers
        and record.status is not ActionStatus.BLOCKED
    ]
    if not instances:
        return []
    # Sample targeting *instances*, then deduplicate. At paper scale the
    # two are equivalent (each sampled account was targeted once or
    # twice); at simulation scale, where a small universe means almost
    # every account is eventually targeted at least once, instance
    # sampling preserves the measurable selection bias that
    # distinct-account sampling would wash out.
    picked: list[AccountId] = []
    seen: set[AccountId] = set()
    order = rng.permutation(len(instances))
    for index in order:
        account = instances[int(index)]
        if account in seen:
            continue
        seen.add(account)
        picked.append(account)
        if len(picked) >= n:
            break
    return picked


def sample_receiving_accounts(
    records,
    rng: np.random.Generator,
    n: int,
    start_tick: int = 0,
    end_tick: int | None = None,
) -> list[AccountId]:
    """The baseline: random accounts that received actions in-window.

    This mirrors the paper's baseline ("a random sample of 1,000 from
    all Instagram accounts that receive actions during our measurement
    period") — which is popularity-biased relative to all accounts, the
    property that puts the baseline's in-degree median above its
    out-degree median. Pass *benign* records here: at Instagram scale
    organic receivers dominate any AAS's targets, so the scaled
    equivalent of the paper's sample is the organic-receiver pool.
    """
    receivers: set[AccountId] = set()
    for record in records:
        if record.tick < start_tick or (end_tick is not None and record.tick >= end_tick):
            continue
        if record.status is ActionStatus.BLOCKED or record.target_account is None:
            continue
        receivers.add(record.target_account)
    pool = sorted(receivers)
    if len(pool) <= n:
        return pool
    picks = rng.choice(len(pool), size=n, replace=False)
    return [pool[int(i)] for i in picks]


def degree_cdfs(
    platform: InstagramPlatform, accounts: list[AccountId]
) -> tuple[EmpiricalCDF, EmpiricalCDF]:
    """(out-degree CDF, in-degree CDF) for a sample of live accounts."""
    live = [a for a in accounts if platform.account_exists(a)]
    if not live:
        raise ValueError("no live accounts in sample")
    out_degrees = [platform.following_count(a) for a in live]
    in_degrees = [platform.follower_count(a) for a in live]
    return EmpiricalCDF(out_degrees), EmpiricalCDF(in_degrees)
