"""Customer-location shares (paper Figure 2).

"Figure 2 shows the countries that account for 5% or more of the user
population. ... 'OTHER' includes all countries that contribute less than
5% to the total distribution."
"""

from __future__ import annotations

from collections import Counter


def country_shares(counts: Counter, threshold: float = 0.05) -> list[tuple[str, float]]:
    """Collapse a country Counter into Figure 2's >=threshold bars.

    Returns (country, share) pairs sorted by descending share, with an
    aggregated "OTHER" bucket for the sub-threshold tail. Countries the
    scenario already labels "OTHER" fold into the same bucket.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    total = sum(counts.values())
    if total == 0:
        return []
    shares: dict[str, float] = {}
    other = 0.0
    for country, count in counts.items():
        share = count / total
        if country.upper() == "OTHER" or share < threshold:
            other += share
        else:
            shares[country.upper()] = share
    out = sorted(shares.items(), key=lambda item: -item[1])
    if other > 0:
        out.append(("OTHER", other))
    return out
