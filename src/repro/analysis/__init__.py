"""Business analyses (paper Section 5).

* :mod:`repro.analysis.revenue` — the paper's revenue estimation models
  (Tables 8-10): activity-based paid-day accounting for reciprocity
  AASs, and Hublaagram's service-specific accounting (no-outbound fees,
  free-ceiling-based paid-like detection, monthly tier mapping, CPM ad
  band).
* :mod:`repro.analysis.geography` — customer location shares (Figure 2).
* :mod:`repro.analysis.actions_mix` — action-type proportions (Table 11).
* :mod:`repro.analysis.target_bias` — targeted vs random account degree
  CDFs (Figures 3-4).
"""

from repro.analysis.revenue import (
    HublaagramRevenueEstimate,
    ReciprocityRevenueEstimate,
    estimate_hublaagram_revenue,
    estimate_reciprocity_revenue,
)
from repro.analysis.geography import country_shares
from repro.analysis.actions_mix import action_mix
from repro.analysis.target_bias import degree_cdfs, sample_receiving_accounts, sample_targeted_accounts
from repro.analysis.outcomes import OutcomeSummary, customer_vs_organic, summarize_outcomes
from repro.analysis.collusion_structure import CollusionStructure, analyze_structure

__all__ = [
    "OutcomeSummary",
    "customer_vs_organic",
    "summarize_outcomes",
    "CollusionStructure",
    "analyze_structure",
    "ReciprocityRevenueEstimate",
    "HublaagramRevenueEstimate",
    "estimate_reciprocity_revenue",
    "estimate_hublaagram_revenue",
    "country_shares",
    "action_mix",
    "degree_cdfs",
    "sample_targeted_accounts",
    "sample_receiving_accounts",
]
