"""Action-type proportions per service (paper Table 11)."""

from __future__ import annotations

from collections import Counter

from repro.detection.classifier import AttributedActivity
from repro.platform.models import ActionStatus, ActionType

#: The action types Table 11 reports (posts are "infrequent" and folded
#: out of the paper's table; we report them when present).
MIX_TYPES = (
    ActionType.LIKE,
    ActionType.FOLLOW,
    ActionType.COMMENT,
    ActionType.UNFOLLOW,
    ActionType.POST,
)


def action_mix(activity: AttributedActivity, include_blocked: bool = True) -> dict[ActionType, float]:
    """Normalized action-type shares for one service's activity.

    The paper normalizes "by the total number [of] actions performed by
    each service"; blocked attempts still represent attempted service
    activity and are included by default.
    """
    counts: Counter = Counter()
    for record in activity.records:
        if not include_blocked and record.status is ActionStatus.BLOCKED:
            continue
        counts[record.action_type] += 1
    total = sum(counts.values())
    if total == 0:
        return {action_type: 0.0 for action_type in MIX_TYPES}
    return {action_type: counts.get(action_type, 0) / total for action_type in MIX_TYPES}
