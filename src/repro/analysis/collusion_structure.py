"""Collusion-network structure analysis.

Section 3.2 likens a collusion network to a mix network: every customer
account both sources and receives actions inside the network. This
module quantifies that structure from attributed activity:

* the **in-network fraction** — how much of the service's traffic stays
  between its own customers (near 1.0 for a collusion network, near 0
  for reciprocity abuse, whose targets are outsiders);
* **source/recipient balance** — participating accounts both give and
  receive (the laundering property);
* the induced action-graph **reciprocity** — how often A->B traffic is
  answered by B->A inside the network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.classifier import AttributedActivity
from repro.platform.models import ActionStatus


@dataclass(frozen=True)
class CollusionStructure:
    """Structural metrics of one service's attributed action graph."""

    service: str
    actions: int
    in_network_fraction: float
    #: fraction of participants that both sourced and received actions
    dual_role_fraction: float
    #: fraction of in-network edges A->B with a matching B->A edge
    edge_reciprocity: float


def analyze_structure(activity: AttributedActivity) -> CollusionStructure:
    """Compute mix-network metrics over a service's delivered actions."""
    customers = activity.customers
    sources: set = set()
    recipients: set = set()
    edges: set[tuple] = set()
    delivered = 0
    in_network = 0
    for record in activity.records:
        if record.status is ActionStatus.BLOCKED or record.target_account is None:
            continue
        delivered += 1
        sources.add(record.actor)
        recipients.add(record.target_account)
        if record.target_account in customers and record.actor in customers:
            in_network += 1
            edges.add((record.actor, record.target_account))
    participants = sources | recipients
    dual = sources & recipients
    reciprocated = sum(1 for a, b in edges if (b, a) in edges)
    return CollusionStructure(
        service=activity.service,
        actions=delivered,
        in_network_fraction=in_network / delivered if delivered else 0.0,
        dual_role_fraction=len(dual) / len(participants) if participants else 0.0,
        edge_reciprocity=reciprocated / len(edges) if edges else 0.0,
    )
