"""Revenue estimation (paper Section 5.2, Tables 8-10).

These estimators consume only what the paper's authors could observe —
attributed platform activity and the services' published price lists —
never the services' internal ledgers. The simulation *also* has the
ground-truth ledgers, so benchmarks report estimator error alongside the
estimates, a validation the paper itself could not perform.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from repro.aas.ads import HIGH_CPM_CENTS, LOW_CPM_CENTS
from repro.aas.pricing import HublaagramCatalog, SubscriptionPricing
from repro.detection.classifier import AttributedActivity
from repro.detection.customers import CustomerBaseAnalytics
from repro.platform.models import AccountId, ActionStatus, ActionType


@dataclass
class ReciprocityRevenueEstimate:
    """A Table 8 row."""

    service: str
    paying_accounts: int
    monthly_revenue_cents: int
    fee_description: str


def estimate_reciprocity_revenue(
    analytics: CustomerBaseAnalytics,
    pricing: SubscriptionPricing,
    window_days: int,
) -> ReciprocityRevenueEstimate:
    """Paid-day accounting for a reciprocity AAS (Section 5.2).

    An account is paid once it is active longer than the trial period;
    its paid days are converted to money at the minimum paid duration.
    The window total is normalized to a 30-day month.

    Active days are *calendar* days touched by attributed activity, and
    an N-day trial started mid-day touches N+1 calendar days — so the
    free allowance is ``trial_days_actual + 1`` (the same correction the
    long-term customer split applies).
    """
    if window_days <= 0:
        raise ValueError("window must be positive")
    trial_days = pricing.trial_days_actual + 1
    paying = 0
    total_cents = 0
    for activity in analytics.customers.values():
        active_days = len(activity.active_days)
        if active_days <= trial_days:
            continue
        paying += 1
        paid_days = active_days - trial_days
        periods = math.ceil(paid_days / pricing.min_paid_days)
        total_cents += periods * pricing.cost_cents
    monthly = int(round(total_cents * 30.0 / window_days))
    per_period = pricing.cost_cents / 100.0
    return ReciprocityRevenueEstimate(
        service=analytics.service,
        paying_accounts=paying,
        monthly_revenue_cents=monthly,
        fee_description=f"${per_period:.2f}/{pricing.min_paid_days}d",
    )


@dataclass
class HublaagramRevenueEstimate:
    """The Table 9 breakdown."""

    no_outbound_accounts: int = 0
    no_outbound_cents: int = 0
    one_time_like_buyers: int = 0
    one_time_like_cents: int = 0
    monthly_tier_accounts: dict[str, int] = field(default_factory=dict)
    monthly_tier_cents: dict[str, int] = field(default_factory=dict)
    ad_impressions: int = 0
    ad_cents_low: int = 0
    ad_cents_high: int = 0

    @property
    def one_time_total_cents(self) -> int:
        return self.no_outbound_cents

    @property
    def monthly_total_low_cents(self) -> int:
        return self.one_time_like_cents + sum(self.monthly_tier_cents.values()) + self.ad_cents_low

    @property
    def monthly_total_high_cents(self) -> int:
        return self.one_time_like_cents + sum(self.monthly_tier_cents.values()) + self.ad_cents_high


def _likes_by_account(
    activity: AttributedActivity,
) -> tuple[dict[AccountId, dict[int, dict[int, int]]], dict[AccountId, dict[int, dict[int, int]]]]:
    """Attributed inbound likes grouped two ways.

    Returns ``(hourly, daily)`` where hourly[account][media][tick] and
    daily[account][media][day] count service-delivered likes.
    """
    hourly: dict[AccountId, dict[int, dict[int, int]]] = defaultdict(
        lambda: defaultdict(lambda: defaultdict(int))
    )
    daily: dict[AccountId, dict[int, dict[int, int]]] = defaultdict(
        lambda: defaultdict(lambda: defaultdict(int))
    )
    for record in activity.records:
        if record.action_type is not ActionType.LIKE:
            continue
        if record.status is ActionStatus.BLOCKED:
            continue
        if record.target_account is None or record.target_media is None:
            continue
        hourly[record.target_account][record.target_media][record.tick] += 1
        daily[record.target_account][record.target_media][record.day] += 1
    return hourly, daily


def _median(values: list[float]) -> float:
    values = sorted(values)
    mid = len(values) // 2
    if len(values) % 2:
        return float(values[mid])
    return (values[mid - 1] + values[mid]) / 2.0


def estimate_hublaagram_revenue(
    activity: AttributedActivity,
    catalog: HublaagramCatalog,
    free_like_ceiling_per_hour: int,
    likes_per_free_request: int,
    follows_per_free_request: int,
    window_days: int,
) -> HublaagramRevenueEstimate:
    """Hublaagram's accounting model (Section 5.2, Table 9).

    * no-outbound fee: accounts that only receive, never source;
    * paid like customers: ever exceeded the free hourly ceiling on a photo;
    * one-time packages: photos beyond the smallest package size on
      accounts whose daily median likes/photo sits below the lowest tier;
    * monthly tiers: paid accounts mapped by median likes/photo;
    * ads: free-action volume divided into request-sized chunks, one
      conservative impression each, priced at the CPM band.
    """
    estimate = HublaagramRevenueEstimate()
    # --- one-time no-outbound fee --------------------------------------
    inbound_only = activity.inbound_only_accounts
    estimate.no_outbound_accounts = len(inbound_only)
    estimate.no_outbound_cents = len(inbound_only) * catalog.no_collusion_fee_cents

    hourly, daily = _likes_by_account(activity)

    # --- classify paid like customers ----------------------------------
    paid_accounts: set[AccountId] = set()
    for account, media_map in hourly.items():
        for counts in media_map.values():
            if any(n > free_like_ceiling_per_hour for n in counts.values()):
                paid_accounts.add(account)
                break

    smallest_package = min(catalog.one_time_packages, key=lambda p: p.likes)
    lowest_tier_bound = catalog.monthly_tiers[0].likes_low

    one_time_photos = 0
    tier_accounts: dict[str, int] = defaultdict(int)
    tier_cents: dict[str, int] = defaultdict(int)
    for account in paid_accounts:
        media_daily = daily[account]
        photo_totals = [sum(day_counts.values()) for day_counts in media_daily.values()]
        daily_values = [n for day_counts in media_daily.values() for n in day_counts.values()]
        median_daily = _median(daily_values) if daily_values else 0.0
        median_per_photo = _median([float(t) for t in photo_totals]) if photo_totals else 0.0
        if median_daily < lowest_tier_bound:
            # One-time buyer candidate: single photos past the package size.
            big_photos = sum(1 for total in photo_totals if total > smallest_package.likes)
            if big_photos:
                one_time_photos += big_photos
                continue
        tier = catalog.tier_for(median_per_photo)
        if tier is None and median_per_photo >= catalog.monthly_tiers[-1].likes_high:
            tier = catalog.monthly_tiers[-1]
        if tier is None and median_per_photo >= lowest_tier_bound:
            tier = catalog.monthly_tiers[0]
        if tier is not None:
            label = f"{tier.likes_low}-{tier.likes_high}"
            tier_accounts[label] += 1
            tier_cents[label] += tier.cost_cents
    estimate.one_time_like_buyers = one_time_photos
    estimate.one_time_like_cents = one_time_photos * smallest_package.cost_cents
    estimate.monthly_tier_accounts = dict(tier_accounts)
    estimate.monthly_tier_cents = dict(tier_cents)

    # --- advertisements -------------------------------------------------
    free_likes = 0
    free_follows = 0
    for record in activity.records:
        if record.status is ActionStatus.BLOCKED or record.target_account is None:
            continue
        if record.target_account in paid_accounts or record.target_account in inbound_only:
            continue
        if record.action_type is ActionType.LIKE:
            free_likes += 1
        elif record.action_type is ActionType.FOLLOW:
            free_follows += 1
    impressions = free_likes // max(likes_per_free_request, 1) + free_follows // max(
        follows_per_free_request, 1
    )
    estimate.ad_impressions = impressions
    estimate.ad_cents_low = int(round(impressions * LOW_CPM_CENTS / 1000.0))
    estimate.ad_cents_high = int(round(impressions * HIGH_CPM_CENTS / 1000.0))
    del window_days  # monthly tiers and fees are already month-denominated
    return estimate
