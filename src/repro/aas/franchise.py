"""The Insta* franchise program (paper Section 3.3).

"We also discovered that the Instalex and Instazood services were
independently operated franchisees of the same parent organization
(which offers franchising services ranging from $1,990 to $30,990 per
month). Since they appear to be operated independently, we evaluate
these two services separately until Section 5 where we combine the two
services when we cannot separate their actions."

The parent organization licenses its automation stack and hosting
infrastructure to franchisees. Because every franchise runs the same
stack out of the same infrastructure, their platform traffic is
indistinguishable — which is why the paper reports them merged as
Insta*, and why Figure 2 shows a large "OTHER" country tail the authors
"suspect is an artifact of undiscovered franchised services around the
world".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aas.ledger import Payment, PaymentLedger
from repro.aas.pricing import SubscriptionPricing, dollars
from repro.aas.reciprocity_service import ReciprocityAbuseService, ReciprocityServiceConfig
from repro.aas.base import ServiceDescriptor, ServiceType
from repro.aas.targeting import CuratedPool, ReciprocityTargeting
from repro.netsim.fabric import NetworkFabric
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionType


@dataclass(frozen=True)
class FranchiseTier:
    """One license tier of the parent organization."""

    name: str
    monthly_fee_cents: int

    def __post_init__(self):
        if self.monthly_fee_cents <= 0:
            raise ValueError("franchise fees must be positive")


#: The advertised range: $1,990 to $30,990 per month (instalex.pro/franchise).
FRANCHISE_TIERS: tuple[FranchiseTier, ...] = (
    FranchiseTier("starter", dollars(1_990)),
    FranchiseTier("growth", dollars(7_990)),
    FranchiseTier("enterprise", dollars(30_990)),
)


class FranchiseProgram:
    """The parent organization: shared stack, per-franchise businesses."""

    def __init__(
        self,
        platform: InstagramPlatform,
        fabric: NetworkFabric,
        rng: np.random.Generator,
        stack_variant: str = "aas-insta-parent",
        hosting_country: str = "USA",
    ):
        self.platform = platform
        self.fabric = fabric
        self.rng = rng
        self.stack_variant = stack_variant
        self.hosting_country = hosting_country
        self.ledger = PaymentLedger()  # franchise fees, not end-customer money
        self.franchises: dict[str, ReciprocityAbuseService] = {}
        self._tier_of: dict[str, FranchiseTier] = {}

    def launch_franchise(
        self,
        name: str,
        operating_country: str,
        candidates: list[AccountId],
        tier: FranchiseTier,
        pricing: SubscriptionPricing,
        budget_scale: float = 1.0,
        curated: CuratedPool | None = None,
    ) -> ReciprocityAbuseService:
        """Stand up a new franchise on the parent's stack and infra.

        The returned service is operated independently (own customers,
        own ledger, own pricing) but emits traffic indistinguishable from
        every sibling — same client variant, same exit ASNs.
        """
        if name in self.franchises:
            raise ValueError(f"franchise {name!r} already exists")
        if tier not in FRANCHISE_TIERS:
            raise ValueError("unknown franchise tier")
        descriptor = ServiceDescriptor(
            name=name,
            service_type=ServiceType.RECIPROCITY_ABUSE,
            offered_actions=frozenset(
                {ActionType.LIKE, ActionType.FOLLOW, ActionType.COMMENT, ActionType.UNFOLLOW}
            ),
            operating_country=operating_country,
            asn_countries=(self.hosting_country,),
            stack_variant=self.stack_variant,
        )
        config = ReciprocityServiceConfig(
            pricing=pricing,
            daily_budgets={
                ActionType.LIKE: 48.0 * budget_scale,
                ActionType.FOLLOW: 60.0 * budget_scale,
                ActionType.COMMENT: 14.0 * budget_scale,
            },
        )
        targeting = ReciprocityTargeting(
            self.platform,
            candidates,
            self.rng,
            out_degree_bias=1.2,
            in_degree_bias=1.6,
            curated=curated,
        )
        service = ReciprocityAbuseService(
            descriptor, self.platform, self.fabric, self.rng, config, targeting
        )
        self.franchises[name] = service
        self._tier_of[name] = tier
        return service

    def collect_monthly_fees(self, franchise_account: AccountId = 0) -> int:
        """Bill every franchise its tier fee; returns cents collected.

        Fees are keyed by a synthetic account id per franchise (the
        parent's books track businesses, not platform accounts).
        """
        total = 0
        for index, (name, tier) in enumerate(sorted(self._tier_of.items())):
            payment = Payment(
                customer=franchise_account + index + 1,
                amount_cents=tier.monthly_fee_cents,
                tick=self.platform.clock.now,
                item=f"franchise-fee-{name.lower()}-{tier.name}",
            )
            self.ledger.record(payment)
            total += tier.monthly_fee_cents
        return total

    def tick(self) -> None:
        """Advance every franchise's automation one hour."""
        for service in self.franchises.values():
            service.tick()
