"""Shared AAS machinery: descriptors, customer records, credential use.

A required step when registering with any AAS is handing over Instagram
credentials (Section 3.3.1). The base class stores them, logs in through
the platform like any client would (from the service's hosting
endpoints, with its automation stack's fingerprint), caches sessions,
and transparently re-authenticates — losing the customer if the password
was reset, exactly the revocation mechanism the paper describes.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.aas.ledger import Payment, PaymentLedger
from repro.netsim.client import ClientEndpoint, DeviceFingerprint
from repro.netsim.fabric import NetworkFabric
from repro.obs import Counter
from repro.platform.auth import Session
from repro.platform.errors import (
    ActionBlockedError,
    AuthenticationError,
    InvalidActionError,
    PlatformError,
)
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionType


class ServiceType(enum.Enum):
    """The paper's AAS taxonomy (Section 3)."""

    RECIPROCITY_ABUSE = "reciprocity-abuse"
    COLLUSION_NETWORK = "collusion-network"


class IssueOutcome(enum.Enum):
    """What happened to one automation-issued action."""

    DELIVERED = "delivered"
    BLOCKED = "blocked"
    INVALID = "invalid"  # duplicate like/follow etc.
    LOST_ACCESS = "lost-access"  # credentials revoked
    FAILED = "failed"


@dataclass(frozen=True)
class ServiceDescriptor:
    """Static facts about a service (paper Tables 1 and 7)."""

    name: str
    service_type: ServiceType
    offered_actions: frozenset[ActionType]
    operating_country: str
    asn_countries: tuple[str, ...]
    #: how many exit IPs the service runs per hosting ASN; Followersgratis's
    #: tiny pool is why pre-existing defenses already policed it (Section 5)
    endpoints_per_asn: int = 8
    #: the automation stack's low-level client tell. Franchises of one
    #: parent (Instalex/Instazood) share a stack — which is exactly why
    #: the paper "cannot differentiate actions performed by individual
    #: franchises" and reports them combined as Insta*.
    stack_variant: str = ""

    def __post_init__(self):
        if not self.offered_actions:
            raise ValueError("a service must offer at least one action type")
        required = {ActionType.LIKE, ActionType.FOLLOW}
        if not required <= self.offered_actions:
            raise ValueError("every AAS offers likes and follows (paper Section 3.3.1)")


@dataclass
class CustomerRecord:
    """One enrolled customer account."""

    account_id: AccountId
    username: str
    password: str
    enrolled_at: int
    requested_actions: frozenset[ActionType]
    trial_expires: int
    paid_until: int = 0
    lost_credentials: bool = False
    cancelled: bool = False
    #: follows this service issued on the customer's behalf (for the
    #: auto-unfollow feature all reciprocity AASs offer)
    issued_follows: list[AccountId] = field(default_factory=list)
    #: accounts already targeted for this customer (services avoid repeats)
    targeted: set[AccountId] = field(default_factory=set)
    #: optional audience restriction: "customers can provide ... a list
    #: of hashtags to narrow the accounts that a AAS will interact with"
    #: (paper Section 3.3.1); empty means no restriction
    target_hashtags: tuple[str, ...] = ()

    def service_active(self, tick: int) -> bool:
        """Whether automation should run for this customer at ``tick``."""
        if self.lost_credentials or self.cancelled:
            return False
        return tick < max(self.trial_expires, self.paid_until)

    def is_paid(self, tick: int) -> bool:
        return tick < self.paid_until


class AccountAutomationService(abc.ABC):
    """Base class for both engine kinds."""

    def __init__(
        self,
        descriptor: ServiceDescriptor,
        platform: InstagramPlatform,
        fabric: NetworkFabric,
        rng: np.random.Generator,
    ):
        self.descriptor = descriptor
        self.platform = platform
        self.fabric = fabric
        self.rng = rng
        self.ledger = PaymentLedger()
        self.customers: dict[AccountId, CustomerRecord] = {}
        #: the automation stack's fingerprint: claims to be a stock mobile
        #: client but carries the stack's stable low-level tells
        variant = descriptor.stack_variant or f"aas-{descriptor.name.lower()}"
        self.fingerprint = DeviceFingerprint(family="android", variant=variant)
        self._endpoints: list[ClientEndpoint] = []
        # Franchises sharing a stack (stack_variant) also share the parent's
        # hosting infrastructure, i.e. the same exit ASes.
        infra = (descriptor.stack_variant or descriptor.name).lower()
        for country in descriptor.asn_countries:
            for _ in range(descriptor.endpoints_per_asn):
                self._endpoints.append(
                    fabric.hosting_endpoint(country, self.fingerprint, name=f"{infra}-{country.lower()}")
                )
        self._endpoint_cursor = 0
        self._sessions: dict[AccountId, Session] = {}
        self.outcome_counts: dict[IssueOutcome, int] = {o: 0 for o in IssueOutcome}
        # per-service emission telemetry, resolved once off the platform's
        # obs handle so the per-action cost is a single counter bump
        self._obs_outcomes: dict[IssueOutcome, Counter] = {
            o: platform.obs.counter("aas.actions", service=descriptor.name, outcome=o.value)
            for o in IssueOutcome
        }

    # ------------------------------------------------------------------
    # Network identity
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.descriptor.name

    def current_asns(self) -> set[int]:
        return {endpoint.asn for endpoint in self._endpoints}

    def next_endpoint(self) -> ClientEndpoint:
        endpoint = self._endpoints[self._endpoint_cursor]
        self._endpoint_cursor = (self._endpoint_cursor + 1) % len(self._endpoints)
        return endpoint

    def replace_endpoints(self, endpoints: list[ClientEndpoint]) -> None:
        """Swap the exit pool (ASN migration / proxy adoption)."""
        if not endpoints:
            raise ValueError("cannot run a service without endpoints")
        self._endpoints = list(endpoints)
        self._endpoint_cursor = 0
        self._sessions.clear()  # sessions re-minted from the new origin
        self._on_endpoints_replaced()

    def _on_endpoints_replaced(self) -> None:
        """Hook for engines: fresh infrastructure resets adaptation state
        (the service assumes the new exits are clean)."""

    # ------------------------------------------------------------------
    # Customers and credentials
    # ------------------------------------------------------------------

    def register_customer(
        self,
        username: str,
        password: str,
        requested_actions: frozenset[ActionType] | set[ActionType],
        trial_ticks: int,
        backdate_ticks: int = 0,
        target_hashtags: tuple[str, ...] = (),
    ) -> CustomerRecord:
        """Enroll an account; the service logs in immediately (Section 4.2:
        "our accounts becoming active within minutes of requesting free
        service").

        ``backdate_ticks`` lets scenario builders seed a pre-existing
        customer base whose enrollment predates the measurement window.
        """
        requested = frozenset(requested_actions)
        unsupported = requested - self.descriptor.offered_actions
        if unsupported:
            raise ValueError(f"{self.name} does not offer {sorted(a.value for a in unsupported)}")
        if backdate_ticks < 0:
            raise ValueError("backdate_ticks must be non-negative")
        account_id = self.platform.resolve_username(username)
        if account_id in self.customers and not self.customers[account_id].cancelled:
            raise ValueError(f"{username} is already enrolled in {self.name}")
        endpoint = self.next_endpoint()
        session = self.platform.login(username, password, endpoint)  # raises on bad creds
        now = self.platform.clock.now
        enrolled_at = now - backdate_ticks
        record = CustomerRecord(
            account_id=account_id,
            username=username,
            password=password,
            enrolled_at=enrolled_at,
            requested_actions=requested,
            trial_expires=enrolled_at + trial_ticks,
            target_hashtags=tuple(tag.lower() for tag in target_hashtags),
        )
        self.customers[account_id] = record
        self._sessions[account_id] = session
        return record

    def cancel_customer(self, account_id: AccountId) -> None:
        record = self.customers.get(account_id)
        if record is None:
            raise KeyError(f"unknown customer {account_id}")
        record.cancelled = True
        self._sessions.pop(account_id, None)

    def record_payment(self, account_id: AccountId, amount_cents: int, item: str) -> Payment:
        if account_id not in self.customers:
            raise KeyError(f"unknown customer {account_id}")
        payment = Payment(
            customer=account_id,
            amount_cents=amount_cents,
            tick=self.platform.clock.now,
            item=item,
        )
        self.ledger.record(payment)
        return payment

    def active_customers(self, tick: int) -> list[CustomerRecord]:
        return [c for c in self.customers.values() if c.service_active(tick)]

    def _session_for(self, record: CustomerRecord) -> Optional[Session]:
        """A valid session for the customer, re-logging-in as needed.

        Returns None (and marks the customer lost) if the stored password
        no longer works — the paper's revocation path.
        """
        session = self._sessions.get(record.account_id)
        if session is not None:
            try:
                self.platform.auth.validate(session)
                return session
            except PlatformError:
                pass
        try:
            session = self.platform.login(record.username, record.password, self.next_endpoint())
        except (AuthenticationError, PlatformError):
            record.lost_credentials = True
            self._sessions.pop(record.account_id, None)
            return None
        self._sessions[record.account_id] = session
        return session

    # ------------------------------------------------------------------
    # Action issuing
    # ------------------------------------------------------------------

    def _issue(self, record: CustomerRecord, call: Callable[[Session, ClientEndpoint], object]) -> IssueOutcome:
        """Run one automation action from the customer's account.

        ``call`` receives a session and the service exit endpoint and
        performs the platform call. Outcome classification feeds the
        service's block detector.
        """
        session = self._session_for(record)
        if session is None:
            outcome = IssueOutcome.LOST_ACCESS
        else:
            endpoint = self.next_endpoint()
            try:
                call(session, endpoint)
                outcome = IssueOutcome.DELIVERED
            except ActionBlockedError:
                outcome = IssueOutcome.BLOCKED
            except InvalidActionError:
                outcome = IssueOutcome.INVALID
            except PlatformError:
                outcome = IssueOutcome.FAILED
        self.outcome_counts[outcome] += 1
        self._obs_outcomes[outcome].inc()
        return outcome

    # ------------------------------------------------------------------

    @abc.abstractmethod
    def tick(self) -> None:
        """Run one simulated hour of the service's automation."""

    def next_wake_tick(self, now: int) -> int:
        """When the scheduler must next run this service (``now + 1`` =
        due every tick). Engines draw per-customer RNG each tick, so the
        default never skips; an engine may override only if its idle
        tick is verifiably free of RNG and platform calls."""
        return now + 1
