"""Pop-under advertisement monetization (paper Section 5.2).

Hublaagram shows 1-4 pop-under ads (PopAds network) per free service
request. Revenue per thousand impressions (CPM) depends on visitor
geography; the paper uses a $0.60-$4.00 CPM band. The ad network here
just counts impressions; the revenue *estimation* under the CPM band
lives in :mod:`repro.analysis.revenue`, mirroring the paper's
methodology (which conservatively assumes one ad per request).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

#: Paper: "for every 1,000 impressions (CPM) Hublaagram receives between
#: $0.60 and $4.00".
LOW_CPM_CENTS = 60
HIGH_CPM_CENTS = 400


class PopUnderAdNetwork:
    """Counts pop-under impressions served to service visitors."""

    def __init__(self, rng: np.random.Generator, ads_per_request: tuple[int, int] = (1, 4)):
        lo, hi = ads_per_request
        if lo < 1 or hi < lo:
            raise ValueError("ads_per_request must be a valid positive range")
        self._rng = rng
        self._range = (lo, hi)
        self.impressions = 0
        self._by_country: dict[str, int] = defaultdict(int)

    def serve_request(self, visitor_country: str) -> int:
        """Serve ads for one site interaction; returns impressions shown."""
        shown = int(self._rng.integers(self._range[0], self._range[1] + 1))
        self.impressions += shown
        self._by_country[visitor_country.upper()] += shown
        return shown

    def impressions_by_country(self) -> dict[str, int]:
        return dict(self._by_country)

    def true_revenue_cents(self, cpm_cents_by_country: dict[str, int], default_cpm_cents: int = 150) -> int:
        """Ground-truth ad revenue given per-country CPMs."""
        total = 0.0
        for country, impressions in self._by_country.items():
            cpm = cpm_cents_by_country.get(country, default_cpm_cents)
            total += impressions * cpm / 1000.0
        return int(round(total))
