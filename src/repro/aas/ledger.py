"""The service-side payment ledger.

The paper *estimates* revenue from observable activity (Section 5.2);
the simulated services additionally keep ground-truth ledgers so the
estimators' accuracy can be quantified — something the authors could
not do. Table 10's new-vs-preexisting payer split is computed here.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.platform.models import AccountId
from repro.util.timeutils import days


@dataclass(frozen=True)
class Payment:
    """One customer payment."""

    customer: AccountId
    amount_cents: int
    tick: int
    item: str

    def __post_init__(self):
        if self.amount_cents <= 0:
            raise ValueError("payments must be positive")


class PaymentLedger:
    """Append-only payment history for one service."""

    def __init__(self):
        self._payments: list[Payment] = []
        self._by_customer: dict[AccountId, list[int]] = defaultdict(list)

    def record(self, payment: Payment) -> None:
        self._by_customer[payment.customer].append(len(self._payments))
        self._payments.append(payment)

    def __len__(self) -> int:
        return len(self._payments)

    def __iter__(self):
        return iter(self._payments)

    def payments_of(self, customer: AccountId) -> list[Payment]:
        return [self._payments[i] for i in self._by_customer.get(customer, ())]

    def total_cents(self, start_tick: int = 0, end_tick: int | None = None) -> int:
        """Gross revenue in [start_tick, end_tick)."""
        return sum(
            p.amount_cents
            for p in self._payments
            if p.tick >= start_tick and (end_tick is None or p.tick < end_tick)
        )

    def paying_customers(self, start_tick: int = 0, end_tick: int | None = None) -> set[AccountId]:
        return {
            p.customer
            for p in self._payments
            if p.tick >= start_tick and (end_tick is None or p.tick < end_tick)
        }

    def first_payment_tick(self, customer: AccountId) -> int | None:
        payments = self.payments_of(customer)
        if not payments:
            return None
        return min(p.tick for p in payments)

    def new_vs_preexisting_split(self, window_start: int, window_ticks: int = days(30)) -> dict[str, int]:
        """Revenue split between first-time and repeat payers (Table 10).

        A payer is "new" in the window if their first-ever payment falls
        inside it; otherwise they are a preexisting customer renewing.
        Returns cents for each class.
        """
        window_end = window_start + window_ticks
        new_cents = 0
        preexisting_cents = 0
        for payment in self._payments:
            if not window_start <= payment.tick < window_end:
                continue
            first = self.first_payment_tick(payment.customer)
            if first is not None and first >= window_start:
                new_cents += payment.amount_cents
            else:
                preexisting_cents += payment.amount_cents
        return {"new": new_cents, "preexisting": preexisting_cents}

    def revenue_by_item(self, start_tick: int = 0, end_tick: int | None = None) -> dict[str, int]:
        """Gross revenue per item label in the window."""
        out: dict[str, int] = defaultdict(int)
        for p in self._payments:
            if p.tick >= start_tick and (end_tick is None or p.tick < end_tick):
                out[p.item] += p.amount_cents
        return dict(out)

    @staticmethod
    def merge_totals(ledgers: Iterable["PaymentLedger"], start_tick: int = 0, end_tick: int | None = None) -> int:
        return sum(ledger.total_cents(start_tick, end_tick) for ledger in ledgers)
