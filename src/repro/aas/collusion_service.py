"""The collusion-network engine (paper Sections 3.2, 5.2).

Hublaagram / Followersgratis: customer accounts are used *in concert* —
each enrolled account both receives inbound actions and is used as a
source of outbound actions to other customers ("similar, in principle,
to the notion of a mix network").

Implemented mechanics:

* free service requests, rate limited per customer (Hublaagram: two
  requests per hour, ~80 likes or ~40 follows each — hence the 160
  likes/hour free ceiling its revenue model keys on),
* pop-under ads served on every free request (1-4 per visit),
* the paid catalog: one-time like packages "applied as fast as possible
  to a single post", monthly likes-per-photo tiers applied to each new
  photo, and the one-time "no collusion network" opt-out fee,
* block detection with per-action-type deployment lag (Hublaagram took
  ~3 weeks to react to like blocking, Figure 6) and throttle adaptation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.aas.ads import PopUnderAdNetwork
from repro.aas.adaptation import MigrationPolicy
from repro.aas.base import (
    AccountAutomationService,
    CustomerRecord,
    IssueOutcome,
    ServiceDescriptor,
)
from repro.aas.blockdetect import BlockDetector, BlockDetectorConfig
from repro.aas.pricing import HublaagramCatalog, LikePackage, MonthlyLikeTier
from repro.netsim.fabric import NetworkFabric
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionType, ApiSurface, MediaId
from repro.util.timeutils import HOURS_PER_DAY


class ServiceSuspendedError(RuntimeError):
    """The service has listed its offerings as out of stock."""


@dataclass
class Order:
    """One fulfilment job: deliver ``quantity`` inbound actions."""

    order_id: int
    customer: AccountId
    action_type: ActionType
    quantity: int
    per_hour: int
    created_at: int
    #: restrict likes to a single media item (one-time packages)
    single_media: Optional[MediaId] = None
    delivered: int = 0
    is_paid: bool = False
    #: orders the network cannot fill (e.g. every available source already
    #: follows the recipient) are abandoned after this many ticks
    ttl_ticks: int = 48

    @property
    def open(self) -> bool:
        return self.delivered < self.quantity

    def expired(self, now: int) -> bool:
        return now >= self.created_at + self.ttl_ticks


@dataclass
class MonthlyPlanState:
    """A paying monthly-tier subscription (Table 3, "Month" rows)."""

    tier: MonthlyLikeTier
    target_per_photo: int
    expires: int
    #: delivered like counts per media item
    progress: dict[MediaId, int] = field(default_factory=dict)


@dataclass
class CollusionServiceConfig:
    """Engine knobs for one collusion-network service."""

    catalog: HublaagramCatalog
    likes_per_free_request: int = 80
    follows_per_free_request: int = 40
    comments_per_free_request: int = 10
    free_requests_per_hour: int = 2
    #: delivery speed of free orders (per hour, per order)
    free_delivery_per_hour: int = 80
    #: delivery speed of paid orders — exceeds the free ceiling, which is
    #: exactly the signal the paper's revenue estimator keys on
    paid_delivery_per_hour: int = 400
    #: hours a monthly plan runs
    plan_ticks: int = 30 * HOURS_PER_DAY
    detector: BlockDetectorConfig = field(default_factory=BlockDetectorConfig)
    detector_enabled: bool = True
    offers_ads: bool = True
    #: action types available through the free tier (Followersgratis only
    #: offers free follows, Section 3.3.2)
    free_action_types: frozenset = frozenset(
        {ActionType.LIKE, ActionType.FOLLOW, ActionType.COMMENT}
    )
    #: days of being unable to deliver its paid like products (plan
    #: targets capped below deliverability, or likes outright blocked)
    #: after which the service stops accepting payments — the paper's
    #: epilogue: "Hublaagram, unable to produce sustainable unblocked
    #: actions, stopped accepting customer payments by listing all
    #: offered services as out of stock"
    suspend_sales_after_days: int = 30

    def __post_init__(self):
        if self.likes_per_free_request <= 0 or self.follows_per_free_request <= 0:
            raise ValueError("free request quantities must be positive")
        if self.free_requests_per_hour < 1:
            raise ValueError("free_requests_per_hour must be at least 1")
        if self.paid_delivery_per_hour <= self.free_delivery_per_hour:
            raise ValueError("paid delivery must be faster than free delivery")

    @property
    def free_like_ceiling_per_hour(self) -> int:
        """The emergent free-tier ceiling (Hublaagram: 160 likes/hour)."""
        return self.likes_per_free_request * self.free_requests_per_hour


class CollusionNetworkService(AccountAutomationService):
    """Hublaagram / Followersgratis engine."""

    def __init__(
        self,
        descriptor: ServiceDescriptor,
        platform: InstagramPlatform,
        fabric: NetworkFabric,
        rng: np.random.Generator,
        config: CollusionServiceConfig,
        ads: PopUnderAdNetwork | None = None,
        migration: MigrationPolicy | None = None,
    ):
        super().__init__(descriptor, platform, fabric, rng)
        self.config = config
        self.ads = ads
        self.migration = migration
        self.detector = BlockDetector(config.detector, enabled=config.detector_enabled)
        self._orders: list[Order] = []
        self._order_ids = itertools.count(1)
        self._free_request_ticks: dict[AccountId, list[int]] = {}
        self.no_outbound: set[AccountId] = set()
        self.monthly_plans: dict[AccountId, MonthlyPlanState] = {}
        self._source_cursor = 0
        self._last_adjust_day = -1
        #: per-recipient adaptive daily like caps, installed once the
        #: service observes its likes to that recipient being blocked
        #: (per-account adaptation keeps control-bin customers unaffected)
        self._recipient_caps: dict[AccountId, float] = {}
        self._recipient_last_block: dict[AccountId, int] = {}
        #: attempted inbound likes per (recipient, day)
        self._recipient_attempts: dict[tuple[AccountId, int], int] = {}
        #: epilogue state: consecutive blocked days and the sales flag
        self._blocked_day_streak = 0
        self.sales_suspended = False

    # ------------------------------------------------------------------
    # Customer-facing requests
    # ------------------------------------------------------------------

    def _check_free_rate(self, account_id: AccountId) -> bool:
        now = self.platform.clock.now
        history = self._free_request_ticks.setdefault(account_id, [])
        history[:] = [t for t in history if t > now - 1]  # 1-tick (hour) window
        if len(history) >= self.config.free_requests_per_hour:
            return False
        history.append(now)
        return True

    def request_free_service(self, account_id: AccountId, action_type: ActionType) -> Optional[Order]:
        """A customer visits the site and requests free inbound actions.

        Serves pop-under ads on every interaction; returns None when the
        customer is rate limited.
        """
        record = self._require_customer(account_id)
        if self.ads is not None and self.config.offers_ads:
            country = self._customer_country(record)
            self.ads.serve_request(country)
        if not self._check_free_rate(account_id):
            return None
        quantities = {
            ActionType.LIKE: self.config.likes_per_free_request,
            ActionType.FOLLOW: self.config.follows_per_free_request,
            ActionType.COMMENT: self.config.comments_per_free_request,
        }
        if (
            action_type not in quantities
            or action_type not in self.descriptor.offered_actions
            or action_type not in self.config.free_action_types
        ):
            raise ValueError(f"{self.name} offers no free {action_type.value} service")
        order = Order(
            order_id=next(self._order_ids),
            customer=account_id,
            action_type=action_type,
            quantity=quantities[action_type],
            per_hour=self.config.free_delivery_per_hour,
            created_at=self.platform.clock.now,
        )
        self._orders.append(order)
        return order

    def purchase_no_outbound(self, account_id: AccountId) -> None:
        """One-time fee: never use this account as a collusion source."""
        self._require_sales_open()
        self._require_customer(account_id)
        self.no_outbound.add(account_id)
        self.record_payment(
            account_id, self.config.catalog.no_collusion_fee_cents, item="no-outbound-fee"
        )

    def purchase_one_time_likes(self, account_id: AccountId, package: LikePackage, media_id: MediaId) -> Order:
        """One-time like package applied "as fast as possible" to one post."""
        self._require_sales_open()
        self._require_customer(account_id)
        if package not in self.config.catalog.one_time_packages:
            raise ValueError("unknown package")
        self.record_payment(account_id, package.cost_cents, item=f"one-time-{package.likes}-likes")
        order = Order(
            order_id=next(self._order_ids),
            customer=account_id,
            action_type=ActionType.LIKE,
            quantity=package.likes,
            per_hour=self.config.paid_delivery_per_hour,
            created_at=self.platform.clock.now,
            single_media=media_id,
            is_paid=True,
        )
        self._orders.append(order)
        return order

    def purchase_monthly_plan(self, account_id: AccountId, tier: MonthlyLikeTier) -> MonthlyPlanState:
        """Monthly tier: the bought like quantity lands on each new photo."""
        self._require_sales_open()
        self._require_customer(account_id)
        if tier not in self.config.catalog.monthly_tiers:
            raise ValueError("unknown tier")
        self.record_payment(
            account_id, tier.cost_cents, item=f"monthly-{tier.likes_low}-{tier.likes_high}"
        )
        target = int(self.rng.integers(tier.likes_low, tier.likes_high))
        state = MonthlyPlanState(
            tier=tier,
            target_per_photo=max(1, target),
            expires=self.platform.clock.now + self.config.plan_ticks,
        )
        self.monthly_plans[account_id] = state
        record = self.customers[account_id]
        record.paid_until = max(record.paid_until, state.expires)
        return state

    def _require_sales_open(self) -> None:
        if self.sales_suspended:
            raise ServiceSuspendedError(f"{self.name}: all services are out of stock")

    def _require_customer(self, account_id: AccountId) -> CustomerRecord:
        record = self.customers.get(account_id)
        if record is None or record.cancelled:
            raise KeyError(f"{account_id} is not an active customer of {self.name}")
        return record

    def _customer_country(self, record: CustomerRecord) -> str:
        endpoints = self.platform.auth.login_endpoints(record.account_id)
        if not endpoints:
            return "OTHER"
        # Site visits come from the customer's own network, i.e. the most
        # recent non-service login if one exists.
        service_asns = self.current_asns()
        own = [e for e in endpoints if e.asn not in service_asns]
        chosen = own[-1] if own else endpoints[-1]
        return self.fabric.registry.country_of_asn(chosen.asn)

    # ------------------------------------------------------------------
    # Fulfilment
    # ------------------------------------------------------------------

    def _source_pool(self, exclude: AccountId) -> list[CustomerRecord]:
        now = self.platform.clock.now
        if getattr(self, "_pool_cache_tick", None) != now:
            # Only customers with an active service window are driven as
            # sources: the network stops using accounts whose engagement
            # lapsed (dormant credentials draw attention for no benefit).
            self._pool_cache = [
                record
                for record in self.customers.values()
                if record.account_id not in self.no_outbound and record.service_active(now)
            ]
            self._pool_cache_tick = now
            if self.platform.fast_path:
                self._pool_index = {
                    record.account_id: i for i, record in enumerate(self._pool_cache)
                }
        if self.platform.fast_path:
            # Same list the filter below builds, assembled by slicing
            # around the (at most one) excluded element instead of
            # re-testing every record per order. Callers only read and
            # index the pool, so returning the cache itself when the
            # excluded account is not in it is safe.
            cache = self._pool_cache
            i = self._pool_index.get(exclude)
            if i is None:
                return cache
            return cache[:i] + cache[i + 1:]
        return [record for record in self._pool_cache if record.account_id != exclude]

    def _next_source(self, pool: list[CustomerRecord]) -> CustomerRecord:
        self._source_cursor = (self._source_cursor + 1) % len(pool)
        return pool[self._source_cursor]

    def _recipient_allowed(self, recipient: AccountId) -> bool:
        """Check the recipient's adaptive daily like cap, if one exists."""
        cap = self._recipient_caps.get(recipient)
        if cap is None:
            return True
        attempts = self._recipient_attempts.get((recipient, self.platform.clock.day), 0)
        return attempts < cap

    def _note_like_outcome(self, recipient: AccountId, outcome: IssueOutcome) -> None:
        now = self.platform.clock.now
        blocked = outcome is IssueOutcome.BLOCKED
        self.detector.observe(ActionType.LIKE, blocked, now)
        if not blocked or not self.detector.operational(ActionType.LIKE, now):
            return
        attempts = self._recipient_attempts.get((recipient, self.platform.clock.day), 1)
        current = self._recipient_caps.get(recipient, float(attempts))
        self._recipient_caps[recipient] = max(2.0, min(current, attempts) * 0.6)
        self._recipient_last_block[recipient] = now

    def _deliver_like(self, order: Order, source: CustomerRecord) -> IssueOutcome:
        if not self._recipient_allowed(order.customer):
            return IssueOutcome.FAILED
        if order.single_media is not None:
            media_id = order.single_media
        else:
            media = self.platform.media.media_of(order.customer)
            if not media:
                return IssueOutcome.FAILED
            media_id = media[int(self.rng.integers(0, len(media)))].media_id
        if self.platform.media.has_liked(media_id, source.account_id):
            return IssueOutcome.INVALID
        key = (order.customer, self.platform.clock.day)
        self._recipient_attempts[key] = self._recipient_attempts.get(key, 0) + 1
        outcome = self._issue(
            source,
            lambda session, endpoint: self.platform.like(
                session, media_id, endpoint, ApiSurface.PRIVATE_MOBILE
            ),
        )
        self._note_like_outcome(order.customer, outcome)
        return outcome

    def _deliver_follow(self, order: Order, source: CustomerRecord) -> IssueOutcome:
        if self.platform.graph.is_following(source.account_id, order.customer):
            return IssueOutcome.INVALID
        outcome = self._issue(
            source,
            lambda session, endpoint: self.platform.follow(
                session, order.customer, endpoint, ApiSurface.PRIVATE_MOBILE
            ),
        )
        self.detector.observe(ActionType.FOLLOW, outcome is IssueOutcome.BLOCKED, self.platform.clock.now)
        return outcome

    def _deliver_comment(self, order: Order, source: CustomerRecord) -> IssueOutcome:
        media = self.platform.media.media_of(order.customer)
        if not media:
            return IssueOutcome.FAILED
        media_id = media[int(self.rng.integers(0, len(media)))].media_id
        outcome = self._issue(
            source,
            lambda session, endpoint: self.platform.comment(
                session, media_id, "nice!", endpoint, ApiSurface.PRIVATE_MOBILE
            ),
        )
        self.detector.observe(ActionType.COMMENT, outcome is IssueOutcome.BLOCKED, self.platform.clock.now)
        return outcome

    def _fulfil_order(self, order: Order) -> None:
        if not self.platform.account_exists(order.customer):
            order.delivered = order.quantity  # recipient gone; close out
            return
        pool = self._source_pool(exclude=order.customer)
        if not pool:
            return
        budget = max(1, order.per_hour)
        budget = min(budget, order.quantity - order.delivered)
        action_type = order.action_type
        if self.platform.fast_path:
            # In a saturated network nearly every attempt is an RNG-free,
            # effect-free rejection — a source that already follows (or
            # already likes) the recipient, classified by a single probe.
            # The fast loops inline the cursor math and that probe so the
            # dominant (rejected) attempts cost a couple of dict/set
            # lookups; the generic loop below stays the oracle. Free like
            # orders stay generic: their media pick draws RNG *before*
            # the has-liked rejection, so the probe cannot be hoisted.
            if action_type is ActionType.FOLLOW:
                self._fulfil_follow_fast(order, pool, budget)
                return
            if action_type is ActionType.LIKE and order.single_media is not None:
                self._fulfil_like_single_fast(order, pool, budget)
                return
        if action_type is ActionType.LIKE:
            deliver = self._deliver_like
        elif action_type is ActionType.FOLLOW:
            deliver = self._deliver_follow
        else:
            deliver = self._deliver_comment
        attempts = 0
        max_attempts = budget * 4
        while budget > 0 and attempts < max_attempts:
            attempts += 1
            source = self._next_source(pool)
            outcome = deliver(order, source)
            if outcome is IssueOutcome.DELIVERED:
                order.delivered += 1
                budget -= 1
            elif outcome is IssueOutcome.BLOCKED:
                # the request was spent even though the platform refused
                # it — no instant retry storm against a blocking defender
                budget -= 1

    def _fulfil_follow_fast(self, order: Order, pool: list[CustomerRecord], budget: int) -> None:
        """Fast-path FOLLOW fulfilment: same attempts, sources, outcomes,
        and cursor positions as the generic loop over
        :meth:`_deliver_follow`, with the already-following rejection
        inlined (it draws no RNG and mutates nothing)."""
        # raw out-edge rows: `customer in row` is is_following() without
        # the method call (the scan probes once per attempt); the list is
        # live storage, so re-check its length each probe — deliveries
        # inside the loop can extend it
        out_rows = self.platform.graph.out_rows()
        customer = order.customer
        cursor = self._source_cursor
        size = len(pool)
        attempts = 0
        max_attempts = budget * 4
        observe = self.detector.observe
        while budget > 0 and attempts < max_attempts:
            attempts += 1
            cursor += 1
            if cursor >= size:
                # the saved cursor can exceed this order's (smaller) pool
                # by more than one, so wrap by modulo, not by reset
                cursor %= size
            source = pool[cursor]
            source_id = source.account_id
            row = out_rows[source_id] if source_id < len(out_rows) else None
            if row is not None and customer in row:
                continue  # IssueOutcome.INVALID: spends only the attempt
            self._source_cursor = cursor  # keep shared state exact before issuing
            outcome = self._issue(
                source,
                lambda session, endpoint: self.platform.follow(
                    session, customer, endpoint, ApiSurface.PRIVATE_MOBILE
                ),
            )
            observe(
                ActionType.FOLLOW,
                outcome is IssueOutcome.BLOCKED,
                self.platform.clock.now,
            )
            if outcome is IssueOutcome.DELIVERED:
                order.delivered += 1
                budget -= 1
            elif outcome is IssueOutcome.BLOCKED:
                budget -= 1
        self._source_cursor = cursor

    def _fulfil_like_single_fast(
        self, order: Order, pool: list[CustomerRecord], budget: int
    ) -> None:
        """Fast-path fulfilment of single-media like orders: same
        attempts, sources, outcomes, attempt tallies, and cursor
        positions as the generic loop over :meth:`_deliver_like`, with
        the recipient-cap and already-liked rejections inlined (both are
        RNG-free; only the cap check mutates nothing)."""
        media_id = order.single_media
        customer = order.customer
        has_liked = self.platform.media.has_liked
        caps_get = self._recipient_caps.get
        attempts_map = self._recipient_attempts
        day_key = (customer, self.platform.clock.day)
        cursor = self._source_cursor
        size = len(pool)
        attempts = 0
        max_attempts = budget * 4
        # loop-invariant between issues: the cap only moves inside
        # _note_like_outcome (re-read after each issue below) and the
        # day's attempt tally only moves in this loop
        cap = caps_get(customer)
        count = attempts_map.get(day_key, 0)
        while budget > 0 and attempts < max_attempts:
            attempts += 1
            cursor += 1
            if cursor >= size:
                # the saved cursor can exceed this order's (smaller) pool
                # by more than one, so wrap by modulo, not by reset
                cursor %= size
            source = pool[cursor]
            if cap is not None and count >= cap:
                continue  # IssueOutcome.FAILED: cap reached, attempt spent
            if has_liked(media_id, source.account_id):
                continue  # IssueOutcome.INVALID: attempt spent, no effects
            count += 1
            attempts_map[day_key] = count
            self._source_cursor = cursor  # keep shared state exact before issuing
            outcome = self._issue(
                source,
                lambda session, endpoint: self.platform.like(
                    session, media_id, endpoint, ApiSurface.PRIVATE_MOBILE
                ),
            )
            self._note_like_outcome(customer, outcome)
            cap = caps_get(customer)  # _note_like_outcome may have tightened it
            if outcome is IssueOutcome.DELIVERED:
                order.delivered += 1
                budget -= 1
            elif outcome is IssueOutcome.BLOCKED:
                budget -= 1
        self._source_cursor = cursor

    def _apply_monthly_plans(self) -> None:
        now = self.platform.clock.now
        for account_id, plan in list(self.monthly_plans.items()):
            if now >= plan.expires:
                del self.monthly_plans[account_id]
                continue
            if not self.platform.account_exists(account_id):
                continue
            for media in self.platform.media.media_of(account_id):
                if media.created_at < now - self.config.plan_ticks:
                    continue  # plans cover photos posted during the plan
                done = plan.progress.get(media.media_id, 0)
                if done >= plan.target_per_photo:
                    continue
                order = Order(
                    order_id=next(self._order_ids),
                    customer=account_id,
                    action_type=ActionType.LIKE,
                    quantity=min(
                        plan.target_per_photo - done,
                        max(1, self.config.paid_delivery_per_hour),
                    ),
                    per_hour=self.config.paid_delivery_per_hour,
                    created_at=now,
                    single_media=media.media_id,
                    is_paid=True,
                )
                before = order.delivered
                self._fulfil_order(order)
                plan.progress[media.media_id] = done + (order.delivered - before)

    def _adjust(self) -> None:
        now = self.platform.clock.now
        if self.platform.clock.day == self._last_adjust_day:
            return
        self._last_adjust_day = self.platform.clock.day
        if self._paid_product_unservable(now):
            self._blocked_day_streak += 1
        else:
            # decay rather than reset: brief escapes (e.g. right after an
            # ASN move, before the defender re-learns) do not erase the
            # accumulated evidence that the business is unsustainable
            self._blocked_day_streak = max(0, self._blocked_day_streak - 1)
        if (
            not self.sales_suspended
            and self._blocked_day_streak >= self.config.suspend_sales_after_days
        ):
            self.sales_suspended = True
        for recipient, cap in list(self._recipient_caps.items()):
            last_block = self._recipient_last_block.get(recipient, -(10**9))
            if now - last_block >= 2 * HOURS_PER_DAY:
                grown = cap * 1.12
                if grown > 4 * self.config.free_like_ceiling_per_hour * HOURS_PER_DAY:
                    del self._recipient_caps[recipient]  # cap outgrown: forget it
                else:
                    self._recipient_caps[recipient] = grown
        if self.migration is not None:
            capped = len(self._recipient_caps)
            active = max(len(self.active_customers(now)), 1)
            self.migration.note_state(ActionType.LIKE, capped > 0.5 * active, now)
            if self.migration.should_migrate(now):
                self.migration.migrate(self, now)

    def _paid_product_unservable(self, now: int) -> bool:
        """Whether blocking prevents delivering the paid like products.

        True when likes are being visibly blocked, or when the adaptive
        per-recipient caps sit below what the majority of monthly-plan
        customers bought — "unable to produce sustainable unblocked
        actions".
        """
        if self.detector.blocking_detected(ActionType.LIKE, now):
            return True
        if not self.monthly_plans:
            return False
        starved = 0
        for account_id, plan in self.monthly_plans.items():
            cap = self._recipient_caps.get(account_id)
            if cap is not None and cap < plan.target_per_photo:
                starved += 1
        return starved > 0.5 * len(self.monthly_plans)

    def _on_endpoints_replaced(self) -> None:
        """Migration optimism: per-recipient caps reset on the new exits."""
        self._recipient_caps.clear()
        self._recipient_last_block.clear()

    def tick(self) -> None:
        """One simulated hour of collusion-network fulfilment."""
        now = self.platform.clock.now
        for order in self._orders:
            if order.open and not order.expired(now):
                self._fulfil_order(order)
        self._orders = [o for o in self._orders if o.open and not o.expired(now)]
        self._apply_monthly_plans()
        self._adjust()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def open_orders(self) -> list[Order]:
        return [o for o in self._orders if o.open]

    def recipient_cap(self, recipient: AccountId) -> float | None:
        """The adaptive daily like cap for a recipient, if any."""
        return self._recipient_caps.get(recipient)
