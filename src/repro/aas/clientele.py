"""Customer-population dynamics for an AAS.

The paper characterizes AAS customer bases over 90 days (Section 5.1):
stock of active customers, long-term vs short-term split, birth/death
rates, trial-to-paid conversion, renewals, and purchase mixes. This
driver generates that behaviour against a service instance:

* **Reciprocity services** — customers enroll (handing over their
  credentials), run the free trial, convert to paid with the service's
  conversion rate, then renew period-over-period with a retention
  probability. Non-converts disappear when the trial lapses.
* **Collusion services** — customers mostly ride the free tier
  (requesting small action batches for as long as they stay engaged);
  minorities buy the no-outbound opt-out, monthly like tiers, or
  one-time packages, with Table 9's relative frequencies as defaults.

Customer accounts are drawn from the organic population — AAS customers
are real users, and their accounts keep behaving organically alongside
the automation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aas.base import AccountAutomationService
from repro.aas.collusion_service import CollusionNetworkService, ServiceSuspendedError
from repro.aas.ledger import Payment
from repro.aas.reciprocity_service import ReciprocityAbuseService
from repro.behavior.population import OrganicPopulation
from repro.platform.errors import PlatformError
from repro.platform.models import AccountId, ActionType, ApiSurface
from repro.util.timeutils import HOURS_PER_DAY, days


@dataclass
class ClienteleParams:
    """Lifecycle knobs for one service's customer base."""

    #: pre-existing customers seeded at scenario start
    initial_customers: int = 100
    #: fraction of the initial stock that is already paying/long-term
    initial_long_term_fraction: float = 0.5
    #: expected new enrollments per day
    daily_new_customers: float = 4.0
    #: probability a trial customer converts to paid (paper Section 5.1:
    #: Boostgram 12%, Insta* 21%, Hublaagram 37%)
    conversion_rate: float = 0.2
    #: probability a paying customer renews at each period end
    renewal_probability: float = 0.90
    #: menu of requested action-type bundles with weights (reciprocity)
    requested_actions_menu: tuple[tuple[frozenset, float], ...] = (
        (frozenset({ActionType.LIKE, ActionType.FOLLOW, ActionType.UNFOLLOW}), 0.7),
        (frozenset({ActionType.LIKE, ActionType.FOLLOW}), 0.2),
        (frozenset({ActionType.LIKE}), 0.1),
    )
    # -- collusion-network personas -----------------------------------
    #: free service requests per engaged day
    free_request_rate_per_day: float = 5.0
    #: engagement duration draws: (short_lo, short_hi, long_lo, long_hi) days
    engagement_days_short: tuple[int, int] = (1, 4)
    engagement_days_long: tuple[int, int] = (5, 60)
    #: fraction of customers whose engagement is long
    long_engagement_fraction: float = 0.5
    #: share of free requests asking for likes (rest: follows/comments)
    free_like_request_share: float = 0.55
    #: purchase propensities (defaults shaped by paper Table 9 counts)
    no_outbound_fraction: float = 0.024
    monthly_plan_fraction: float = 0.032
    monthly_tier_weights: tuple[float, ...] = (0.352, 0.565, 0.078, 0.005)
    one_time_package_fraction: float = 0.0005
    #: probability per month that a monthly-plan customer renews
    monthly_renewal_probability: float = 0.85
    #: photos posted per day by monthly-plan customers (tiers apply per photo)
    plan_customer_posts_per_day: float = 0.4
    #: enrollment weight multiplier for users in the service's operating
    #: country — paper Figure 2: "for each AAS, the advertised country is
    #: also where the largest number of Instagram accounts are located"
    home_country_weight: float = 5.0
    #: fraction of reciprocity customers who narrow their targeting to a
    #: hashtag audience (paper Section 3.3.1: "customers can provide ...
    #: a list of hashtags")
    hashtag_preference_fraction: float = 0.3

    def __post_init__(self):
        for name in (
            "initial_long_term_fraction",
            "conversion_rate",
            "renewal_probability",
            "long_engagement_fraction",
            "free_like_request_share",
            "no_outbound_fraction",
            "monthly_plan_fraction",
            "one_time_package_fraction",
            "monthly_renewal_probability",
            "hashtag_preference_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.initial_customers < 0 or self.daily_new_customers < 0:
            raise ValueError("customer volumes must be non-negative")


@dataclass
class _Persona:
    """Per-customer hidden lifecycle state."""

    account_id: AccountId
    will_convert: bool = False
    engagement_ends: int = 0
    free_user: bool = False
    monthly_plan: bool = False
    handled_trial_end: bool = False


class ClienteleDriver:
    """Runs enrollment, payment, and free-tier usage for one service."""

    def __init__(
        self,
        service: AccountAutomationService,
        population: OrganicPopulation,
        rng: np.random.Generator,
        params: ClienteleParams,
    ):
        self.service = service
        self.population = population
        self.rng = rng
        self.params = params
        self._personas: dict[AccountId, _Persona] = {}
        self._pool = self._weighted_pool_order()
        self._pool_cursor = 0
        self.enrollment_failures = 0

    def _weighted_pool_order(self) -> list[AccountId]:
        """Candidate enrollment order, biased toward the home country.

        Word-of-mouth and language localize these services' customer
        bases (Figure 2), modelled as an enrollment-probability weight
        for users in the service's operating country.
        """
        pool = list(self.population.account_ids)
        home = self.service.descriptor.operating_country
        weight = max(self.params.home_country_weight, 1.0)
        weights = np.array(
            [
                weight if self.population.profiles[a].country == home else 1.0
                for a in pool
            ],
            dtype=float,
        )
        weights /= weights.sum()
        order = self.rng.choice(len(pool), size=len(pool), replace=False, p=weights)
        return [pool[int(i)] for i in order]

    # ------------------------------------------------------------------
    # Enrollment
    # ------------------------------------------------------------------

    def _next_candidate(self) -> AccountId | None:
        while self._pool_cursor < len(self._pool):
            candidate = self._pool[self._pool_cursor]
            self._pool_cursor += 1
            if candidate in self.service.customers:
                continue
            if self.service.platform.account_exists(candidate):
                return candidate
        return None

    def _trial_ticks(self) -> int:
        if isinstance(self.service, ReciprocityAbuseService):
            return self.service.config.pricing.trial_ticks
        return days(1)  # collusion free tier: enrollment grants usage

    def _pick_actions(self) -> frozenset:
        menu = self.params.requested_actions_menu
        offered = self.service.descriptor.offered_actions
        weights = np.array([w for _, w in menu], dtype=float)
        weights /= weights.sum()
        index = int(self.rng.choice(len(menu), p=weights))
        bundle = frozenset(menu[index][0]) & offered
        if not bundle:
            bundle = frozenset({ActionType.LIKE}) & offered or frozenset({ActionType.FOLLOW})
        return bundle

    def enroll_one(self, backdate_ticks: int = 0) -> AccountId | None:
        """Enroll the next candidate account; returns its id or None."""
        candidate = self._next_candidate()
        if candidate is None:
            return None
        profile = self.population.profiles[candidate]
        account = self.service.platform.get_account(candidate)
        if isinstance(self.service, CollusionNetworkService):
            requested = frozenset({ActionType.LIKE, ActionType.FOLLOW}) & self.service.descriptor.offered_actions
        else:
            requested = self._pick_actions()
        hashtags: tuple[str, ...] = ()
        if (
            isinstance(self.service, ReciprocityAbuseService)
            and self.rng.random() < self.params.hashtag_preference_fraction
        ):
            hashtags = self._pick_hashtags()
        try:
            self.service.register_customer(
                account.username,
                profile.password,
                requested,
                trial_ticks=self._trial_ticks(),
                backdate_ticks=backdate_ticks,
                target_hashtags=hashtags,
            )
        except (PlatformError, ValueError):
            self.enrollment_failures += 1
            return None
        self._personas[candidate] = self._make_persona(candidate)
        return candidate

    def _pick_hashtags(self) -> tuple[str, ...]:
        """Customers pick interest tags they see organic users posting."""
        platform = self.service.platform
        for _ in range(8):
            sample = self.population.account_ids[
                int(self.rng.integers(0, len(self.population.account_ids)))
            ]
            media = platform.media.media_of(sample)
            # sorted: set-of-str iteration order varies with PYTHONHASHSEED
            # and would break run-to-run determinism
            tags = tuple(sorted({t for m in media for t in m.hashtags}))
            if tags:
                count = min(len(tags), int(self.rng.integers(1, 3)))
                picks = self.rng.choice(len(tags), size=count, replace=False)
                return tuple(tags[int(i)] for i in picks)
        return ()

    def _make_persona(self, account_id: AccountId) -> _Persona:
        now = self.service.platform.clock.now
        params = self.params
        persona = _Persona(account_id=account_id)
        if isinstance(self.service, CollusionNetworkService):
            persona.free_user = True
            long_engagement = self.rng.random() < params.long_engagement_fraction
            lo, hi = params.engagement_days_long if long_engagement else params.engagement_days_short
            persona.engagement_ends = now + days(int(self.rng.integers(lo, hi + 1)))
            roll = self.rng.random()
            try:
                if roll < params.no_outbound_fraction:
                    # No-outbound buyers still *use* the service (that is
                    # why they pay to keep their account off source duty).
                    self.service.purchase_no_outbound(account_id)
                elif roll < params.no_outbound_fraction + params.monthly_plan_fraction:
                    self._buy_monthly_plan(account_id)
                    persona.monthly_plan = True
                elif roll < (
                    params.no_outbound_fraction
                    + params.monthly_plan_fraction
                    + params.one_time_package_fraction
                ):
                    self._buy_one_time(account_id)
            except ServiceSuspendedError:
                pass  # "out of stock": would-be buyers ride the free tier
        else:
            persona.will_convert = self.rng.random() < params.conversion_rate
        return persona

    def _buy_monthly_plan(self, account_id: AccountId) -> None:
        assert isinstance(self.service, CollusionNetworkService)
        tiers = self.service.config.catalog.monthly_tiers
        weights = np.array(self.params.monthly_tier_weights[: len(tiers)], dtype=float)
        weights /= weights.sum()
        tier = tiers[int(self.rng.choice(len(tiers), p=weights))]
        self.service.purchase_monthly_plan(account_id, tier)

    def _buy_one_time(self, account_id: AccountId) -> None:
        assert isinstance(self.service, CollusionNetworkService)
        packages = self.service.config.catalog.one_time_packages
        package = packages[int(self.rng.integers(0, len(packages)))]
        media = self.service.platform.media.media_of(account_id)
        if not media:
            return
        choice = media[int(self.rng.integers(0, len(media)))]
        self.service.purchase_one_time_likes(account_id, package, choice.media_id)

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------

    def seed_initial(self) -> int:
        """Create the pre-existing customer stock at scenario start."""
        created = 0
        params = self.params
        for _ in range(params.initial_customers):
            long_term = self.rng.random() < params.initial_long_term_fraction
            backdate = days(int(self.rng.integers(30, 180))) if long_term else days(int(self.rng.integers(0, 3)))
            account_id = self.enroll_one(backdate_ticks=backdate)
            if account_id is None:
                continue
            created += 1
            if long_term:
                self._seed_long_term(account_id, backdate)
        return created

    def _seed_long_term(self, account_id: AccountId, backdate: int) -> None:
        """Give a seeded customer a paid history reaching into the past."""
        now = self.service.platform.clock.now
        record = self.service.customers[account_id]
        persona = self._personas[account_id]
        if isinstance(self.service, ReciprocityAbuseService):
            pricing = self.service.config.pricing
            persona.will_convert = True
            persona.handled_trial_end = True
            record.paid_until = now + int(self.rng.integers(1, pricing.period_ticks + 1))
            # Backdated payment history directly into the ledger.
            pay_tick = record.enrolled_at + pricing.trial_ticks
            while pay_tick < now:
                self.service.ledger.record(
                    Payment(
                        customer=account_id,
                        amount_cents=pricing.cost_cents,
                        tick=pay_tick,
                        item=f"{pricing.min_paid_days}d-subscription",
                    )
                )
                pay_tick += pricing.period_ticks
        else:
            # Long-term collusion users: extend engagement well past now.
            persona.engagement_ends = now + days(int(self.rng.integers(5, 60)))

    # ------------------------------------------------------------------
    # Per-tick behaviour
    # ------------------------------------------------------------------

    def _run_births(self) -> None:
        births = int(self.rng.poisson(self.params.daily_new_customers / HOURS_PER_DAY))
        for _ in range(births):
            self.enroll_one()

    def _run_reciprocity_payments(self) -> None:
        assert isinstance(self.service, ReciprocityAbuseService)
        now = self.service.platform.clock.now
        for account_id, persona in self._personas.items():
            record = self.service.customers.get(account_id)
            if record is None or record.cancelled or record.lost_credentials:
                continue
            if not persona.handled_trial_end and now >= record.trial_expires:
                persona.handled_trial_end = True
                if persona.will_convert:
                    self.service.purchase_period(account_id)
                continue
            if persona.handled_trial_end and persona.will_convert:
                if record.paid_until != 0 and now >= record.paid_until:
                    if self.rng.random() < self.params.renewal_probability:
                        self.service.purchase_period(account_id)
                    else:
                        persona.will_convert = False  # churned

    def _run_collusion_usage(self) -> None:
        assert isinstance(self.service, CollusionNetworkService)
        service = self.service
        now = service.platform.clock.now
        hourly_rate = self.params.free_request_rate_per_day / HOURS_PER_DAY
        for account_id, persona in self._personas.items():
            record = service.customers.get(account_id)
            if record is None or record.cancelled or record.lost_credentials:
                continue
            if persona.monthly_plan:
                self._run_plan_customer(account_id, persona)
                continue
            if not persona.free_user or now >= persona.engagement_ends:
                continue
            # Engaged free users keep their service window open by using it.
            record.trial_expires = max(record.trial_expires, now + days(1))
            if self.rng.random() < hourly_rate:
                share = self.params.free_like_request_share
                action = ActionType.LIKE if self.rng.random() < share else ActionType.FOLLOW
                if action not in service.descriptor.offered_actions:
                    action = ActionType.LIKE
                service.request_free_service(account_id, action)

    def _run_plan_customer(self, account_id: AccountId, persona: _Persona) -> None:
        """Monthly-plan customers post photos and renew their plans."""
        service = self.service
        assert isinstance(service, CollusionNetworkService)
        now = service.platform.clock.now
        if account_id not in service.monthly_plans:
            if self.rng.random() < self.params.monthly_renewal_probability:
                try:
                    self._buy_monthly_plan(account_id)
                except ServiceSuspendedError:
                    persona.monthly_plan = False
                    return
            else:
                persona.monthly_plan = False
                return
        if self.rng.random() < self.params.plan_customer_posts_per_day / HOURS_PER_DAY:
            self._post_photo(account_id)

    def _post_photo(self, account_id: AccountId) -> None:
        platform = self.service.platform
        profile = self.population.profiles.get(account_id)
        if profile is None:
            return
        try:
            account = platform.get_account(account_id)
            session = platform.login(account.username, profile.password, profile.endpoint)
            platform.post(session, profile.endpoint, caption="new photo", api=ApiSurface.PRIVATE_MOBILE)
        except PlatformError:
            pass

    def tick(self) -> None:
        """One simulated hour of customer-base dynamics."""
        self._run_births()
        if isinstance(self.service, ReciprocityAbuseService):
            self._run_reciprocity_payments()
        elif isinstance(self.service, CollusionNetworkService):
            self._run_collusion_usage()

    def next_wake_tick(self, now: int) -> int:
        """Always due: the birth process draws from the RNG every tick,
        so skipping a tick would shift the seeded draw sequence."""
        return now + 1

    # ------------------------------------------------------------------

    @property
    def personas(self) -> dict[AccountId, _Persona]:
        return self._personas
