"""Post-block infrastructure migration (paper Section 6.4 epilogue).

"Since the services immediately detected blocked actions, all AASs
eventually moved their like traffic to different ASNs — one of them
going so far as to use an extensive proxy network to drastically
increase IP diversity."

:class:`MigrationPolicy` watches a service's throttle states; when an
action type has been pinned at its floor for long enough, the service
stands up new exit infrastructure: fresh hosting ASes in new countries,
or a rotating proxy pool when ``use_proxy_network`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aas.base import AccountAutomationService
from repro.netsim.fabric import NetworkFabric
from repro.netsim.proxies import ProxyPool
from repro.platform.models import ActionType
from repro.util.timeutils import days


@dataclass
class MigrationPolicy:
    """Decides when and how a service relocates its exit traffic."""

    fabric: NetworkFabric
    rng: np.random.Generator
    #: blocking must persist this long at the budget floor before migrating
    patience_ticks: int = days(14)
    #: candidate countries for new hosting ASes
    fallback_countries: tuple[str, ...] = ("NLD", "DEU", "SGP", "CAN")
    #: adopt a many-AS residential proxy pool instead of new hosting ASes
    use_proxy_network: bool = False
    proxy_as_count: int = 40
    proxy_exits_per_as: int = 5
    #: bookkeeping
    migrations: list[tuple[int, str]] = field(default_factory=list)
    _suppressed_since: dict[ActionType, int] = field(default_factory=dict)

    def note_state(self, action_type: ActionType, suppressed_at_floor: bool, tick: int) -> None:
        """Track how long an action type has been stuck at its floor."""
        if suppressed_at_floor:
            self._suppressed_since.setdefault(action_type, tick)
        else:
            self._suppressed_since.pop(action_type, None)

    def should_migrate(self, tick: int) -> bool:
        return any(tick - since >= self.patience_ticks for since in self._suppressed_since.values())

    def migrate(self, service: AccountAutomationService, tick: int) -> str:
        """Stand up new exits and point the service at them.

        Returns a label describing the migration (for reports/tests).
        """
        if self.use_proxy_network:
            pool = ProxyPool.build(
                registry=self.fabric.registry,
                rng=self.rng,
                as_count=self.proxy_as_count,
                exits_per_as=self.proxy_exits_per_as,
                country_pool=list(self.fallback_countries),
                fingerprint=service.fingerprint,
                name_prefix=f"{service.name.lower()}-proxy-{len(self.migrations)}",
            )
            endpoints = [pool.next_endpoint() for _ in range(len(pool))]
            label = f"proxy-network({len(pool)} exits, {len(pool.distinct_asns())} ASNs)"
        else:
            country = self.fallback_countries[len(self.migrations) % len(self.fallback_countries)]
            endpoints = [
                self.fabric.hosting_endpoint(
                    country,
                    service.fingerprint,
                    name=f"{service.name.lower()}-migrated-{len(self.migrations)}",
                )
                for _ in range(service.descriptor.endpoints_per_asn)
            ]
            label = f"new-hosting({country})"
        service.replace_endpoints(endpoints)
        self.migrations.append((tick, label))
        self._suppressed_since.clear()
        return label
