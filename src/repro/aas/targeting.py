"""Reciprocity-abuse target selection (paper Section 5.3).

"These results indicate that the Reciprocity AASs do have a selection
bias in the accounts that they target, selecting for accounts with
higher out-degree and much lower in-degree to increase the likelihood of
a reciprocated action."

The targeting engine scores candidate accounts from *publicly visible*
graph data (following/follower counts), then samples targets for each
customer proportionally to score, avoiding repeats per customer. A
:class:`CuratedPool` mixes in a service-maintained recipient list —
modelling curated lists such as the one behind Instalex's anomalously
high follow-response-to-likes rate (Section 4.3), which the service
presumably built from historical response data invisible to outside
measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId
from repro.util.stats import median


@dataclass
class CuratedPool:
    """A service-curated recipient list with a mixing fraction."""

    accounts: list[AccountId]
    mix_fraction: float = 0.5

    def __post_init__(self):
        if not self.accounts:
            raise ValueError("curated pool must be non-empty")
        if not 0.0 <= self.mix_fraction <= 1.0:
            raise ValueError("mix_fraction must be a probability")


class ReciprocityTargeting:
    """Degree-biased target sampling over a candidate universe."""

    def __init__(
        self,
        platform: InstagramPlatform,
        candidates: list[AccountId],
        rng: np.random.Generator,
        out_degree_bias: float = 1.0,
        in_degree_bias: float = 1.0,
        curated: CuratedPool | None = None,
    ):
        if not candidates:
            raise ValueError("candidate universe must be non-empty")
        if out_degree_bias < 0 or in_degree_bias < 0:
            raise ValueError("biases must be non-negative")
        self.platform = platform
        self.candidates = list(candidates)
        self.rng = rng
        self.out_degree_bias = out_degree_bias
        self.in_degree_bias = in_degree_bias
        self.curated = curated
        self._refresh_scores()

    def _refresh_scores(self) -> None:
        """Recompute candidate scores from current public graph state."""
        out_degrees = np.array(
            [self.platform.following_count(a) for a in self.candidates], dtype=float
        )
        in_degrees = np.array(
            [self.platform.follower_count(a) for a in self.candidates], dtype=float
        )
        med_out = max(median(out_degrees.tolist()), 1.0)
        med_in = max(median(in_degrees.tolist()), 1.0)
        scores = ((out_degrees + 1.0) / (med_out + 1.0)) ** self.out_degree_bias * (
            (med_in + 1.0) / (in_degrees + 1.0)
        ) ** self.in_degree_bias
        total = scores.sum()
        if total <= 0:
            raise ValueError("degenerate candidate scores")
        self._cumulative = np.cumsum(scores / total)

    def refresh(self) -> None:
        """Public hook: services re-score periodically as the graph drifts."""
        self._refresh_scores()

    def _sample_scored(self) -> AccountId:
        draw = self.rng.random()
        index = int(np.searchsorted(self._cumulative, draw))
        index = min(index, len(self.candidates) - 1)
        return self.candidates[index]

    def _sample_curated(self) -> AccountId:
        assert self.curated is not None
        pool = self.curated.accounts
        return pool[int(self.rng.integers(0, len(pool)))]

    def select(
        self,
        n: int,
        exclude: set[AccountId],
        use_curated: bool = True,
        restrict_to: set[AccountId] | None = None,
    ) -> list[AccountId]:
        """Pick up to ``n`` fresh targets not in ``exclude``.

        May return fewer than ``n`` when the universe is nearly
        exhausted for this customer (bounded retries, no spinning).
        ``use_curated=False`` bypasses the curated recipient list — it is
        a *like*-recipient list, so follow targeting ignores it.
        ``restrict_to`` narrows targets to a customer-specified audience
        (hashtag targeting, paper Section 3.3.1).
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        picked: list[AccountId] = []
        seen = set(exclude)
        attempts = 0
        max_attempts = 12 * max(n, 1)
        while len(picked) < n and attempts < max_attempts:
            attempts += 1
            from_curated = (
                use_curated
                and self.curated is not None
                and self.rng.random() < self.curated.mix_fraction
            )
            candidate = self._sample_curated() if from_curated else self._sample_scored()
            if candidate in seen:
                continue
            if restrict_to is not None and candidate not in restrict_to:
                continue
            if not self.platform.account_exists(candidate):
                continue
            seen.add(candidate)
            picked.append(candidate)
        return picked
