"""The reciprocity-abuse engine (paper Sections 3.1, 5.3, 6.3).

Drives outbound actions *from* customer accounts at targeted organic
users, harvesting reciprocal inbound actions. Implements:

* per-customer daily budgets per action type, spread over the day,
* degree-biased target selection (:mod:`repro.aas.targeting`),
* optional auto-unfollow of service-issued follows (all three
  reciprocity AASs offer unfollow, Table 1),
* block detection with threshold back-off and probing (Section 6.3),
* optional ASN/proxy migration once blocking persists (Section 6.4).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.aas.base import (
    AccountAutomationService,
    CustomerRecord,
    IssueOutcome,
    ServiceDescriptor,
)
from repro.aas.blockdetect import BlockDetector, BlockDetectorConfig, ThrottleState
from repro.aas.adaptation import MigrationPolicy
from repro.aas.pricing import SubscriptionPricing
from repro.aas.targeting import ReciprocityTargeting
from repro.netsim.fabric import NetworkFabric
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionType, ApiSurface
from repro.util.timeutils import HOURS_PER_DAY, days

#: Comment strings cycled by services that offer comments.
DEFAULT_COMMENT_TEXTS = (
    "Nice shot!",
    "Love this",
    "Amazing feed",
    "Great content, check mine",
    "So cool!",
)


@dataclass
class ReciprocityServiceConfig:
    """Engine knobs for one reciprocity-abuse service."""

    pricing: SubscriptionPricing
    #: base per-account outbound actions per day, per action type
    daily_budgets: dict[ActionType, float] = field(
        default_factory=lambda: {ActionType.LIKE: 90.0, ActionType.FOLLOW: 60.0}
    )
    #: issued follows are withdrawn this many days later for customers who
    #: requested the unfollow service
    unfollow_after_days: int = 2
    #: a like target becomes eligible again after this many days (the
    #: service rotates back through accounts, liking different media);
    #: follow targets are never reused
    like_retarget_cooldown_days: int = 5
    comment_texts: tuple[str, ...] = DEFAULT_COMMENT_TEXTS
    detector: BlockDetectorConfig = field(default_factory=BlockDetectorConfig)
    detector_enabled: bool = True

    def __post_init__(self):
        for action_type, budget in self.daily_budgets.items():
            if budget <= 0:
                raise ValueError(f"daily budget for {action_type} must be positive")
        if self.unfollow_after_days < 1:
            raise ValueError("unfollow_after_days must be at least one day")


class ReciprocityAbuseService(AccountAutomationService):
    """Instalex / Instazood / Boostgram engine."""

    def __init__(
        self,
        descriptor: ServiceDescriptor,
        platform: InstagramPlatform,
        fabric: NetworkFabric,
        rng: np.random.Generator,
        config: ReciprocityServiceConfig,
        targeting: ReciprocityTargeting,
        migration: MigrationPolicy | None = None,
    ):
        super().__init__(descriptor, platform, fabric, rng)
        self.config = config
        self.targeting = targeting
        self.migration = migration
        self.detector = BlockDetector(config.detector, enabled=config.detector_enabled)
        #: adaptive budgets are tracked per (customer, action type): blocking
        #: is observed per account, so only affected accounts back off —
        #: which is why the paper's control bin stays flat in Figure 5
        self._throttles: dict[tuple[AccountId, ActionType], ThrottleState] = {}
        self._last_block: dict[tuple[AccountId, ActionType], int] = {}
        #: (due_tick, customer_id, target) queue for auto-unfollow
        self._unfollow_queue: deque[tuple[int, AccountId, AccountId]] = deque()
        #: per-customer recently-liked targets with their last-like tick
        self._recent_like_targets: dict[AccountId, dict[AccountId, int]] = {}
        #: cached hashtag audiences: tag tuple -> (tick computed, accounts)
        self._audience_cache: dict[tuple[str, ...], tuple[int, set[AccountId]]] = {}
        self._last_adjust_tick = -1

    # ------------------------------------------------------------------
    # Payments
    # ------------------------------------------------------------------

    def purchase_period(self, account_id: AccountId) -> None:
        """Customer buys one minimum paid period (Table 2)."""
        record = self.customers[account_id]
        pricing = self.config.pricing
        now = self.platform.clock.now
        base = max(now, record.paid_until, record.trial_expires)
        record.paid_until = base + pricing.period_ticks
        self.record_payment(account_id, pricing.cost_cents, item=f"{pricing.min_paid_days}d-subscription")

    # ------------------------------------------------------------------
    # Automation
    # ------------------------------------------------------------------

    def throttle_for(self, account_id: AccountId, action_type: ActionType) -> ThrottleState | None:
        """The adaptive budget for one (customer, action type) pair."""
        budget = self.config.daily_budgets.get(action_type)
        if budget is None:
            return None
        key = (account_id, action_type)
        state = self._throttles.get(key)
        if state is None:
            state = ThrottleState(base_level=budget)
            self._throttles[key] = state
        return state

    def _hourly_count(self, record: CustomerRecord, action_type: ActionType) -> int:
        throttle = self.throttle_for(record.account_id, action_type)
        if throttle is None:
            return 0
        return int(self.rng.poisson(throttle.level / HOURS_PER_DAY))

    def _note_outcome(self, record: CustomerRecord, action_type: ActionType, outcome: IssueOutcome) -> None:
        """Feed the detector and, once detection is live, per-account backoff."""
        now = self.platform.clock.now
        blocked = outcome is IssueOutcome.BLOCKED
        self.detector.observe(action_type, blocked, now)
        if not blocked or not self.detector.operational(action_type, now):
            return
        throttle = self.throttle_for(record.account_id, action_type)
        if throttle is not None:
            throttle.on_blocking(now)
            self._last_block[(record.account_id, action_type)] = now

    def _like_exclusions(self, record: CustomerRecord) -> set[AccountId]:
        """Targets liked within the cooldown window (pruned in place)."""
        recent = self._recent_like_targets.get(record.account_id)
        if not recent:
            return set()
        now = self.platform.clock.now
        cooldown = days(self.config.like_retarget_cooldown_days)
        for target, tick in list(recent.items()):
            if now - tick >= cooldown:
                del recent[target]
        return set(recent)

    def _audience_for(self, record: CustomerRecord) -> set[AccountId] | None:
        """The customer's hashtag audience, refreshed every few hours."""
        if not record.target_hashtags:
            return None
        now = self.platform.clock.now
        cached = self._audience_cache.get(record.target_hashtags)
        if cached is not None and now - cached[0] < 6:
            return cached[1]
        audience: set[AccountId] = set()
        for tag in record.target_hashtags:
            audience |= self.platform.media.accounts_posting(tag)
        self._audience_cache[record.target_hashtags] = (now, audience)
        return audience

    def _do_like(self, record: CustomerRecord) -> None:
        exclude = self._like_exclusions(record) | {record.account_id}
        targets = self.targeting.select(
            1, exclude=exclude, restrict_to=self._audience_for(record)
        )
        if not targets:
            return
        target = targets[0]
        media = self.platform.media.media_of(target)
        candidates = [m for m in media if not self.platform.media.has_liked(m.media_id, record.account_id)]
        if not candidates:
            return
        choice = candidates[int(self.rng.integers(0, len(candidates)))]
        outcome = self._issue(
            record,
            lambda session, endpoint: self.platform.like(
                session, choice.media_id, endpoint, ApiSurface.PRIVATE_MOBILE
            ),
        )
        self._recent_like_targets.setdefault(record.account_id, {})[target] = self.platform.clock.now
        self._note_outcome(record, ActionType.LIKE, outcome)

    def _do_follow(self, record: CustomerRecord) -> None:
        targets = self.targeting.select(
            1,
            exclude=record.targeted | {record.account_id},
            use_curated=False,
            restrict_to=self._audience_for(record),
        )
        if not targets:
            return
        target = targets[0]
        if self.platform.graph.is_following(record.account_id, target):
            record.targeted.add(target)
            return
        outcome = self._issue(
            record,
            lambda session, endpoint: self.platform.follow(
                session, target, endpoint, ApiSurface.PRIVATE_MOBILE
            ),
        )
        record.targeted.add(target)
        self._note_outcome(record, ActionType.FOLLOW, outcome)
        if outcome is IssueOutcome.DELIVERED:
            record.issued_follows.append(target)
            if ActionType.UNFOLLOW in record.requested_actions:
                due = self.platform.clock.now + days(self.config.unfollow_after_days)
                self._unfollow_queue.append((due, record.account_id, target))

    def _do_comment(self, record: CustomerRecord) -> None:
        targets = self.targeting.select(1, exclude={record.account_id}, use_curated=False)
        if not targets:
            return
        media = self.platform.media.media_of(targets[0])
        if not media:
            return
        choice = media[int(self.rng.integers(0, len(media)))]
        text = self.config.comment_texts[int(self.rng.integers(0, len(self.config.comment_texts)))]
        outcome = self._issue(
            record,
            lambda session, endpoint: self.platform.comment(
                session, choice.media_id, text, endpoint, ApiSurface.PRIVATE_MOBILE
            ),
        )
        self._note_outcome(record, ActionType.COMMENT, outcome)

    def _do_post(self, record: CustomerRecord) -> None:
        outcome = self._issue(
            record,
            lambda session, endpoint: self.platform.post(
                session, endpoint, caption="scheduled post", api=ApiSurface.PRIVATE_MOBILE
            ),
        )
        self._note_outcome(record, ActionType.POST, outcome)

    def _process_unfollows(self) -> None:
        now = self.platform.clock.now
        while self._unfollow_queue and self._unfollow_queue[0][0] <= now:
            _, customer_id, target = self._unfollow_queue.popleft()
            record = self.customers.get(customer_id)
            if record is None or not record.service_active(now):
                continue
            if not self.platform.account_exists(target):
                continue
            if not self.platform.graph.is_following(customer_id, target):
                continue  # delayed removal (or the user) beat us to it
            outcome = self._issue(
                record,
                lambda session, endpoint: self.platform.unfollow(
                    session, target, endpoint, ApiSurface.PRIVATE_MOBILE
                ),
            )
            self._note_outcome(record, ActionType.UNFOLLOW, outcome)
            if outcome is IssueOutcome.DELIVERED:
                # the slot frees up: the service can target this account
                # again later (sustains budgets against a finite universe)
                record.targeted.discard(target)

    def _adjust_throttles(self) -> None:
        """Daily adaptation pass: probe suppressed accounts back up, and
        consider migrating infrastructure when blocking is pervasive."""
        now = self.platform.clock.now
        if self.platform.clock.day == self._last_adjust_tick:
            return
        self._last_adjust_tick = self.platform.clock.day
        suppressed_accounts: dict[ActionType, int] = {}
        active_accounts = max(len(self.active_customers(now)), 1)
        for (account_id, action_type), throttle in self._throttles.items():
            last_block = self._last_block.get((account_id, action_type), -(10**9))
            if throttle.suppressed and now - last_block >= throttle.probe_interval_ticks:
                throttle.on_quiet(now)
            if throttle.suppressed:
                suppressed_accounts[action_type] = suppressed_accounts.get(action_type, 0) + 1
        if self.migration is not None:
            for action_type in self.config.daily_budgets:
                pervasive = suppressed_accounts.get(action_type, 0) > 0.5 * active_accounts
                self.migration.note_state(action_type, pervasive, now)
            if self.migration.should_migrate(now):
                self.migration.migrate(self, now)

    def _on_endpoints_replaced(self) -> None:
        """Migration optimism: budgets restart at base on the new exits."""
        self._throttles.clear()
        self._last_block.clear()

    def tick(self) -> None:
        """One simulated hour of automation across all active customers."""
        now = self.platform.clock.now
        dispatch = {
            ActionType.LIKE: self._do_like,
            ActionType.FOLLOW: self._do_follow,
            ActionType.COMMENT: self._do_comment,
            ActionType.POST: self._do_post,
        }
        for record in self.active_customers(now):
            for action_type, handler in dispatch.items():
                if action_type not in record.requested_actions:
                    continue
                for _ in range(self._hourly_count(record, action_type)):
                    handler(record)
        self._process_unfollows()
        self._adjust_throttles()
