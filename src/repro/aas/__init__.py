"""Account Automation Services (AASs).

Implementations of the five services the paper studied, built from two
engines matching the paper's taxonomy (Section 3):

* **Reciprocity abuse** (:class:`ReciprocityAbuseService`): drives
  outbound likes/follows from customer accounts at curated targets,
  harvesting organic reciprocation — Instalex, Instazood, Boostgram.
* **Collusion network** (:class:`CollusionNetworkService`): orchestrates
  inbound actions between customer accounts — Hublaagram,
  Followersgratis.

Shared infrastructure: customer registry with plaintext credential
intake (Section 3.3.1), trial/paid plan handling (Tables 2-4), a payment
ledger, pop-under ad monetization (Hublaagram), block-detection and
threshold-probing adaptation (Section 6.3), and post-block ASN/proxy
migration (Section 6.4 epilogue).
"""

from repro.aas.pricing import (
    HublaagramCatalog,
    LikePackage,
    MonthlyLikeTier,
    SubscriptionPricing,
)
from repro.aas.ledger import Payment, PaymentLedger
from repro.aas.base import (
    AccountAutomationService,
    CustomerRecord,
    ServiceDescriptor,
    ServiceType,
)
from repro.aas.targeting import CuratedPool, ReciprocityTargeting
from repro.aas.blockdetect import BlockDetector
from repro.aas.adaptation import MigrationPolicy
from repro.aas.reciprocity_service import ReciprocityAbuseService, ReciprocityServiceConfig
from repro.aas.collusion_service import CollusionNetworkService, CollusionServiceConfig
from repro.aas.ads import PopUnderAdNetwork
from repro.aas.clientele import ClienteleDriver, ClienteleParams
from repro.aas.franchise import FRANCHISE_TIERS, FranchiseProgram, FranchiseTier
from repro.aas.services import (
    make_boostgram,
    make_followersgratis,
    make_hublaagram,
    make_instalex,
    make_instazood,
)

__all__ = [
    "SubscriptionPricing",
    "HublaagramCatalog",
    "LikePackage",
    "MonthlyLikeTier",
    "Payment",
    "PaymentLedger",
    "AccountAutomationService",
    "CustomerRecord",
    "ServiceDescriptor",
    "ServiceType",
    "CuratedPool",
    "ReciprocityTargeting",
    "BlockDetector",
    "MigrationPolicy",
    "ReciprocityAbuseService",
    "ReciprocityServiceConfig",
    "CollusionNetworkService",
    "CollusionServiceConfig",
    "PopUnderAdNetwork",
    "ClienteleDriver",
    "ClienteleParams",
    "FranchiseProgram",
    "FranchiseTier",
    "FRANCHISE_TIERS",
    "make_instalex",
    "make_instazood",
    "make_boostgram",
    "make_hublaagram",
    "make_followersgratis",
]
