"""Followersgratis: the small collusion-network AAS.

Paper facts encoded here:

* Table 1 — offers like and follow only.
* Table 4 — paid follow/like bundles (the engine exposes them as paid
  orders; see ``purchase_option``).
* Table 7 / Section 5 — operates from Indonesia with a *tiny* exit-IP
  pool, which is why "the service was already well-policed by
  pre-existing abuse detection systems that prevent high volumes of
  abuse originating from a small number of IP addresses" and why the
  paper excludes it from the business analyses.
"""

from __future__ import annotations

import numpy as np

from repro.aas.base import ServiceDescriptor, ServiceType
from repro.aas.collusion_service import (
    CollusionNetworkService,
    CollusionServiceConfig,
    Order,
)
from repro.aas.pricing import FollowersgratisCatalog, FollowersgratisOption, HublaagramCatalog
from repro.netsim.fabric import NetworkFabric
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionType

FOLLOWERSGRATIS_DESCRIPTOR = ServiceDescriptor(
    name="Followersgratis",
    service_type=ServiceType.COLLUSION_NETWORK,
    offered_actions=frozenset({ActionType.LIKE, ActionType.FOLLOW}),
    operating_country="IDN",
    asn_countries=("IDN",),
    endpoints_per_asn=2,  # the small IP pool that got it pre-policed
)


class FollowersgratisService(CollusionNetworkService):
    """Collusion engine plus the Table 4 purchase options."""

    def __init__(self, *args, catalog: FollowersgratisCatalog, quantity_scale: float, **kwargs):
        super().__init__(*args, **kwargs)
        self.fg_catalog = catalog
        self._quantity_scale = quantity_scale

    def purchase_option(self, account_id: AccountId, option: FollowersgratisOption) -> list[Order]:
        """Buy one Table 4 bundle; returns the fulfilment orders."""
        if option not in self.fg_catalog.options:
            raise ValueError("unknown Followersgratis option")
        self._require_customer(account_id)
        self.record_payment(account_id, option.cost_cents, item=option.description)
        orders: list[Order] = []
        scale = self._quantity_scale
        if option.follows > 0:
            orders.append(self._enqueue_paid(account_id, ActionType.FOLLOW, max(1, int(option.follows * scale))))
        if option.bonus_likes > 0:
            orders.append(self._enqueue_paid(account_id, ActionType.LIKE, max(1, int(option.bonus_likes * scale))))
        return orders

    def _enqueue_paid(self, account_id: AccountId, action_type: ActionType, quantity: int) -> Order:
        order = Order(
            order_id=next(self._order_ids),
            customer=account_id,
            action_type=action_type,
            quantity=quantity,
            per_hour=self.config.paid_delivery_per_hour,
            created_at=self.platform.clock.now,
            is_paid=True,
        )
        self._orders.append(order)
        return order


def make_followersgratis(
    platform: InstagramPlatform,
    fabric: NetworkFabric,
    rng: np.random.Generator,
    quantity_scale: float = 0.1,
) -> FollowersgratisService:
    """Build a Followersgratis instance (free follows only, paid bundles)."""
    config = CollusionServiceConfig(
        catalog=HublaagramCatalog().scaled(quantity_scale),  # engine needs a catalog; FG's own is fg_catalog
        likes_per_free_request=max(1, int(20 * quantity_scale)),
        follows_per_free_request=max(1, int(25 * quantity_scale)),
        comments_per_free_request=1,
        free_requests_per_hour=1,
        free_delivery_per_hour=max(2, int(40 * quantity_scale)),
        paid_delivery_per_hour=max(4, int(200 * quantity_scale)),
        offers_ads=False,
        free_action_types=frozenset({ActionType.FOLLOW}),
    )
    return FollowersgratisService(
        FOLLOWERSGRATIS_DESCRIPTOR,
        platform,
        fabric,
        rng,
        config,
        catalog=FollowersgratisCatalog(),
        quantity_scale=quantity_scale,
    )
