"""Instazood: reciprocity-abuse AAS, second franchise of the Insta* parent.

Paper facts encoded here:

* Table 1 — the only service offering all five action types.
* Table 2 — advertises a 3-day trial but actually delivers 7 days
  (Section 4.2); minimum paid period 1 day at $0.34.
* Table 7 — operates from Russia, automation traffic exits US ASNs.
* Shares the Insta* parent's engineering (same block-detection and
  targeting posture as Instalex), but runs its own customer base.
"""

from __future__ import annotations

import numpy as np

from repro.aas.adaptation import MigrationPolicy
from repro.aas.base import ServiceDescriptor, ServiceType
from repro.aas.pricing import INSTAZOOD_PRICING
from repro.aas.reciprocity_service import ReciprocityAbuseService, ReciprocityServiceConfig
from repro.aas.targeting import CuratedPool, ReciprocityTargeting
from repro.netsim.fabric import NetworkFabric
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionType

INSTAZOOD_DESCRIPTOR = ServiceDescriptor(
    name="Instazood",
    service_type=ServiceType.RECIPROCITY_ABUSE,
    offered_actions=frozenset(
        {
            ActionType.LIKE,
            ActionType.FOLLOW,
            ActionType.COMMENT,
            ActionType.POST,
            ActionType.UNFOLLOW,
        }
    ),
    operating_country="RUS",
    asn_countries=("USA",),
    stack_variant="aas-insta-parent",
)


def make_instazood(
    platform: InstagramPlatform,
    fabric: NetworkFabric,
    rng: np.random.Generator,
    candidates: list[AccountId],
    curated: CuratedPool | None = None,
    migration: MigrationPolicy | None = None,
    budget_scale: float = 1.0,
) -> ReciprocityAbuseService:
    """Build an Instazood instance targeting ``candidates``."""
    config = ReciprocityServiceConfig(
        pricing=INSTAZOOD_PRICING,
        daily_budgets={
            ActionType.LIKE: 48.0 * budget_scale,
            ActionType.FOLLOW: 60.0 * budget_scale,
            ActionType.COMMENT: 12.0 * budget_scale,
            ActionType.POST: 0.3 * budget_scale,
        },
        unfollow_after_days=2,
    )
    targeting = ReciprocityTargeting(
        platform,
        candidates,
        rng,
        out_degree_bias=1.2,
        in_degree_bias=1.6,
        curated=curated,
    )
    return ReciprocityAbuseService(
        INSTAZOOD_DESCRIPTOR, platform, fabric, rng, config, targeting, migration=migration
    )
