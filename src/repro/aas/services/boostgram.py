"""Boostgram: the premium reciprocity-abuse AAS.

Paper facts encoded here:

* Table 1 — offers like, follow, post, unfollow (no comments).
* Table 2 — 3-day trial; minimum paid period 30 days at $99 (the most
  expensive service, and accordingly the lowest conversion rate).
* Table 7 — operates from the United States out of US ASNs.
* Table 11 — like-heavy mix (64% likes vs 19% follows).
"""

from __future__ import annotations

import numpy as np

from repro.aas.adaptation import MigrationPolicy
from repro.aas.base import ServiceDescriptor, ServiceType
from repro.aas.pricing import BOOSTGRAM_PRICING
from repro.aas.reciprocity_service import ReciprocityAbuseService, ReciprocityServiceConfig
from repro.aas.targeting import ReciprocityTargeting
from repro.netsim.fabric import NetworkFabric
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionType

BOOSTGRAM_DESCRIPTOR = ServiceDescriptor(
    name="Boostgram",
    service_type=ServiceType.RECIPROCITY_ABUSE,
    offered_actions=frozenset(
        {ActionType.LIKE, ActionType.FOLLOW, ActionType.POST, ActionType.UNFOLLOW}
    ),
    operating_country="USA",
    asn_countries=("USA",),
)


def make_boostgram(
    platform: InstagramPlatform,
    fabric: NetworkFabric,
    rng: np.random.Generator,
    candidates: list[AccountId],
    migration: MigrationPolicy | None = None,
    budget_scale: float = 1.0,
) -> ReciprocityAbuseService:
    """Build a Boostgram instance targeting ``candidates``."""
    config = ReciprocityServiceConfig(
        pricing=BOOSTGRAM_PRICING,
        daily_budgets={
            ActionType.LIKE: 100.0 * budget_scale,
            ActionType.FOLLOW: 30.0 * budget_scale,
            ActionType.POST: 0.2 * budget_scale,
        },
        unfollow_after_days=2,
    )
    targeting = ReciprocityTargeting(
        platform,
        candidates,
        rng,
        out_degree_bias=1.4,
        in_degree_bias=1.4,
    )
    return ReciprocityAbuseService(
        BOOSTGRAM_DESCRIPTOR, platform, fabric, rng, config, targeting, migration=migration
    )
