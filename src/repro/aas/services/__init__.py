"""The five studied services (paper Section 3.3).

Factories configure the two engines with each service's published
capabilities (Table 1), pricing (Tables 2-4), operating/ASN geography
(Table 7), and behavioural parameters calibrated to the measured action
mixes (Table 11).
"""

from repro.aas.services.instalex import make_instalex
from repro.aas.services.instazood import make_instazood
from repro.aas.services.boostgram import make_boostgram
from repro.aas.services.hublaagram import make_hublaagram
from repro.aas.services.followersgratis import make_followersgratis

__all__ = [
    "make_instalex",
    "make_instazood",
    "make_boostgram",
    "make_hublaagram",
    "make_followersgratis",
]
