"""Instalex: reciprocity-abuse AAS, franchise of the Insta* parent.

Paper facts encoded here:

* Table 1 — offers like, follow, comment, unfollow.
* Table 2 — 7-day trial, minimum paid period 7 days at $3.15.
* Table 7 — operates from Russia, automation traffic exits US ASNs.
* Table 5 — anomalously high follow-response-to-likes rate (1.4-1.8%),
  modelled via a curated recipient pool biased toward users with the
  hidden follow-on-like trait (see aas.targeting / behavior.profiles).
* Table 11 — Insta* action mix is follow-heavy with heavy auto-unfollow.
"""

from __future__ import annotations

import numpy as np

from repro.aas.adaptation import MigrationPolicy
from repro.aas.base import ServiceDescriptor, ServiceType
from repro.aas.pricing import INSTALEX_PRICING
from repro.aas.reciprocity_service import ReciprocityAbuseService, ReciprocityServiceConfig
from repro.aas.targeting import CuratedPool, ReciprocityTargeting
from repro.netsim.fabric import NetworkFabric
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionType

INSTALEX_DESCRIPTOR = ServiceDescriptor(
    name="Instalex",
    service_type=ServiceType.RECIPROCITY_ABUSE,
    offered_actions=frozenset(
        {ActionType.LIKE, ActionType.FOLLOW, ActionType.COMMENT, ActionType.UNFOLLOW}
    ),
    operating_country="RUS",
    asn_countries=("USA",),
    stack_variant="aas-insta-parent",
)


def make_instalex(
    platform: InstagramPlatform,
    fabric: NetworkFabric,
    rng: np.random.Generator,
    candidates: list[AccountId],
    curated: CuratedPool | None = None,
    migration: MigrationPolicy | None = None,
    budget_scale: float = 1.0,
) -> ReciprocityAbuseService:
    """Build an Instalex instance targeting ``candidates``."""
    config = ReciprocityServiceConfig(
        pricing=INSTALEX_PRICING,
        daily_budgets={
            ActionType.LIKE: 48.0 * budget_scale,
            ActionType.FOLLOW: 60.0 * budget_scale,
            ActionType.COMMENT: 14.0 * budget_scale,
        },
        unfollow_after_days=2,
    )
    targeting = ReciprocityTargeting(
        platform,
        candidates,
        rng,
        out_degree_bias=1.2,
        in_degree_bias=1.6,
        curated=curated,
    )
    return ReciprocityAbuseService(
        INSTALEX_DESCRIPTOR, platform, fabric, rng, config, targeting, migration=migration
    )
