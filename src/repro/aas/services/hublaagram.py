"""Hublaagram: the large collusion-network AAS.

Paper facts encoded here:

* Table 1 — offers like, follow, comment.
* Table 3 — the full price list: $15 lifetime no-collusion opt-out,
  one-time like packages, monthly likes-per-photo tiers.
* Section 3.3.2 — free likes/follows/comments, rate limited (~80 likes
  or ~40 follows per request, two requests per hour → the emergent 160
  likes/hour free ceiling the revenue estimator keys on).
* Section 5.2 — pop-under ads (PopAds) on every free request, 1-4 per
  visit.
* Table 7 — operates from Indonesia; automation exits GBR and USA ASNs.
* Figure 6 — reacted to like-blocking only after ~3 weeks; modelled as
  a like-detection deployment lag.

``quantity_scale`` shrinks all action quantities (not prices) so scaled
simulations can fulfil orders; see HublaagramCatalog.scaled.
"""

from __future__ import annotations

import numpy as np

from repro.aas.adaptation import MigrationPolicy
from repro.aas.ads import PopUnderAdNetwork
from repro.aas.base import ServiceDescriptor, ServiceType
from repro.aas.blockdetect import BlockDetectorConfig
from repro.aas.collusion_service import CollusionNetworkService, CollusionServiceConfig
from repro.aas.pricing import HublaagramCatalog
from repro.netsim.fabric import NetworkFabric
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import ActionType
from repro.util.timeutils import weeks

HUBLAAGRAM_DESCRIPTOR = ServiceDescriptor(
    name="Hublaagram",
    service_type=ServiceType.COLLUSION_NETWORK,
    offered_actions=frozenset({ActionType.LIKE, ActionType.FOLLOW, ActionType.COMMENT}),
    operating_country="IDN",
    asn_countries=("GBR", "USA"),
)

#: Section 6.3: Hublaagram took about three weeks to react to like blocks.
LIKE_DETECTION_LAG_TICKS = weeks(3)


def make_hublaagram(
    platform: InstagramPlatform,
    fabric: NetworkFabric,
    rng: np.random.Generator,
    quantity_scale: float = 0.1,
    ads: PopUnderAdNetwork | None = None,
    migration: MigrationPolicy | None = None,
) -> CollusionNetworkService:
    """Build a Hublaagram instance with quantities scaled for simulation."""
    catalog = HublaagramCatalog().scaled(quantity_scale)
    config = CollusionServiceConfig(
        catalog=catalog,
        likes_per_free_request=max(1, int(80 * quantity_scale)),
        follows_per_free_request=max(1, int(40 * quantity_scale)),
        comments_per_free_request=max(1, int(10 * quantity_scale)),
        free_requests_per_hour=2,
        free_delivery_per_hour=max(2, int(80 * quantity_scale)),
        paid_delivery_per_hour=max(4, int(400 * quantity_scale)),
        detector=BlockDetectorConfig(
            deployment_lag_ticks={ActionType.LIKE: LIKE_DETECTION_LAG_TICKS}
        ),
    )
    if ads is None:
        ads = PopUnderAdNetwork(rng)
    return CollusionNetworkService(
        HUBLAAGRAM_DESCRIPTOR, platform, fabric, rng, config, ads=ads, migration=migration
    )
