"""AAS pricing structures (paper Tables 2-4).

All money is integer US cents; durations are simulation ticks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.timeutils import days


def dollars(amount: float) -> int:
    """Convert a dollar amount to integer cents."""
    return int(round(amount * 100))


@dataclass(frozen=True)
class SubscriptionPricing:
    """Reciprocity-abuse pricing: trial then pay-per-period (Table 2).

    ``trial_days_advertised`` vs ``trial_days_actual`` captures the
    Instazood quirk: it advertises a three-day trial but delivers seven
    (Section 4.2).
    """

    trial_days_advertised: int
    min_paid_days: int
    cost_cents: int
    trial_days_actual: int = -1  # -1 means "same as advertised"

    def __post_init__(self):
        if self.trial_days_advertised < 0 or self.min_paid_days <= 0:
            raise ValueError("invalid subscription pricing durations")
        if self.cost_cents <= 0:
            raise ValueError("cost must be positive")
        if self.trial_days_actual == -1:
            object.__setattr__(self, "trial_days_actual", self.trial_days_advertised)

    @property
    def trial_ticks(self) -> int:
        return days(self.trial_days_actual)

    @property
    def period_ticks(self) -> int:
        return days(self.min_paid_days)

    @property
    def cost_per_day_cents(self) -> float:
        return self.cost_cents / self.min_paid_days


@dataclass(frozen=True)
class LikePackage:
    """A Hublaagram one-time like package (Table 3, "Immediate")."""

    likes: int
    cost_cents: int


@dataclass(frozen=True)
class MonthlyLikeTier:
    """A Hublaagram monthly likes-per-photo tier (Table 3, "Month")."""

    likes_low: int
    likes_high: int
    cost_cents: int

    def contains(self, likes_per_photo: float) -> bool:
        return self.likes_low <= likes_per_photo < self.likes_high


@dataclass(frozen=True)
class HublaagramCatalog:
    """Hublaagram's full price list (paper Table 3)."""

    no_collusion_fee_cents: int = dollars(15)
    one_time_packages: tuple[LikePackage, ...] = (
        LikePackage(2_000, dollars(10)),
        LikePackage(5_000, dollars(20)),
        LikePackage(10_000, dollars(25)),
    )
    monthly_tiers: tuple[MonthlyLikeTier, ...] = (
        MonthlyLikeTier(250, 500, dollars(20)),
        MonthlyLikeTier(500, 1_000, dollars(30)),
        MonthlyLikeTier(1_000, 2_000, dollars(40)),
        MonthlyLikeTier(2_000, 4_000, dollars(70)),
    )

    def tier_for(self, likes_per_photo: float) -> MonthlyLikeTier | None:
        for tier in self.monthly_tiers:
            if tier.contains(likes_per_photo):
                return tier
        return None

    def scaled(self, factor: float) -> "HublaagramCatalog":
        """Scale action *quantities* (not prices) by ``factor``.

        Simulated populations are far smaller than Instagram's, so a
        2,000-like package cannot literally be fulfilled by 2,000 distinct
        accounts. Scaling quantities while keeping prices preserves the
        accounting structure; the revenue estimator consumes the same
        scaled catalog the service publishes (as the paper's estimator
        consumed the real published catalog).
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return HublaagramCatalog(
            no_collusion_fee_cents=self.no_collusion_fee_cents,
            one_time_packages=tuple(
                LikePackage(max(1, int(p.likes * factor)), p.cost_cents)
                for p in self.one_time_packages
            ),
            monthly_tiers=tuple(
                MonthlyLikeTier(
                    max(1, int(t.likes_low * factor)),
                    max(2, int(t.likes_high * factor)),
                    t.cost_cents,
                )
                for t in self.monthly_tiers
            ),
        )


@dataclass(frozen=True)
class FollowersgratisOption:
    """A Followersgratis paid option (paper Table 4)."""

    description: str
    follows: int
    bonus_likes: int
    cost_cents: int
    duration_days: int  # 0 = instant


@dataclass(frozen=True)
class FollowersgratisCatalog:
    """Followersgratis's price list (paper Table 4)."""

    options: tuple[FollowersgratisOption, ...] = (
        FollowersgratisOption("500 follows + 300 free likes", 500, 300, dollars(3.15), 1),
        FollowersgratisOption("1000 follows + 500 free likes", 1_000, 500, dollars(5.25), 1),
        FollowersgratisOption("500 likes (250 free)", 0, 750, dollars(2.10), 0),
        FollowersgratisOption("500 likes (500 free)", 0, 1_000, dollars(5.25), 0),
    )


#: Table 2 rows.
INSTALEX_PRICING = SubscriptionPricing(
    trial_days_advertised=7, min_paid_days=7, cost_cents=dollars(3.15)
)
INSTAZOOD_PRICING = SubscriptionPricing(
    trial_days_advertised=3, min_paid_days=1, cost_cents=dollars(0.34), trial_days_actual=7
)
BOOSTGRAM_PRICING = SubscriptionPricing(
    trial_days_advertised=3, min_paid_days=30, cost_cents=dollars(99)
)
