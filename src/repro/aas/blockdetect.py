"""Service-side block detection (paper Section 6.3).

"The service reacts immediately to blocking follows, dropping the number
of actions below the threshold and probing it thereafter. ... the
reaction patterns across services strongly suggest that it is an
automated process; indeed, we found an openly available implementation
of one of these services with block detection logic."

:class:`BlockDetector` is that logic: it watches per-action-type
outcomes over a sliding window and reports when the platform is visibly
blocking. A per-action-type deployment lag models Hublaagram's
three-week delay before reacting to like blocks ("perhaps because it
had to implement blocked like detection").

Synchronous blocks are the *only* observable here — delayed removal
never surfaces, because the service's own request succeeded. That
asymmetry is the paper's central intervention finding.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Deque

from repro.platform.models import ActionType
from repro.util.timeutils import days


@dataclass
class BlockDetectorConfig:
    """Detector tuning."""

    #: sliding window over which the blocked fraction is computed
    window_ticks: int = days(1)
    #: blocked fraction above which the service concludes it is blocked
    block_ratio_threshold: float = 0.10
    #: minimum attempts in the window before the ratio is trusted
    min_observations: int = 20
    #: per-action-type lag between first observed block and the detector
    #: becoming operational (models engineering time to ship detection)
    deployment_lag_ticks: dict[ActionType, int] = field(default_factory=dict)

    def __post_init__(self):
        if not 0.0 < self.block_ratio_threshold <= 1.0:
            raise ValueError("block_ratio_threshold must be in (0, 1]")
        if self.min_observations < 1:
            raise ValueError("min_observations must be positive")


class BlockDetector:
    """Sliding-window blocked-fraction detector with deployment lag."""

    def __init__(self, config: BlockDetectorConfig | None = None, enabled: bool = True):
        self.config = config if config is not None else BlockDetectorConfig()
        self.enabled = enabled
        self._events: dict[ActionType, Deque[tuple[int, bool]]] = defaultdict(deque)
        self._first_block_tick: dict[ActionType, int] = {}
        self.total_blocks_observed = 0

    def observe(self, action_type: ActionType, blocked: bool, tick: int) -> None:
        """Feed one attempted action's outcome."""
        if blocked:
            self.total_blocks_observed += 1
            self._first_block_tick.setdefault(action_type, tick)
        events = self._events[action_type]
        events.append((tick, blocked))
        cutoff = tick - self.config.window_ticks
        while events and events[0][0] <= cutoff:
            events.popleft()

    def operational(self, action_type: ActionType, tick: int) -> bool:
        """Whether detection capability for this action type is live."""
        if not self.enabled:
            return False
        first_block = self._first_block_tick.get(action_type)
        if first_block is None:
            return False
        lag = self.config.deployment_lag_ticks.get(action_type, 0)
        return tick >= first_block + lag

    def blocked_ratio(self, action_type: ActionType, tick: int) -> float:
        """Blocked fraction in the current window (0.0 with too few samples)."""
        events = self._events[action_type]
        cutoff = tick - self.config.window_ticks
        relevant = [(t, b) for t, b in events if t > cutoff]
        if len(relevant) < self.config.min_observations:
            return 0.0
        return sum(1 for _, b in relevant if b) / len(relevant)

    def blocking_detected(self, action_type: ActionType, tick: int) -> bool:
        """The service's verdict: is the platform blocking this action type?"""
        if not self.operational(action_type, tick):
            return False
        return self.blocked_ratio(action_type, tick) >= self.config.block_ratio_threshold


@dataclass
class ThrottleState:
    """Adaptive per-account daily budget for one action type.

    Implements the observed reaction: on detected blocking, back off
    below the platform's (unknown) threshold; once quiet, creep back up —
    "dropping the number of actions below the threshold and probing it
    thereafter" (Section 6.3).
    """

    base_level: float
    level: float = -1.0
    floor: float = 2.0
    backoff_factor: float = 0.60
    probe_factor: float = 1.12
    probe_interval_ticks: int = days(2)
    last_change_tick: int = -(10**9)
    suppressed: bool = False

    def __post_init__(self):
        if self.base_level <= 0:
            raise ValueError("base_level must be positive")
        if self.level < 0:
            self.level = self.base_level
        if not 0.0 < self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be in (0, 1)")
        if self.probe_factor <= 1.0:
            raise ValueError("probe_factor must exceed 1")

    def on_blocking(self, tick: int) -> None:
        """React to detected blocking: immediate multiplicative backoff."""
        self.level = max(self.floor, self.level * self.backoff_factor)
        self.suppressed = True
        self.last_change_tick = tick

    def on_quiet(self, tick: int) -> None:
        """No blocking detected; if suppressed, probe back up slowly."""
        if not self.suppressed:
            return
        if tick - self.last_change_tick < self.probe_interval_ticks:
            return
        self.level = min(self.base_level, self.level * self.probe_factor)
        self.last_change_tick = tick
        if self.level >= self.base_level:
            self.suppressed = False
