"""Empirical CDFs, used for the Figure 3/4 target-bias analyses."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class EmpiricalCDF:
    """An empirical cumulative distribution function over a sample.

    >>> cdf = EmpiricalCDF([1, 2, 2, 4])
    >>> cdf(2)
    0.75
    >>> cdf.quantile(0.5)
    2.0
    """

    def __init__(self, sample: Iterable[float]):
        values = np.sort(np.asarray(list(sample), dtype=float))
        if values.size == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        self._values = values

    @property
    def n(self) -> int:
        return int(self._values.size)

    def __call__(self, x: float) -> float:
        """P(X <= x) under the empirical distribution."""
        return float(np.searchsorted(self._values, x, side="right")) / self.n

    def quantile(self, q: float) -> float:
        """Inverse CDF via linear interpolation; ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self._values, q))

    def median(self) -> float:
        return self.quantile(0.5)

    def series(self, points: int = 100) -> list[tuple[float, float]]:
        """Return ``points`` (x, P(X<=x)) pairs for plotting/reporting."""
        if points < 2:
            raise ValueError("need at least two points")
        xs = np.quantile(self._values, np.linspace(0.0, 1.0, points))
        return [(float(x), self(float(x))) for x in xs]

    @staticmethod
    def ks_distance(a: "EmpiricalCDF", b: "EmpiricalCDF") -> float:
        """Two-sample Kolmogorov-Smirnov statistic between two CDFs.

        Used by benchmarks to quantify how far the AAS-targeted account
        distribution sits from the random-Instagram baseline.
        """
        grid = np.union1d(a._values, b._values)
        gaps = [abs(a(float(x)) - b(float(x))) for x in grid]
        return max(gaps)


def summarize(sample: Sequence[float]) -> dict[str, float]:
    """Five-number summary of a sample, for table output."""
    cdf = EmpiricalCDF(sample)
    return {
        "min": cdf.quantile(0.0),
        "p25": cdf.quantile(0.25),
        "median": cdf.quantile(0.5),
        "p75": cdf.quantile(0.75),
        "max": cdf.quantile(1.0),
    }
