"""Deterministic random-number plumbing.

Every stochastic component in the simulator draws from a generator
derived from one root seed, namespaced by a string label. Two scenarios
built from the same seed therefore produce identical event streams, and
independent subsystems (population synthesis, AAS scheduling, organic
reciprocation, ...) never perturb each other's random state.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: The sanctioned RNG injection points. Every generator in the system
#: must be reachable from one of these (the whole-program linter's API003
#: taint rule reads this declaration to know its roots); add a name here
#: only when introducing a new, seed-derived construction path.
RNG_ROOTS: tuple[str, ...] = ("derive_rng", "SeedSequenceFactory")


def _label_entropy(label: str) -> int:
    """Map a textual label to a stable 64-bit integer.

    Python's builtin ``hash`` is salted per process, so we use BLAKE2 to
    keep derivations reproducible across runs and machines.
    """
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def derive_rng(seed: int, label: str) -> np.random.Generator:
    """Return a generator unique to ``(seed, label)``.

    >>> a = derive_rng(7, "population")
    >>> b = derive_rng(7, "population")
    >>> float(a.random()) == float(b.random())
    True
    """
    return np.random.default_rng(np.random.SeedSequence([seed, _label_entropy(label)]))


class SeedSequenceFactory:
    """Hands out namespaced generators derived from a single root seed.

    The factory memoizes generators by label so that repeated lookups of
    the same subsystem share one stream (and therefore one evolving
    state), while distinct labels are statistically independent.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, label: str) -> np.random.Generator:
        """Return the (memoized) generator for ``label``."""
        if label not in self._cache:
            self._cache[label] = derive_rng(self.seed, label)
        return self._cache[label]

    def fresh(self, label: str) -> np.random.Generator:
        """Return a new, non-memoized generator for ``label``."""
        return derive_rng(self.seed, label)

    def spawn(self, label: str) -> "SeedSequenceFactory":
        """Derive a child factory whose labels live in a sub-namespace."""
        return SeedSequenceFactory(self.seed ^ _label_entropy(label))

    # -- explicit state capture (the repro.fleet snapshot contract) -----

    def state_dict(self) -> dict[str, dict]:
        """Every memoized generator's bit-generator state, by label.

        The values are the plain-python dicts numpy exposes via
        ``Generator.bit_generator.state`` — JSON-serializable, so a
        snapshot envelope can record (and later verify) the exact RNG
        position without trusting opaque pickle bytes.
        """
        return {
            label: dict(self._cache[label].bit_generator.state)
            for label in sorted(self._cache)
        }

    def load_state_dict(self, states: dict[str, dict]) -> None:
        """Restore memoized generators to the captured positions.

        Labels absent from ``states`` are left untouched; labels not yet
        memoized are derived first (so their stream type matches) and
        then fast-forwarded to the recorded state.
        """
        for label in sorted(states):
            self.get(label).bit_generator.state = states[label]
