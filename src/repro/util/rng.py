"""Deterministic random-number plumbing.

Every stochastic component in the simulator draws from a generator
derived from one root seed, namespaced by a string label. Two scenarios
built from the same seed therefore produce identical event streams, and
independent subsystems (population synthesis, AAS scheduling, organic
reciprocation, ...) never perturb each other's random state.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Protocol

import numpy as np

#: The sanctioned RNG injection points. Every generator in the system
#: must be reachable from one of these (the whole-program linter's API003
#: taint rule reads this declaration to know its roots); add a name here
#: only when introducing a new, seed-derived construction path.
RNG_ROOTS: tuple[str, ...] = ("derive_rng", "SeedSequenceFactory")


class SupportsCounter(Protocol):
    """Write-only counter shape (structurally, a repro.obs Counter)."""

    def inc(self, amount: int = 1) -> None: ...


class SupportsObs(Protocol):
    """The slice of the Observability facade this module touches.

    ``util`` sits *below* ``obs`` in the layer stack (ARCH001), so the
    telemetry handle arrives duck-typed: the composition root passes a
    real ``Observability`` down, and this module never imports it.
    """

    def counter(self, name: str, **labels: str) -> SupportsCounter: ...


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None


_NULL_COUNTER = _NullCounter()


def _label_entropy(label: str) -> int:
    """Map a textual label to a stable 64-bit integer.

    Python's builtin ``hash`` is salted per process, so we use BLAKE2 to
    keep derivations reproducible across runs and machines.
    """
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def derive_rng(seed: int, label: str) -> np.random.Generator:
    """Return a generator unique to ``(seed, label)``.

    >>> a = derive_rng(7, "population")
    >>> b = derive_rng(7, "population")
    >>> float(a.random()) == float(b.random())
    True
    """
    return np.random.default_rng(np.random.SeedSequence([seed, _label_entropy(label)]))


class SeedSequenceFactory:
    """Hands out namespaced generators derived from a single root seed.

    The factory memoizes generators by label so that repeated lookups of
    the same subsystem share one stream (and therefore one evolving
    state), while distinct labels are statistically independent.

    When built with an ``obs`` handle the factory counts its work for
    the cost profiler (:mod:`repro.obs.prof`): ``util.rng.derivations``
    per new stream derived (by path) and ``util.rng.lookups`` per
    memoized hit. Stream *derivations*, not individual draws, are the
    countable RNG unit — wrapping every Generator method would tax the
    hot paths the profiler exists to measure.
    """

    def __init__(self, seed: int, obs: Optional[SupportsObs] = None):
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}
        self._obs = obs
        self._obs_get: SupportsCounter = _NULL_COUNTER
        self._obs_fresh: SupportsCounter = _NULL_COUNTER
        self._obs_spawn: SupportsCounter = _NULL_COUNTER
        self._obs_hits: SupportsCounter = _NULL_COUNTER
        if obs is not None:
            self._obs_get = obs.counter("util.rng.derivations", path="get")
            self._obs_fresh = obs.counter("util.rng.derivations", path="fresh")
            self._obs_spawn = obs.counter("util.rng.derivations", path="spawn")
            self._obs_hits = obs.counter("util.rng.lookups", path="hit")

    def __getstate__(self) -> dict:
        # plain capture; the counters pickle alongside (they are shared
        # with the study's registry, and pickling keeps that identity)
        return dict(self.__dict__)

    def __setstate__(self, state: dict) -> None:
        # factories pickled before the counters existed resurface un-wired
        self.__dict__.update(state)
        for attr in ("_obs", "_obs_get", "_obs_fresh", "_obs_spawn", "_obs_hits"):
            self.__dict__.setdefault(attr, _NULL_COUNTER if attr != "_obs" else None)

    def get(self, label: str) -> np.random.Generator:
        """Return the (memoized) generator for ``label``."""
        if label not in self._cache:
            self._obs_get.inc()
            self._cache[label] = derive_rng(self.seed, label)
        else:
            self._obs_hits.inc()
        return self._cache[label]

    def fresh(self, label: str) -> np.random.Generator:
        """Return a new, non-memoized generator for ``label``."""
        self._obs_fresh.inc()
        return derive_rng(self.seed, label)

    def spawn(self, label: str) -> "SeedSequenceFactory":
        """Derive a child factory whose labels live in a sub-namespace."""
        self._obs_spawn.inc()
        return SeedSequenceFactory(self.seed ^ _label_entropy(label), obs=self._obs)

    # -- explicit state capture (the repro.fleet snapshot contract) -----

    def state_dict(self) -> dict[str, dict]:
        """Every memoized generator's bit-generator state, by label.

        The values are the plain-python dicts numpy exposes via
        ``Generator.bit_generator.state`` — JSON-serializable, so a
        snapshot envelope can record (and later verify) the exact RNG
        position without trusting opaque pickle bytes.
        """
        return {
            label: dict(self._cache[label].bit_generator.state)
            for label in sorted(self._cache)
        }

    def load_state_dict(self, states: dict[str, dict]) -> None:
        """Restore memoized generators to the captured positions.

        Labels absent from ``states`` are left untouched; labels not yet
        memoized are derived first (so their stream type matches) and
        then fast-forwarded to the recorded state.
        """
        for label in sorted(states):
            self.get(label).bit_generator.state = states[label]
