"""Simulation-time units.

The simulator's clock counts integer hours ("ticks"). These helpers keep
call sites readable (``days(90)`` instead of ``90 * 24``).
"""

from __future__ import annotations

HOURS_PER_DAY = 24
HOURS_PER_WEEK = 7 * HOURS_PER_DAY


def hours(n: float) -> int:
    """Convert hours to ticks (identity, with int coercion)."""
    return int(n)


def days(n: float) -> int:
    """Convert days to ticks."""
    return int(n * HOURS_PER_DAY)


def weeks(n: float) -> int:
    """Convert weeks to ticks."""
    return int(n * HOURS_PER_WEEK)


def tick_to_day(tick: int) -> int:
    """Return the zero-based day index containing ``tick``."""
    if tick < 0:
        raise ValueError("tick must be non-negative")
    return tick // HOURS_PER_DAY


def tick_to_week(tick: int) -> int:
    """Return the zero-based week index containing ``tick``."""
    if tick < 0:
        raise ValueError("tick must be non-negative")
    return tick // HOURS_PER_WEEK
