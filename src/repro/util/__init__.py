"""Shared utilities: seeded randomness, statistics, CDFs, tables, time.

These helpers are deliberately dependency-light; everything above them in
the package graph (netsim, platform, aas, ...) builds on this layer.
"""

from repro.util.rng import SeedSequenceFactory, derive_rng
from repro.util.stats import (
    RunningStats,
    median,
    percentile,
    weighted_choice,
)
from repro.util.cdf import EmpiricalCDF
from repro.util.tables import format_table
from repro.util.timeutils import (
    HOURS_PER_DAY,
    HOURS_PER_WEEK,
    days,
    hours,
    weeks,
)

__all__ = [
    "SeedSequenceFactory",
    "derive_rng",
    "RunningStats",
    "median",
    "percentile",
    "weighted_choice",
    "EmpiricalCDF",
    "format_table",
    "HOURS_PER_DAY",
    "HOURS_PER_WEEK",
    "days",
    "hours",
    "weeks",
]
