"""ASCII table rendering for benchmark harness output.

The benchmark scripts print the same rows the paper's tables report;
this module keeps that formatting in one place.
"""

from __future__ import annotations

from typing import Any, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value):,}"
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as a boxed, aligned ASCII table."""
    rendered = [[_cell(v) for v in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"

    rule = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(rule)
    lines.append(fmt_row(list(headers)))
    lines.append(rule)
    lines.extend(fmt_row(row) for row in rendered)
    lines.append(rule)
    return "\n".join(lines)


def format_kv(title: str, pairs: Sequence[tuple[str, Any]]) -> str:
    """Render key/value pairs as a two-column table."""
    return format_table(["metric", "value"], [[k, v] for k, v in pairs], title=title)
