"""Small statistics helpers used across the measurement pipeline."""

from __future__ import annotations

import math
from typing import Iterable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def percentile(values: Sequence[float], pct: float) -> float:
    """Return the ``pct``-th percentile of ``values`` (linear interpolation).

    Raises ``ValueError`` on an empty sequence — a silent 0.0 would turn
    into a countermeasure threshold that blocks everything.
    """
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of no values")
    return float(np.percentile(arr, pct))


def median(values: Sequence[float]) -> float:
    """Return the median of ``values``; raises on empty input."""
    return percentile(values, 50.0)


def weighted_choice(rng: np.random.Generator, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item with probability proportional to its weight."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    probs = np.asarray(weights, dtype=float) / total
    index = int(rng.choice(len(items), p=probs))
    return items[index]


class RunningStats:
    """Streaming mean/variance/min/max (Welford's algorithm).

    Used by monitors that watch long event streams without buffering
    them, e.g. per-day action counters in the intervention experiments.
    """

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations into the summary."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); zero with fewer than two points."""
        if self.count == 0:
            raise ValueError("no observations")
        if self.count == 1:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.count == 0:
            return "RunningStats(empty)"
        return f"RunningStats(n={self.count}, mean={self.mean:.3f}, sd={self.stddev:.3f})"
