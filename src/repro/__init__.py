"""Reproduction of "Following Their Footsteps: Characterizing Account
Automation Abuse and Defenses" (DeKoven et al., IMC 2018).

Headline API::

    from repro import Study, StudyConfig

    study = Study(StudyConfig.small(seed=42))
    study.run_honeypot_phase()        # Section 4: Table 5
    study.learn_signatures()          # Section 5 preamble
    dataset = study.run_measurement() # Section 5: Tables 6-11, Figs 2-4
    narrow = study.run_narrow_intervention()  # Section 6.3: Figs 5-6
    broad = study.run_broad_intervention()    # Section 6.4: Fig 7

Subpackages (see each module's docstring):

``repro.platform``       the Instagram-like platform simulator
``repro.netsim``         IP/ASN/geo network substrate
``repro.behavior``       organic population and reciprocity models
``repro.aas``            the five account automation services
``repro.honeypot``       instrumented measurement accounts
``repro.detection``      attribution signatures and customer analytics
``repro.analysis``       revenue, geography, action-mix, target bias
``repro.interventions``  thresholds, bins, block/delay experiments
``repro.core``           the Study orchestrator and experiment functions
"""

from repro.core.config import ServicePlans, StudyConfig
from repro.core.study import (
    EpilogueOutcome,
    InterventionOutcome,
    MeasurementDataset,
    Study,
)

__version__ = "1.0.0"

__all__ = [
    "Study",
    "StudyConfig",
    "ServicePlans",
    "MeasurementDataset",
    "InterventionOutcome",
    "EpilogueOutcome",
    "__version__",
]
