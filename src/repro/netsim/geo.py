"""IP geolocation, standing in for "Instagram's IP geolocation system".

The paper defines an account's location as the most frequent login
country (Section 5.1). :class:`GeoIP` resolves addresses to country and
ASN; :class:`LoginGeolocator` implements the most-frequent-country rule
over an account's login history.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.netsim.asn import ASNRegistry


class GeoIP:
    """Resolves integer IPv4 addresses to (country, asn)."""

    def __init__(self, registry: ASNRegistry):
        self._registry = registry

    def asn(self, addr: int) -> int:
        return self._registry.asn_of(addr)

    def country(self, addr: int) -> str:
        return self._registry.country_of_asn(self.asn(addr))

    def locate(self, addr: int) -> tuple[str, int]:
        asn = self.asn(addr)
        return self._registry.country_of_asn(asn), asn


class LoginGeolocator:
    """Account location = most frequent login country (paper Section 5.1).

    Ties break lexicographically so the rule is deterministic.
    """

    def __init__(self, geoip: GeoIP):
        self._geoip = geoip

    def account_country(self, login_addresses: Iterable[int]) -> str:
        counts = Counter(self._geoip.country(addr) for addr in login_addresses)
        if not counts:
            raise ValueError("account has no logins to geolocate")
        top_count = max(counts.values())
        candidates = sorted(country for country, n in counts.items() if n == top_count)
        return candidates[0]
