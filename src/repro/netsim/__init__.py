"""Network substrate: IP address space, ASNs, geolocation, clients, proxies.

The paper's attribution and intervention machinery keys on the network
origin of each Instagram request (IP address, Autonomous System Number,
and the country the IP geolocates to). This package provides a synthetic
but internally-consistent version of that infrastructure:

* :class:`AutonomousSystem` / :class:`ASNRegistry` — a registry of ASes,
  each owning IPv4 prefixes and mapped to a country and a kind
  (residential, hosting, mobile).
* :class:`IPAddressSpace` — allocates addresses from AS prefixes.
* :class:`GeoIP` — resolves an address to country/ASN, mirroring the
  "Instagram IP geolocation system" the paper relies on.
* :class:`ClientEndpoint` — an (ip, asn, device fingerprint) triple from
  which platform requests are issued.
* :class:`ProxyPool` — rotating proxy infrastructure that AASs adopt
  after blocking interventions (Section 6.4 epilogue).
"""

from repro.netsim.asn import ASKind, ASNRegistry, AutonomousSystem
from repro.netsim.ipspace import IPAddressSpace, format_ipv4
from repro.netsim.geo import GeoIP
from repro.netsim.client import ClientEndpoint, DeviceFingerprint
from repro.netsim.proxies import ProxyPool
from repro.netsim.fabric import NetworkFabric

__all__ = [
    "NetworkFabric",
    "ASKind",
    "ASNRegistry",
    "AutonomousSystem",
    "IPAddressSpace",
    "format_ipv4",
    "GeoIP",
    "ClientEndpoint",
    "DeviceFingerprint",
    "ProxyPool",
]
