"""Client endpoints: where a platform request comes from.

Every request carries a :class:`ClientEndpoint` (source address + device
fingerprint). The fingerprint distinguishes official mobile clients,
the public OAuth API, and AAS automation stacks spoofing the private
mobile API (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.ipspace import format_ipv4


@dataclass(frozen=True)
class DeviceFingerprint:
    """A coarse client identity: family plus a per-installation token.

    ``family`` examples: ``"android"``, ``"ios"``, ``"web-oauth"``, or an
    automation stack's spoofed identity (which claims a mobile family but
    is distinguishable by low-level signals captured in ``variant``).
    """

    family: str
    variant: str = "stock"

    def spoofed_as(self, family: str) -> "DeviceFingerprint":
        """Return a fingerprint that claims ``family`` but keeps our variant.

        This models AAS request spoofing: the claimed family changes, the
        subtle implementation tells (header ordering, TLS stack, ...)
        condensed into ``variant`` do not.
        """
        return DeviceFingerprint(family=family, variant=self.variant)


@dataclass(frozen=True)
class ClientEndpoint:
    """The network origin of a request."""

    address: int
    asn: int
    fingerprint: DeviceFingerprint

    def __str__(self) -> str:
        return f"{format_ipv4(self.address)} (AS{self.asn}, {self.fingerprint.family}/{self.fingerprint.variant})"
