"""IPv4 address bookkeeping for the network substrate.

Addresses are plain integers internally; :func:`format_ipv4` renders the
dotted-quad form for logs and reports. Prefixes are (base, prefix_len)
pairs and allocation is sequential within a prefix, which keeps the
space deterministic under a fixed scenario seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def format_ipv4(addr: int) -> str:
    """Render an integer address as dotted-quad text."""
    if not 0 <= addr <= 0xFFFFFFFF:
        raise ValueError(f"address out of IPv4 range: {addr}")
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad text into an integer address."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    addr = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        addr = (addr << 8) | octet
    return addr


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix: ``base`` is the network address, ``length`` the mask."""

    base: int
    length: int

    def __post_init__(self):
        if not 0 <= self.length <= 32:
            raise ValueError(f"invalid prefix length {self.length}")
        if self.base & (self.size - 1):
            raise ValueError("prefix base is not aligned to its length")

    @property
    def size(self) -> int:
        return 1 << (32 - self.length)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def __str__(self) -> str:
        return f"{format_ipv4(self.base)}/{self.length}"


@dataclass
class IPAddressSpace:
    """Sequential allocator over a set of disjoint prefixes.

    Each allocation returns a fresh address; the allocator refuses to
    hand out more addresses than a prefix holds.
    """

    prefixes: list[Prefix] = field(default_factory=list)
    _next_offset: dict[Prefix, int] = field(default_factory=dict)

    def add_prefix(self, prefix: Prefix) -> None:
        """Register a prefix; overlapping prefixes are rejected."""
        for existing in self.prefixes:
            if existing.contains(prefix.base) or prefix.contains(existing.base):
                raise ValueError(f"prefix {prefix} overlaps {existing}")
        self.prefixes.append(prefix)
        self._next_offset[prefix] = 0

    def allocate(self, prefix: Prefix) -> int:
        """Allocate the next free address inside ``prefix``."""
        if prefix not in self._next_offset:
            raise KeyError(f"unknown prefix {prefix}")
        offset = self._next_offset[prefix]
        if offset >= prefix.size:
            raise RuntimeError(f"prefix {prefix} exhausted")
        self._next_offset[prefix] = offset + 1
        return prefix.base + offset

    def owner_prefix(self, addr: int) -> Prefix:
        """Return the registered prefix containing ``addr``."""
        for prefix in self.prefixes:
            if prefix.contains(addr):
                return prefix
        raise KeyError(f"address {format_ipv4(addr)} is outside all prefixes")

    def allocated_count(self) -> int:
        return sum(self._next_offset.values())
