"""Autonomous-system registry.

ASNs are the pivot of the paper's interventions: eligibility thresholds
are computed per ASN, and services evade blocks by migrating to new ASNs
(Section 6.4). Each synthetic AS owns one or more IPv4 prefixes, has a
country, and is classified as residential, hosting, or mobile — hosting
ASes are where AAS automation traffic concentrates, while residential
and mobile ASes carry the benign logins blended into "mixed" ASNs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.netsim.ipspace import IPAddressSpace, Prefix


class ASKind(enum.Enum):
    """Coarse AS classification used by threshold selection (Section 6.2)."""

    RESIDENTIAL = "residential"
    HOSTING = "hosting"
    MOBILE = "mobile"


@dataclass
class AutonomousSystem:
    """One autonomous system with its prefixes and metadata."""

    asn: int
    name: str
    country: str
    kind: ASKind
    prefixes: list[Prefix] = field(default_factory=list)

    def __post_init__(self):
        if self.asn <= 0:
            raise ValueError("ASN must be positive")
        self.country = self.country.upper()


class ASNRegistry:
    """Registry mapping ASNs to metadata and addresses to ASNs.

    The registry owns a shared :class:`IPAddressSpace`, so every
    allocated address is attributable to exactly one AS.
    """

    def __init__(self):
        self._by_asn: dict[int, AutonomousSystem] = {}
        self.space = IPAddressSpace()
        self._next_private_asn = 64512  # RFC 6996 private-use range

    def register(self, autonomous_system: AutonomousSystem) -> AutonomousSystem:
        """Register an AS and all of its prefixes."""
        if autonomous_system.asn in self._by_asn:
            raise ValueError(f"ASN {autonomous_system.asn} already registered")
        for prefix in autonomous_system.prefixes:
            self.space.add_prefix(prefix)
        self._by_asn[autonomous_system.asn] = autonomous_system
        return autonomous_system

    def create(self, name: str, country: str, kind: ASKind, prefixes: list[Prefix]) -> AutonomousSystem:
        """Create and register an AS with an auto-assigned ASN."""
        asn = self._next_private_asn
        self._next_private_asn += 1
        return self.register(AutonomousSystem(asn=asn, name=name, country=country, kind=kind, prefixes=prefixes))

    def get(self, asn: int) -> AutonomousSystem:
        if asn not in self._by_asn:
            raise KeyError(f"unknown ASN {asn}")
        return self._by_asn[asn]

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    def __len__(self) -> int:
        return len(self._by_asn)

    def all_asns(self) -> list[int]:
        return sorted(self._by_asn)

    def allocate_address(self, asn: int) -> int:
        """Allocate a fresh address from the AS's first non-full prefix."""
        autonomous_system = self.get(asn)
        last_error: Exception | None = None
        for prefix in autonomous_system.prefixes:
            try:
                return self.space.allocate(prefix)
            except RuntimeError as exc:
                last_error = exc
        raise RuntimeError(f"AS{asn} has no free addresses") from last_error

    def asn_of(self, addr: int) -> int:
        """Map an address back to its owning ASN."""
        prefix = self.space.owner_prefix(addr)
        for autonomous_system in self._by_asn.values():
            if prefix in autonomous_system.prefixes:
                return autonomous_system.asn
        raise KeyError(f"no AS owns prefix {prefix}")

    def country_of_asn(self, asn: int) -> str:
        return self.get(asn).country
