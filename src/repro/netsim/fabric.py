"""Per-country network fabric.

Builds a world of residential/mobile/hosting ASes across the scenario's
countries and hands out client endpoints, so that every simulated user
logs in from a plausible home network and every AAS runs out of hosting
ASes in its operating country (paper Table 7).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.netsim.asn import ASKind, ASNRegistry, AutonomousSystem
from repro.netsim.client import ClientEndpoint, DeviceFingerprint
from repro.netsim.ipspace import Prefix

#: Carve per-AS /16 prefixes out of this base (distinct from the proxy pool's 11/8).
_FABRIC_SPACE_BASE = 0x0C000000  # 12.0.0.0/8 onward


class NetworkFabric:
    """Factory for country-tagged ASes and client endpoints."""

    def __init__(self, registry: ASNRegistry, rng: np.random.Generator):
        self.registry = registry
        self._rng = rng
        self._by_country_kind: dict[tuple[str, ASKind], list[AutonomousSystem]] = defaultdict(list)
        self._next_slot = 0

    def _fresh_prefix(self) -> Prefix:
        base = _FABRIC_SPACE_BASE + (self._next_slot << 16)
        self._next_slot += 1
        if base > 0xDF000000:
            raise RuntimeError("fabric address space exhausted")
        return Prefix(base=base, length=16)

    def add_as(self, country: str, kind: ASKind, name: str = "") -> AutonomousSystem:
        """Create one AS of ``kind`` in ``country`` with a fresh /16."""
        country = country.upper()
        label = name or f"{country.lower()}-{kind.value}-{len(self._by_country_kind[(country, kind)])}"
        autonomous_system = self.registry.create(
            name=label, country=country, kind=kind, prefixes=[self._fresh_prefix()]
        )
        self._by_country_kind[(country, kind)].append(autonomous_system)
        return autonomous_system

    def ensure_country(
        self, country: str, residential: int = 2, mobile: int = 1
    ) -> None:
        """Guarantee the country has at least the given AS counts."""
        country = country.upper()
        while len(self._by_country_kind[(country, ASKind.RESIDENTIAL)]) < residential:
            self.add_as(country, ASKind.RESIDENTIAL)
        while len(self._by_country_kind[(country, ASKind.MOBILE)]) < mobile:
            self.add_as(country, ASKind.MOBILE)

    def ases(self, country: str, kind: ASKind) -> list[AutonomousSystem]:
        return list(self._by_country_kind[(country.upper(), kind)])

    def home_endpoint(self, country: str, fingerprint: DeviceFingerprint) -> ClientEndpoint:
        """Allocate a fresh consumer endpoint (residential or mobile) in ``country``."""
        country = country.upper()
        candidates = (
            self._by_country_kind[(country, ASKind.RESIDENTIAL)]
            + self._by_country_kind[(country, ASKind.MOBILE)]
        )
        if not candidates:
            raise KeyError(f"no consumer ASes in {country}; call ensure_country first")
        autonomous_system = candidates[int(self._rng.integers(0, len(candidates)))]
        address = self.registry.allocate_address(autonomous_system.asn)
        return ClientEndpoint(address, autonomous_system.asn, fingerprint)

    def hosting_endpoint(
        self, country: str, fingerprint: DeviceFingerprint, name: str = ""
    ) -> ClientEndpoint:
        """Allocate an endpoint in a hosting AS (creating the AS if needed).

        With ``name``, the endpoint comes from the AS of that name
        (find-or-create) so each service gets dedicated exit ASNs; without
        it, the country's first hosting AS is used.
        """
        country = country.upper()
        hosting = self._by_country_kind[(country, ASKind.HOSTING)]
        autonomous_system = None
        if name:
            for candidate in hosting:
                if candidate.name == name:
                    autonomous_system = candidate
                    break
        elif hosting:
            autonomous_system = hosting[0]
        if autonomous_system is None:
            autonomous_system = self.add_as(country, ASKind.HOSTING, name=name)
        address = self.registry.allocate_address(autonomous_system.asn)
        return ClientEndpoint(address, autonomous_system.asn, fingerprint)
