"""Rotating proxy pools.

After the broad blocking intervention, one AAS "went so far as to use an
extensive proxy network to drastically increase IP diversity"
(Section 6.4 epilogue). :class:`ProxyPool` models that capability: a
large set of addresses spread over many ASes, handed out round-robin so
per-address request rates stay low.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.asn import ASKind, ASNRegistry
from repro.netsim.client import ClientEndpoint, DeviceFingerprint
from repro.netsim.ipspace import Prefix


class ProxyPool:
    """A pool of exit endpoints spread across many (usually residential) ASes."""

    def __init__(self, registry: ASNRegistry, endpoints: list[ClientEndpoint]):
        if not endpoints:
            raise ValueError("a proxy pool needs at least one endpoint")
        self._registry = registry
        self._endpoints = endpoints
        self._cursor = 0

    @classmethod
    def build(
        cls,
        registry: ASNRegistry,
        rng: np.random.Generator,
        as_count: int,
        exits_per_as: int,
        country_pool: list[str],
        fingerprint: DeviceFingerprint,
        name_prefix: str = "proxy",
    ) -> "ProxyPool":
        """Create ``as_count`` fresh residential ASes with exit addresses.

        The prefixes are carved from 10.0.0.0/8-style space the registry
        has not used; each new AS gets a /24 which is ample for the
        simulated exit counts.
        """
        if as_count <= 0 or exits_per_as <= 0:
            raise ValueError("as_count and exits_per_as must be positive")
        endpoints: list[ClientEndpoint] = []
        for i in range(as_count):
            base = _fresh_private_base(registry, i)
            country = country_pool[int(rng.integers(0, len(country_pool)))]
            autonomous_system = registry.create(
                name=f"{name_prefix}-{i}",
                country=country,
                kind=ASKind.RESIDENTIAL,
                prefixes=[Prefix(base=base, length=24)],
            )
            for _ in range(exits_per_as):
                addr = registry.allocate_address(autonomous_system.asn)
                endpoints.append(ClientEndpoint(addr, autonomous_system.asn, fingerprint))
        return cls(registry, endpoints)

    def next_endpoint(self) -> ClientEndpoint:
        """Round-robin over exits, maximizing apparent IP diversity."""
        endpoint = self._endpoints[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._endpoints)
        return endpoint

    def __len__(self) -> int:
        return len(self._endpoints)

    def distinct_asns(self) -> set[int]:
        return {endpoint.asn for endpoint in self._endpoints}


_PROXY_SPACE_BASE = 0x0B000000  # 11.0.0.0/8 — unused by scenario builders


def _fresh_private_base(registry: ASNRegistry, index: int) -> int:
    """Pick a /24 base that does not collide with registered prefixes."""
    for slot in range(index, 1 << 16):
        base = _PROXY_SPACE_BASE + (slot << 8)
        try:
            registry.space.owner_prefix(base)
        except KeyError:
            return base
    raise RuntimeError("proxy address space exhausted")
