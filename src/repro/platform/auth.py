"""Credentials, sessions, and password reset.

AAS customers hand their username/password to the service (Section
3.3.1); "resetting the password revokes AAS access to the account".
The auth service models that: sessions are invalidated by password
reset, and every login is logged with its network endpoint so the
geolocation analyses (Section 5.1) can run.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field

from repro.netsim.client import ClientEndpoint
from repro.platform.errors import AuthenticationError, UnknownAccountError
from repro.platform.models import AccountId


def _hash_password(password: str, salt: str) -> str:
    return hashlib.blake2b(f"{salt}:{password}".encode("utf-8"), digest_size=16).hexdigest()


@dataclass(frozen=True)
class Session:
    """An authenticated session token bound to one account."""

    session_id: int
    account_id: AccountId
    epoch: int  # password epoch at login time


@dataclass
class _Credential:
    password_hash: str
    salt: str
    epoch: int = 0
    login_endpoints: list[ClientEndpoint] = field(default_factory=list)
    login_ticks: list[int] = field(default_factory=list)


class AuthService:
    """Password store + session validation."""

    def __init__(self):
        self._credentials: dict[AccountId, _Credential] = {}
        self._session_ids = itertools.count(1)

    def register(self, account_id: AccountId, password: str) -> None:
        if account_id in self._credentials:
            raise ValueError(f"account {account_id} already has credentials")
        salt = f"salt-{account_id}"
        self._credentials[account_id] = _Credential(
            password_hash=_hash_password(password, salt), salt=salt
        )

    def login(
        self, account_id: AccountId, password: str, endpoint: ClientEndpoint, tick: int
    ) -> Session:
        """Authenticate and mint a session; logs the login origin."""
        credential = self._credentials.get(account_id)
        if credential is None:
            raise UnknownAccountError(f"no credentials for account {account_id}")
        if _hash_password(password, credential.salt) != credential.password_hash:
            raise AuthenticationError("bad password")
        credential.login_endpoints.append(endpoint)
        credential.login_ticks.append(tick)
        return Session(
            session_id=next(self._session_ids),
            account_id=account_id,
            epoch=credential.epoch,
        )

    def validate(self, session: Session) -> AccountId:
        """Return the session's account, or raise if it was revoked."""
        credential = self._credentials.get(session.account_id)
        if credential is None:
            raise UnknownAccountError(f"account {session.account_id} is gone")
        if session.epoch != credential.epoch:
            raise AuthenticationError("session revoked by password reset")
        return session.account_id

    def reset_password(self, account_id: AccountId, new_password: str) -> None:
        """Change the password, revoking every outstanding session."""
        credential = self._credentials.get(account_id)
        if credential is None:
            raise UnknownAccountError(f"no credentials for account {account_id}")
        credential.salt = f"salt-{account_id}-{credential.epoch + 1}"
        credential.password_hash = _hash_password(new_password, credential.salt)
        credential.epoch += 1

    def login_endpoints(self, account_id: AccountId) -> list[ClientEndpoint]:
        """Endpoint history of the account's logins (for geolocation)."""
        credential = self._credentials.get(account_id)
        if credential is None:
            raise UnknownAccountError(f"no credentials for account {account_id}")
        return list(credential.login_endpoints)

    def drop(self, account_id: AccountId) -> None:
        """Forget an account's credentials (account deletion)."""
        self._credentials.pop(account_id, None)
