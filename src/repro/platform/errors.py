"""Platform exception hierarchy.

API callers (organic drivers, honeypot tooling, AAS automation) catch
these to react — most importantly :class:`ActionBlockedError`, which is
the visible signal AAS block-detection logic keys on (Section 6.3).
"""

from __future__ import annotations


class PlatformError(Exception):
    """Base class for all platform-raised errors."""


class UnknownAccountError(PlatformError):
    """The referenced account does not exist (or was deleted)."""


class UnknownMediaError(PlatformError):
    """The referenced media item does not exist (or was removed)."""


class AuthenticationError(PlatformError):
    """Bad credentials, or a session invalidated by password reset."""


class RateLimitExceededError(PlatformError):
    """The public OAuth API's rate limit rejected the request."""


class ActionBlockedError(PlatformError):
    """A countermeasure synchronously blocked the action.

    The action did not take effect and the caller can observe that —
    this is the "oracle" property of transparent interventions.
    """


class InvalidActionError(PlatformError):
    """The action is structurally invalid (self-follow, double-like, ...)."""
