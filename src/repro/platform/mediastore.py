"""Media (photo/post) storage with like and comment bookkeeping."""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.platform.errors import InvalidActionError, UnknownMediaError
from repro.platform.models import AccountId, Media, MediaId


class MediaStore:
    """Owns all media objects plus their like/comment state."""

    def __init__(self, cache_owner_views: bool = False):
        self._media: dict[MediaId, Media] = {}
        self._by_owner: dict[AccountId, list[MediaId]] = defaultdict(list)
        self._likers: dict[MediaId, set[AccountId]] = defaultdict(set)
        self._comments: dict[MediaId, list[tuple[AccountId, str]]] = defaultdict(list)
        self._by_hashtag: dict[str, set[MediaId]] = defaultdict(set)
        self._next_id = 0
        #: fast-path-only memo of ``media_of`` results, invalidated on the
        #: two mutations that can change them (``create`` appends a live
        #: media; ``remove_account_media`` tombstones them). ``None`` when
        #: disabled: the naive oracle rebuilds the list every call.
        self._of_cache: dict[AccountId, list[Media]] | None = (
            {} if cache_owner_views else None
        )
        #: fast-path-only memo of ``accounts_posting`` results per lowered
        #: tag, invalidated by the same two mutations (``create`` for the
        #: new media's tags, ``remove_account_media`` for the tags of the
        #: owner's media). AAS hashtag targeting re-derives its audience
        #: every few simulated hours, and each derivation walks every
        #: media under every targeted tag — the dominant media-store cost
        #: at scale.
        self._posting_cache: dict[str, set[AccountId]] | None = (
            {} if cache_owner_views else None
        )
        #: fast-path-only memo pairing each of an owner's live media with
        #: its (live, mutated-in-place) likers set, validated by identity
        #: of the cached ``media_of`` list. Likes and unlikes mutate the
        #: referenced sets directly, so entries stay correct until the
        #: media list itself is rebuilt.
        self._pairs_cache: (
            dict[AccountId, tuple[object, list[tuple[Media, set[AccountId]]]]] | None
        ) = {} if cache_owner_views else None

    def create(self, owner: AccountId, tick: int, caption: str = "", hashtags: tuple[str, ...] = ()) -> Media:
        media = Media(
            media_id=self._next_id,
            owner=owner,
            created_at=tick,
            caption=caption,
            hashtags=hashtags,
        )
        self._next_id += 1
        self._media[media.media_id] = media
        self._by_owner[owner].append(media.media_id)
        if self._of_cache is not None:
            self._of_cache.pop(owner, None)
        posting = self._posting_cache
        for tag in hashtags:
            lowered = tag.lower()
            self._by_hashtag[lowered].add(media.media_id)
            if posting is not None:
                posting.pop(lowered, None)
        return media

    def get(self, media_id: MediaId) -> Media:
        media = self._media.get(media_id)
        if media is None or media.is_removed:
            raise UnknownMediaError(f"media {media_id} not found")
        return media

    def media_of(self, owner: AccountId) -> list[Media]:
        """Live media belonging to ``owner``, oldest first.

        When the owner-view cache is enabled (fast path), repeated calls
        return the **same** list object until the owner's media change —
        callers must treat the result as read-only, which every call site
        already does (they filter or index into it).
        """
        cache = self._of_cache
        if cache is None:
            return [
                self._media[mid]
                for mid in self._by_owner.get(owner, ())
                if not self._media[mid].is_removed
            ]
        media = cache.get(owner)
        if media is None:
            media = cache[owner] = [
                self._media[mid]
                for mid in self._by_owner.get(owner, ())
                if not self._media[mid].is_removed
            ]
        return media

    def like(self, media_id: MediaId, liker: AccountId) -> None:
        """Record a like; double-likes are invalid (Instagram semantics)."""
        media = self.get(media_id)
        if liker == media.owner:
            # Self-likes are allowed on Instagram, and some organic users
            # do like their own posts; nothing to forbid here.
            pass
        if liker in self._likers[media_id]:
            raise InvalidActionError(f"{liker} already likes media {media_id}")
        self._likers[media_id].add(liker)

    def like_new(self, media_id: MediaId, liker: AccountId) -> Media:
        """Fetch, validate, and record a like in one call.

        The batch pipeline's fused spelling of ``get`` + ``has_liked`` +
        ``like``: same lookups, same :class:`InvalidActionError` on a
        double-like, one method call instead of three (and no repeat
        ``get``). Returns the media so the caller can read the owner.
        """
        media = self.get(media_id)
        likers = self._likers[media_id]
        if liker in likers:
            raise InvalidActionError(f"{liker} already likes media {media_id}")
        likers.add(liker)
        return media

    def unliked_of(self, owner: AccountId, liker: AccountId) -> list[Media]:
        """Live media of ``owner`` that ``liker`` has not liked.

        Equivalent to filtering :meth:`media_of` through
        :meth:`has_liked` — the organic response/background loops' media
        pick — with the per-media method call replaced by a set probe
        (and, when owner views are cached, the per-media likers-dict
        lookup memoized in ``_pairs_cache``). Always builds a fresh
        list; safe to index into.
        """
        pairs_cache = self._pairs_cache
        if pairs_cache is None:
            likers = self._likers
            return [m for m in self.media_of(owner) if liker not in likers[m.media_id]]
        media = self.media_of(owner)
        entry = pairs_cache.get(owner)
        if entry is not None and entry[0] is media:
            pairs = entry[1]
        else:
            likers = self._likers
            pairs = [(m, likers[m.media_id]) for m in media]
            pairs_cache[owner] = (media, pairs)
        return [m for m, liked_by in pairs if liker not in liked_by]

    def unlike(self, media_id: MediaId, liker: AccountId) -> None:
        """Withdraw a like (used by delayed removal of like actions)."""
        self.get(media_id)
        if liker not in self._likers[media_id]:
            raise InvalidActionError(f"{liker} does not like media {media_id}")
        self._likers[media_id].remove(liker)

    def likes(self, media_id: MediaId) -> frozenset[AccountId]:
        self.get(media_id)
        return frozenset(self._likers[media_id])

    def like_count(self, media_id: MediaId) -> int:
        return len(self._likers[media_id])

    def has_liked(self, media_id: MediaId, liker: AccountId) -> bool:
        return liker in self._likers[media_id]

    def comment(self, media_id: MediaId, author: AccountId, text: str) -> None:
        self.get(media_id)
        self._comments[media_id].append((author, text))

    def comments(self, media_id: MediaId) -> list[tuple[AccountId, str]]:
        self.get(media_id)
        return list(self._comments[media_id])

    def media_with_hashtag(self, tag: str) -> list[Media]:
        """Live media tagged ``tag`` (hashtag search, case-insensitive)."""
        return [
            self._media[mid]
            for mid in self._by_hashtag.get(tag.lower(), ())
            if not self._media[mid].is_removed
        ]

    def accounts_posting(self, tag: str) -> set[AccountId]:
        """Accounts with live media under ``tag`` — how AAS hashtag
        targeting discovers accounts (paper Section 3.3.1).

        Cached per tag on the fast path; like ``media_of``, repeated
        calls then return the **same** set object until a mutation
        touches the tag, so callers must treat the result as read-only
        (the one call site unions it into its own set).
        """
        cache = self._posting_cache
        if cache is None:
            return {media.owner for media in self.media_with_hashtag(tag)}
        lowered = tag.lower()
        owners = cache.get(lowered)
        if owners is None:
            owners = cache[lowered] = {
                media.owner for media in self.media_with_hashtag(lowered)
            }
        return owners

    def remove_account_media(self, owner: AccountId) -> int:
        """Tombstone all media of a deleted account; returns count removed."""
        removed = 0
        posting = self._posting_cache
        for media_id in self._by_owner.get(owner, ()):
            media = self._media[media_id]
            if not media.is_removed:
                media.is_removed = True
                removed += 1
            if posting is not None:
                for tag in media.hashtags:
                    posting.pop(tag.lower(), None)
        if self._of_cache is not None:
            self._of_cache.pop(owner, None)
        return removed

    def drop_likes_by(self, account: AccountId) -> int:
        """Remove every like ``account`` has placed (account deletion)."""
        removed = 0
        for media_id, likers in self._likers.items():
            if account in likers:
                likers.remove(account)
                removed += 1
        return removed

    def engagement_rate(self, owner: AccountId, follower_count: int) -> Optional[float]:
        """The "engagement rate" metric AASs promote (Section 2).

        ER = (likes + comments across the account's media) / followers.
        Returns None for accounts with no followers (undefined metric).
        """
        if follower_count <= 0:
            return None
        media = self.media_of(owner)
        interactions = sum(self.like_count(m.media_id) + len(self._comments[m.media_id]) for m in media)
        return interactions / follower_count
