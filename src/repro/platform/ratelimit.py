"""Rate limiting.

The public OAuth API "is rate limited in a manner that precludes broad
abusive use" (Section 2). We model it with a sliding-window limiter per
(key, window). AASs avoid it by spoofing the private mobile API, whose
limits are far looser — which is exactly why the paper's countermeasures
had to be built on behavioural thresholds instead.

Storage is vectorized for the batch pipeline (DESIGN.md §15): instead of
one deque entry *per charged event* — which the old implementation
evicted one ``popleft`` at a time as the window slid — each key keeps
``(tick, count)`` buckets plus a running window total. Charging within
a tick is an integer bump on the newest bucket, eviction pops whole
buckets, and :meth:`allow_batch` charges n attempts in one call with
exactly the decision sequence n :meth:`allow` calls would produce
(denied attempts consume no quota, so once the window fills every
subsequent same-tick attempt is denied too).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Hashable, Tuple

from repro.obs import NULL_OBS, Observability


class SlidingWindowLimiter:
    """Allows at most ``limit`` events per ``window_ticks`` per key."""

    def __init__(
        self,
        limit: int,
        window_ticks: int,
        obs: Observability | None = None,
        name: str = "default",
    ):
        if limit <= 0:
            raise ValueError("limit must be positive")
        if window_ticks <= 0:
            raise ValueError("window must be positive")
        self.limit = limit
        self.window_ticks = window_ticks
        #: per-key ``(tick, count)`` buckets, oldest first
        self._buckets: dict[Hashable, Deque[Tuple[int, int]]] = {}
        #: per-key sum of live bucket counts — the charged window load
        self._totals: dict[Hashable, int] = {}
        _obs = obs if obs is not None else NULL_OBS
        self._obs_allowed = _obs.bound_counter(
            "platform.ratelimit.decisions", limiter=name, outcome="allowed"
        )
        self._obs_rejected = _obs.bound_counter(
            "platform.ratelimit.decisions", limiter=name, outcome="rejected"
        )

    def _window_total(self, key: Hashable, now: int) -> int:
        """Evict expired buckets for ``key``; returns the live total."""
        buckets = self._buckets.get(key)
        if buckets is None:
            self._buckets[key] = deque()
            self._totals[key] = 0
            return 0
        total = self._totals[key]
        cutoff = now - self.window_ticks
        while buckets and buckets[0][0] <= cutoff:
            total -= buckets.popleft()[1]
        self._totals[key] = total
        return total

    def _charge(self, key: Hashable, now: int, count: int) -> None:
        buckets = self._buckets[key]
        if buckets and buckets[-1][0] == now:
            buckets[-1] = (now, buckets[-1][1] + count)
        else:
            buckets.append((now, count))
        self._totals[key] += count

    def allow(self, key: Hashable, now: int) -> bool:
        """Record an attempt at tick ``now``; True if under the limit.

        Denied attempts are not recorded (they consume no quota).
        """
        if self._window_total(key, now) >= self.limit:
            self._obs_rejected.inc()
            return False
        self._charge(key, now, 1)
        self._obs_allowed.inc()
        return True

    def allow_batch(self, key: Hashable, now: int, count: int) -> int:
        """Charge ``count`` attempts at tick ``now`` in one call.

        Returns how many were granted: the first ``granted`` attempts
        succeed, the rest are denied — byte-identical bookkeeping to
        ``count`` scalar :meth:`allow` calls, including the decision
        counters, but with one eviction pass and one bucket write.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return 0
        total = self._window_total(key, now)
        granted = min(count, max(self.limit - total, 0))
        if granted:
            self._charge(key, now, granted)
            self._obs_allowed.add(granted)
        if count > granted:
            self._obs_rejected.add(count - granted)
        return granted

    def remaining(self, key: Hashable, now: int) -> int:
        """How many further events the key may emit at tick ``now``."""
        return self.limit - self._window_total(key, now)

    def reset(self, key: Hashable) -> None:
        self._buckets.pop(key, None)
        self._totals.pop(key, None)
