"""Rate limiting.

The public OAuth API "is rate limited in a manner that precludes broad
abusive use" (Section 2). We model it with a sliding-window limiter per
(key, window). AASs avoid it by spoofing the private mobile API, whose
limits are far looser — which is exactly why the paper's countermeasures
had to be built on behavioural thresholds instead.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Hashable

from repro.obs import NULL_OBS, Observability


class SlidingWindowLimiter:
    """Allows at most ``limit`` events per ``window_ticks`` per key."""

    def __init__(
        self,
        limit: int,
        window_ticks: int,
        obs: Observability | None = None,
        name: str = "default",
    ):
        if limit <= 0:
            raise ValueError("limit must be positive")
        if window_ticks <= 0:
            raise ValueError("window must be positive")
        self.limit = limit
        self.window_ticks = window_ticks
        self._events: dict[Hashable, Deque[int]] = defaultdict(deque)
        _obs = obs if obs is not None else NULL_OBS
        self._obs_allowed = _obs.counter(
            "platform.ratelimit.decisions", limiter=name, outcome="allowed"
        )
        self._obs_rejected = _obs.counter(
            "platform.ratelimit.decisions", limiter=name, outcome="rejected"
        )

    def _evict(self, key: Hashable, now: int) -> None:
        events = self._events[key]
        cutoff = now - self.window_ticks
        while events and events[0] <= cutoff:
            events.popleft()

    def allow(self, key: Hashable, now: int) -> bool:
        """Record an attempt at tick ``now``; True if under the limit.

        Denied attempts are not recorded (they consume no quota).
        """
        self._evict(key, now)
        events = self._events[key]
        if len(events) >= self.limit:
            self._obs_rejected.inc()
            return False
        events.append(now)
        self._obs_allowed.inc()
        return True

    def remaining(self, key: Hashable, now: int) -> int:
        """How many further events the key may emit at tick ``now``."""
        self._evict(key, now)
        return self.limit - len(self._events[key])

    def reset(self, key: Hashable) -> None:
        self._events.pop(key, None)
