"""Real-time notifications.

"When Instagram user A1 receives an (inbound) action from user B2, A1
will be notified in real-time about B2's action, and A1 may reciprocate"
(Section 3.1). The notification center is therefore the causal channel
through which reciprocity abuse works: AAS outbound actions produce
notifications, and the organic behaviour model consumes them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple, Optional

from repro.platform.models import AccountId, ActionType, MediaId


class Notification(NamedTuple):
    """One inbound-action notification delivered to a recipient.

    A ``NamedTuple`` rather than a frozen dataclass: notifications are
    constructed once per delivered action (the per-action hot path), and
    tuple construction skips the frozen-dataclass ``__init__`` +
    ``object.__setattr__`` overhead while keeping the same field access
    and value-equality semantics.
    """

    recipient: AccountId
    actor: AccountId
    action_type: ActionType
    tick: int
    media_id: Optional[MediaId] = None
    action_id: Optional[int] = None


class NotificationCenter:
    """Per-account notification inboxes with drain semantics.

    Consumers call :meth:`drain` to receive-and-clear pending items,
    mirroring a user checking their activity feed.
    """

    def __init__(self):
        self._inbox: dict[AccountId, list[Notification]] = defaultdict(list)
        self._delivered_total = 0

    def push(self, notification: Notification) -> None:
        self._inbox[notification.recipient].append(notification)
        self._delivered_total += 1

    def push_batch(self, notifications: list[Notification]) -> None:
        """Deliver many notifications in one call, in list order.

        Identical inbox state to pushing each item: per-recipient
        ordering and — load-bearing for determinism — *inbox key
        insertion order* are both preserved, because
        :meth:`recipients_with_pending` iteration order feeds the
        organic reciprocity loop's RNG draw sequence.
        """
        inbox = self._inbox
        for notification in notifications:
            inbox[notification.recipient].append(notification)
        self._delivered_total += len(notifications)

    def pending(self, recipient: AccountId) -> list[Notification]:
        """Peek at pending notifications without consuming them."""
        return list(self._inbox.get(recipient, ()))

    def drain(self, recipient: AccountId) -> list[Notification]:
        """Return and clear the recipient's pending notifications."""
        items = self._inbox.pop(recipient, [])
        return items

    def recipients_with_pending(self) -> list[AccountId]:
        """Accounts that currently have at least one pending notification."""
        return [account for account, items in self._inbox.items() if items]

    def clear_account(self, account: AccountId) -> None:
        """Drop an account's inbox (account deletion)."""
        self._inbox.pop(account, None)

    @property
    def delivered_total(self) -> int:
        """All-time count of delivered notifications."""
        return self._delivered_total
