"""The simulation clock.

Time is an integer tick count, one tick per simulated hour. The clock
supports scheduling callbacks at future ticks, which the countermeasure
engine uses to implement delayed removal and scenario drivers use for
trial-expiry and renewal events.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.util.timeutils import tick_to_day, tick_to_week


class SimClock:
    """An hour-granularity simulation clock with a callback schedule."""

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError("clock cannot start before tick 0")
        self._now = int(start)
        self._schedule: list[tuple[int, int, Callable[[int], None]]] = []
        self._counter = itertools.count()

    @property
    def now(self) -> int:
        """Current tick."""
        return self._now

    @property
    def day(self) -> int:
        """Zero-based day index of the current tick."""
        return tick_to_day(self._now)

    @property
    def week(self) -> int:
        """Zero-based week index of the current tick."""
        return tick_to_week(self._now)

    def call_at(self, tick: int, callback: Callable[[int], None]) -> None:
        """Schedule ``callback(tick)`` to fire when the clock reaches ``tick``.

        Scheduling in the past (or at the current tick) is rejected: the
        present tick's callbacks have already run.
        """
        if tick <= self._now:
            raise ValueError(f"cannot schedule at tick {tick}; clock is at {self._now}")
        heapq.heappush(self._schedule, (tick, next(self._counter), callback))

    def call_after(self, delay: int, callback: Callable[[int], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` ticks from now."""
        if delay <= 0:
            raise ValueError("delay must be positive")
        self.call_at(self._now + delay, callback)

    def advance(self, ticks: int = 1) -> None:
        """Move time forward, firing due callbacks in schedule order."""
        if ticks <= 0:
            raise ValueError("can only advance forward")
        target = self._now + ticks
        while self._schedule and self._schedule[0][0] <= target:
            fire_at, _, callback = heapq.heappop(self._schedule)
            self._now = fire_at
            callback(fire_at)
        self._now = target

    def pending_callbacks(self) -> int:
        """Number of callbacks still scheduled (for tests/diagnostics)."""
        return len(self._schedule)
