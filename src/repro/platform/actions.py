"""The append-only action log — the measurement event stream.

Every attempted social action is logged here (including blocked ones),
annotated with actor, target, tick, network endpoint, and API surface.
The detection, analysis, and intervention packages all consume this log;
it is the simulator's equivalent of the internal Instagram data the
paper's authors had access to.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator, Optional

from repro.platform.models import AccountId, ActionRecord, ActionStatus, ActionType


class ActionLog:
    """Append-only action store with actor/target/day indices."""

    def __init__(self):
        self._records: list[ActionRecord] = []
        self._by_actor: dict[AccountId, list[int]] = defaultdict(list)
        self._by_target: dict[AccountId, list[int]] = defaultdict(list)

    def append(self, record: ActionRecord) -> None:
        """Append one record; ids must be the log's next index."""
        if record.action_id != len(self._records):
            raise ValueError(
                f"action_id {record.action_id} out of order; expected {len(self._records)}"
            )
        self._records.append(record)
        self._by_actor[record.actor].append(record.action_id)
        if record.target_account is not None:
            self._by_target[record.target_account].append(record.action_id)

    def next_id(self) -> int:
        return len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ActionRecord]:
        return iter(self._records)

    def get(self, action_id: int) -> ActionRecord:
        return self._records[action_id]

    def by_actor(self, actor: AccountId) -> list[ActionRecord]:
        """All actions performed by ``actor`` (any status), in time order."""
        return [self._records[i] for i in self._by_actor.get(actor, ())]

    def by_target(self, target: AccountId) -> list[ActionRecord]:
        """All actions directed at ``target`` (any status), in time order."""
        return [self._records[i] for i in self._by_target.get(target, ())]

    def inbound(self, target: AccountId, *, delivered_only: bool = True) -> list[ActionRecord]:
        """Actions received by ``target``; by default only ones that landed."""
        records = self.by_target(target)
        if delivered_only:
            records = [r for r in records if r.status is not ActionStatus.BLOCKED]
        return records

    def outbound(self, actor: AccountId, *, delivered_only: bool = True) -> list[ActionRecord]:
        """Actions issued by ``actor``; by default only ones that landed."""
        records = self.by_actor(actor)
        if delivered_only:
            records = [r for r in records if r.status is not ActionStatus.BLOCKED]
        return records

    def select(
        self,
        *,
        action_type: Optional[ActionType] = None,
        status: Optional[ActionStatus] = None,
        start_tick: Optional[int] = None,
        end_tick: Optional[int] = None,
        predicate: Optional[Callable[[ActionRecord], bool]] = None,
    ) -> list[ActionRecord]:
        """Filter the full log. ``end_tick`` is exclusive."""
        out = []
        for record in self._records:
            if action_type is not None and record.action_type is not action_type:
                continue
            if status is not None and record.status is not status:
                continue
            if start_tick is not None and record.tick < start_tick:
                continue
            if end_tick is not None and record.tick >= end_tick:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def daily_count(
        self, actor: AccountId, day: int, action_type: Optional[ActionType] = None
    ) -> int:
        """Number of non-blocked actions by ``actor`` on zero-based ``day``."""
        count = 0
        for i in self._by_actor.get(actor, ()):
            record = self._records[i]
            if record.day != day or record.status is ActionStatus.BLOCKED:
                continue
            if action_type is not None and record.action_type is not action_type:
                continue
            count += 1
        return count

    def actors(self) -> Iterable[AccountId]:
        """Every account that has issued at least one action."""
        return self._by_actor.keys()
