"""The append-only action log — the measurement event stream.

Every attempted social action is logged here (including blocked ones),
annotated with actor, target, tick, network endpoint, and API surface.
The detection, analysis, and intervention packages all consume this log;
it is the simulator's equivalent of the internal Instagram data the
paper's authors had access to.

The log is *indexed* (DESIGN.md "Performance architecture"): appends
maintain a parallel tick array, per-actor/per-target tick arrays, and
per-(ASN, action type, client-variant) signature buckets, so every
``[start_tick, end_tick)`` window query is a binary search plus a slice
instead of a full-log scan. The platform appends in simulation order, so
ticks are non-decreasing and the bisect fast path applies; a log built
with out-of-order ticks (possible when tests append synthetic records)
degrades transparently to the brute-force filters.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from typing import Callable, Iterable, Iterator, Optional

from repro.netsim.client import ClientEndpoint
from repro.obs import NULL_OBS, Observability
from repro.platform.models import AccountId, ActionRecord, ActionStatus, ActionType

#: a signature-bucket key: (ASN, action type, client fingerprint variant)
SignatureKey = tuple[int, ActionType, str]


def _window(
    ticks: list[int], start_tick: Optional[int], end_tick: Optional[int]
) -> tuple[int, int]:
    """Offsets of ``[start_tick, end_tick)`` in a sorted tick array."""
    lo = 0 if start_tick is None else bisect_left(ticks, start_tick)
    hi = len(ticks) if end_tick is None else bisect_left(ticks, end_tick)
    return lo, max(hi, lo)


class ActionLog:
    """Append-only action store with tick/actor/target/signature indices."""

    def __init__(self, obs: Observability | None = None):
        _obs = obs if obs is not None else NULL_OBS
        self._obs_appends = _obs.counter("platform.actionlog.appends")
        #: window queries answered by the bisect indices vs. ones that fell
        #: back to a linear scan (out-of-order log) — the index hit rate
        self._obs_query_index = _obs.counter("platform.actionlog.window_query", path="index")
        self._obs_query_scan = _obs.counter("platform.actionlog.window_query", path="scan")
        self._records: list[ActionRecord] = []
        #: parallel array of record ticks (non-decreasing on the platform
        #: append path); window queries bisect it
        self._ticks: list[int] = []
        self._by_actor: dict[AccountId, list[int]] = defaultdict(list)
        self._by_actor_ticks: dict[AccountId, list[int]] = defaultdict(list)
        self._by_target: dict[AccountId, list[int]] = defaultdict(list)
        self._by_target_ticks: dict[AccountId, list[int]] = defaultdict(list)
        #: per-(ASN, action type, variant) buckets of record ids, with
        #: parallel tick arrays — the attribution sweep's access pattern
        self._by_signature: dict[SignatureKey, list[int]] = defaultdict(list)
        self._by_signature_ticks: dict[SignatureKey, list[int]] = defaultdict(list)
        #: canonical ClientEndpoint instances; AAS exits and per-user home
        #: endpoints repeat across millions of records, so sharing one
        #: object per distinct endpoint keeps the log's footprint flat
        self._interned_endpoints: dict[ClientEndpoint, ClientEndpoint] = {}
        self._observers: list[Callable[[ActionRecord], None]] = []
        self._monotonic = True

    def append(self, record: ActionRecord) -> None:
        """Append one record; ids must be the log's next index."""
        if record.action_id != len(self._records):
            raise ValueError(
                f"action_id {record.action_id} out of order; expected {len(self._records)}"
            )
        record.endpoint = self._interned_endpoints.setdefault(record.endpoint, record.endpoint)
        if self._ticks and record.tick < self._ticks[-1]:
            self._monotonic = False
        self._records.append(record)
        self._ticks.append(record.tick)
        self._by_actor[record.actor].append(record.action_id)
        self._by_actor_ticks[record.actor].append(record.tick)
        if record.target_account is not None:
            self._by_target[record.target_account].append(record.action_id)
            self._by_target_ticks[record.target_account].append(record.tick)
        key = (record.endpoint.asn, record.action_type, record.endpoint.fingerprint.variant)
        self._by_signature[key].append(record.action_id)
        self._by_signature_ticks[key].append(record.tick)
        self._obs_appends.inc()
        for observer in self._observers:
            observer(record)

    def next_id(self) -> int:
        return len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ActionRecord]:
        return iter(self._records)

    def get(self, action_id: int) -> ActionRecord:
        return self._records[action_id]

    # ------------------------------------------------------------------
    # Observers (streaming consumers, e.g. incremental attribution)
    # ------------------------------------------------------------------

    def add_observer(self, observer: Callable[[ActionRecord], None]) -> None:
        """Call ``observer(record)`` after every future append.

        Observers see records already indexed; they must not append to
        the log themselves.
        """
        if observer not in self._observers:
            self._observers.append(observer)

    def remove_observer(self, observer: Callable[[ActionRecord], None]) -> None:
        if observer in self._observers:
            self._observers.remove(observer)

    # ------------------------------------------------------------------
    # Window queries (bisect fast path)
    # ------------------------------------------------------------------

    @property
    def ticks_monotonic(self) -> bool:
        """Whether appends arrived in tick order (enables bisect paths)."""
        return self._monotonic

    def offsets_between(
        self, start_tick: Optional[int] = None, end_tick: Optional[int] = None
    ) -> tuple[int, int]:
        """``(lo, hi)`` record-id offsets covering ``[start_tick, end_tick)``.

        Only meaningful while :attr:`ticks_monotonic` holds; raises
        otherwise so callers cannot silently read a wrong slice.
        """
        if not self._monotonic:
            raise ValueError("tick offsets undefined: log was appended out of tick order")
        self._obs_query_index.inc()
        return _window(self._ticks, start_tick, end_tick)

    def records_between(
        self, start_tick: Optional[int] = None, end_tick: Optional[int] = None
    ) -> list[ActionRecord]:
        """All records in ``[start_tick, end_tick)``, in log order."""
        if self._monotonic:
            self._obs_query_index.inc()
            lo, hi = _window(self._ticks, start_tick, end_tick)
            return self._records[lo:hi]
        return self.select(start_tick=start_tick, end_tick=end_tick)

    def _indexed_between(
        self,
        ids: dict[AccountId, list[int]],
        ticks: dict[AccountId, list[int]],
        key: AccountId,
        start_tick: Optional[int],
        end_tick: Optional[int],
    ) -> list[ActionRecord]:
        (self._obs_query_index if self._monotonic else self._obs_query_scan).inc()
        indices = ids.get(key)
        if not indices:
            return []
        if self._monotonic:
            lo, hi = _window(ticks[key], start_tick, end_tick)
            return [self._records[i] for i in indices[lo:hi]]
        out = []
        for i in indices:
            record = self._records[i]
            if start_tick is not None and record.tick < start_tick:
                continue
            if end_tick is not None and record.tick >= end_tick:
                continue
            out.append(record)
        return out

    def by_actor(self, actor: AccountId) -> list[ActionRecord]:
        """All actions performed by ``actor`` (any status), in time order."""
        return [self._records[i] for i in self._by_actor.get(actor, ())]

    def by_actor_between(
        self,
        actor: AccountId,
        start_tick: Optional[int] = None,
        end_tick: Optional[int] = None,
    ) -> list[ActionRecord]:
        """``actor``'s actions within ``[start_tick, end_tick)``."""
        return self._indexed_between(
            self._by_actor, self._by_actor_ticks, actor, start_tick, end_tick
        )

    def by_target(self, target: AccountId) -> list[ActionRecord]:
        """All actions directed at ``target`` (any status), in time order."""
        return [self._records[i] for i in self._by_target.get(target, ())]

    def by_target_between(
        self,
        target: AccountId,
        start_tick: Optional[int] = None,
        end_tick: Optional[int] = None,
    ) -> list[ActionRecord]:
        """Actions directed at ``target`` within ``[start_tick, end_tick)``."""
        return self._indexed_between(
            self._by_target, self._by_target_ticks, target, start_tick, end_tick
        )

    def signature_keys(self) -> list[SignatureKey]:
        """Every (ASN, action type, variant) bucket present, sorted."""
        return sorted(self._by_signature, key=lambda k: (k[0], k[1].value, k[2]))

    def ids_by_signature(
        self,
        asn: int,
        variant: str,
        action_type: Optional[ActionType] = None,
        start_tick: Optional[int] = None,
        end_tick: Optional[int] = None,
    ) -> list[int]:
        """Record ids in the (asn, action_type, variant) bucket(s), sorted.

        With ``action_type=None`` the per-type buckets are merged back
        into log order.
        """
        (self._obs_query_index if self._monotonic else self._obs_query_scan).inc()
        if action_type is not None:
            keys = [(asn, action_type, variant)]
        else:
            keys = [(asn, t, variant) for t in ActionType]
        selected: list[list[int]] = []
        for key in keys:
            indices = self._by_signature.get(key)
            if not indices:
                continue
            if self._monotonic:
                lo, hi = _window(self._by_signature_ticks[key], start_tick, end_tick)
                selected.append(indices[lo:hi])
            else:
                selected.append(
                    [
                        i
                        for i in indices
                        if (start_tick is None or self._records[i].tick >= start_tick)
                        and (end_tick is None or self._records[i].tick < end_tick)
                    ]
                )
        if not selected:
            return []
        if len(selected) == 1:
            return list(selected[0])
        merged: list[int] = []
        for ids in selected:
            merged.extend(ids)
        merged.sort()
        return merged

    def by_signature(
        self,
        asn: int,
        variant: str,
        action_type: Optional[ActionType] = None,
        start_tick: Optional[int] = None,
        end_tick: Optional[int] = None,
    ) -> list[ActionRecord]:
        """Records matching an (ASN, variant[, action type]) signature."""
        return [
            self._records[i]
            for i in self.ids_by_signature(asn, variant, action_type, start_tick, end_tick)
        ]

    def inbound(self, target: AccountId, *, delivered_only: bool = True) -> list[ActionRecord]:
        """Actions received by ``target``; by default only ones that landed."""
        records = self.by_target(target)
        if delivered_only:
            records = [r for r in records if r.status is not ActionStatus.BLOCKED]
        return records

    def outbound(self, actor: AccountId, *, delivered_only: bool = True) -> list[ActionRecord]:
        """Actions issued by ``actor``; by default only ones that landed."""
        records = self.by_actor(actor)
        if delivered_only:
            records = [r for r in records if r.status is not ActionStatus.BLOCKED]
        return records

    def select(
        self,
        *,
        action_type: Optional[ActionType] = None,
        status: Optional[ActionStatus] = None,
        start_tick: Optional[int] = None,
        end_tick: Optional[int] = None,
        predicate: Optional[Callable[[ActionRecord], bool]] = None,
    ) -> list[ActionRecord]:
        """Filter the full log. ``end_tick`` is exclusive."""
        records: Iterable[ActionRecord] = self._records
        if self._monotonic and (start_tick is not None or end_tick is not None):
            self._obs_query_index.inc()
            lo, hi = _window(self._ticks, start_tick, end_tick)
            records = self._records[lo:hi]
            start_tick = end_tick = None
        elif start_tick is not None or end_tick is not None:
            self._obs_query_scan.inc()
        out = []
        for record in records:
            if action_type is not None and record.action_type is not action_type:
                continue
            if status is not None and record.status is not status:
                continue
            if start_tick is not None and record.tick < start_tick:
                continue
            if end_tick is not None and record.tick >= end_tick:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def daily_count(
        self, actor: AccountId, day: int, action_type: Optional[ActionType] = None
    ) -> int:
        """Number of non-blocked actions by ``actor`` on zero-based ``day``."""
        count = 0
        for record in self.by_actor_between(actor, day * 24, (day + 1) * 24):
            if record.status is ActionStatus.BLOCKED:
                continue
            if action_type is not None and record.action_type is not action_type:
                continue
            count += 1
        return count

    def actors(self) -> Iterable[AccountId]:
        """Every account that has issued at least one action."""
        return self._by_actor.keys()
