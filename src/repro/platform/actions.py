"""The append-only action log — the measurement event stream.

Every attempted social action is logged here (including blocked ones),
annotated with actor, target, tick, network endpoint, and API surface.
The detection, analysis, and intervention packages all consume this log;
it is the simulator's equivalent of the internal Instagram data the
paper's authors had access to.

The log is *indexed* (DESIGN.md "Performance architecture"): appends
maintain a parallel tick array, per-actor/per-target tick arrays, and
per-(ASN, action type, client-variant) signature buckets, so every
``[start_tick, end_tick)`` window query is a binary search plus a slice
instead of a full-log scan. The platform appends in simulation order, so
ticks are non-decreasing and the bisect fast path applies; a log built
with out-of-order ticks (possible when tests append synthetic records)
degrades transparently to the brute-force filters.

The log has two storage modes behind one API (DESIGN.md §11 "Columnar
world core"):

* **reference** (default) — a ``list[ActionRecord]`` plus list-backed
  indices, the bit-equivalence oracle.
* **columnar** (``columnar=True``, selected by the platform's fast
  path) — rows live in :class:`~repro.platform.columns.ActionColumns`
  (parallel stdlib ``array`` vectors + interned endpoint table), indices
  are ``array('q')`` vectors, signature buckets key on interned ids
  resolved through an ``(endpoint id, type code)`` fast map instead of
  hashing a tuple per append, and query results materialize transient
  :class:`~repro.platform.columns.ActionView` flyweights.

Query results are bit-identical across modes (property-tested in
``tests/test_platform_columnar_log.py``): same ids, same field values,
same ordering, including the out-of-order-append fallback paths.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import defaultdict
from typing import Callable, Iterable, Iterator, Optional, Union

from repro.netsim.client import ClientEndpoint
from repro.obs import NULL_OBS, Observability
from repro.platform.columns import (
    N_ACTION_TYPES,
    ActionColumns,
    ActionView,
)
from repro.platform.models import (
    AccountId,
    ActionRecord,
    ActionStatus,
    ActionType,
    ApiSurface,
    MediaId,
)

#: a signature-bucket key: (ASN, action type, client fingerprint variant)
SignatureKey = tuple[int, ActionType, str]

#: what the log hands back: real records in reference mode, column-backed
#: flyweights in columnar mode — field-compatible by construction
StoredAction = Union[ActionRecord, ActionView]

#: one pending batch row — the positional argument list of
#: :meth:`ActionLog.log_action` as a tuple
BatchRow = tuple

#: decode table for reading type codes back out of the columns
_TYPE_BY_CODE: tuple[ActionType, ...] = tuple(ActionType)


def _window(
    ticks, start_tick: Optional[int], end_tick: Optional[int]
) -> tuple[int, int]:
    """Offsets of ``[start_tick, end_tick)`` in a sorted tick array."""
    lo = 0 if start_tick is None else bisect_left(ticks, start_tick)
    hi = len(ticks) if end_tick is None else bisect_left(ticks, end_tick)
    return lo, max(hi, lo)


class ActionLog:
    """Append-only action store with tick/actor/target/signature indices."""

    def __init__(self, obs: Observability | None = None, columnar: bool = False):
        _obs = obs if obs is not None else NULL_OBS
        self._obs_appends = _obs.counter("platform.actionlog.appends")
        #: window queries answered by the bisect indices vs. ones that fell
        #: back to a linear scan (out-of-order log) — the index hit rate
        self._obs_query_index = _obs.counter("platform.actionlog.window_query", path="index")
        self._obs_query_scan = _obs.counter("platform.actionlog.window_query", path="scan")
        #: rows routed through :meth:`append_batch` — the "log_batch"
        #: cost kind (DESIGN.md §15). A pre-bound handle: the flush loop
        #: charges it once per batch with ``add(n)``.
        self._obs_batch_rows = _obs.bound_counter("platform.actionlog.batch_rows")
        #: rows per flush; the mean is the batch amortization ratio the
        #: bench payloads report (histograms are never cost-classified,
        #: so per-flush telemetry cannot leak into the cost tree)
        self._obs_batch_fill = _obs.histogram("platform.actionlog.batch_fill")
        self._observers: list[Callable[[StoredAction], None]] = []
        #: scalar observer -> its bulk implementation, when it has one
        self._batch_impls: dict[Callable[[StoredAction], None], Callable] = {}
        self._monotonic = True
        self._columnar = columnar
        if columnar:
            self._cols: ActionColumns | None = ActionColumns(obs=_obs)
            self._records: list[ActionRecord] | None = None
            #: the bisect index IS the tick column — zero duplication
            self._ticks = self._cols.ticks
            self._by_actor: dict[AccountId, array] = {}
            self._by_actor_ticks: dict[AccountId, array] = {}
            self._by_target: dict[AccountId, array] = {}
            self._by_target_ticks: dict[AccountId, array] = {}
            #: signature buckets keyed on dense signature ids; the value
            #: key table resolves the public (ASN, type, variant) queries
            self._by_signature: dict[int, array] = {}
            self._by_signature_ticks: dict[int, array] = {}
            self._sig_keys: list[SignatureKey] = []
            self._sig_ids: dict[SignatureKey, int] = {}
            #: (endpoint id, type code) -> that signature's (ids, ticks)
            #: bucket arrays; saves building and hashing a (int, enum,
            #: str) tuple plus two bucket-dict probes on every append
            self._sig_fast: dict[int, tuple[array, array]] = {}
            self._interned_endpoints: dict[ClientEndpoint, ClientEndpoint] | None = None
        else:
            self._cols = None
            self._records = []
            #: parallel array of record ticks (non-decreasing on the platform
            #: append path); window queries bisect it
            self._ticks = []
            self._by_actor = defaultdict(list)
            self._by_actor_ticks = defaultdict(list)
            self._by_target = defaultdict(list)
            self._by_target_ticks = defaultdict(list)
            #: per-(ASN, action type, variant) buckets of record ids, with
            #: parallel tick arrays — the attribution sweep's access pattern
            self._by_signature = defaultdict(list)
            self._by_signature_ticks = defaultdict(list)
            #: canonical ClientEndpoint instances; AAS exits and per-user home
            #: endpoints repeat across millions of records, so sharing one
            #: object per distinct endpoint keeps the log's footprint flat
            self._interned_endpoints = {}

    @property
    def columnar(self) -> bool:
        """Whether rows live in SoA columns (fast path) or record objects."""
        return self._columnar

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------

    def log_action(
        self,
        action_type: ActionType,
        actor: AccountId,
        tick: int,
        endpoint: ClientEndpoint,
        api: ApiSurface,
        status: ActionStatus,
        target_account: Optional[AccountId] = None,
        target_media: Optional[MediaId] = None,
        comment_text: Optional[str] = None,
    ) -> StoredAction:
        """Append one action from scalar fields; returns the stored row.

        The platform's append path: in columnar mode the fields go
        straight into the columns (no record object is ever built); in
        reference mode this constructs and appends an
        :class:`ActionRecord` exactly as the facade used to.
        """
        if self._columnar:
            return self._push(
                action_type, actor, tick, endpoint, api, status,
                target_account, target_media, comment_text, None,
            )
        record = ActionRecord(
            action_id=len(self._records),
            action_type=action_type,
            actor=actor,
            tick=tick,
            endpoint=endpoint,
            api=api,
            status=status,
            target_account=target_account,
            target_media=target_media,
            comment_text=comment_text,
        )
        self.append(record)
        return record

    def append(self, record: ActionRecord) -> None:
        """Append one pre-built record; ids must be the log's next index."""
        if record.action_id != len(self):
            raise ValueError(
                f"action_id {record.action_id} out of order; expected {len(self)}"
            )
        if self._columnar:
            view = self._push(
                record.action_type, record.actor, record.tick, record.endpoint,
                record.api, record.status, record.target_account,
                record.target_media, record.comment_text, record.removed_at,
            )
            assert view.action_id == record.action_id
            return
        record.endpoint = self._interned_endpoints.setdefault(record.endpoint, record.endpoint)
        if self._ticks and record.tick < self._ticks[-1]:
            self._monotonic = False
        self._records.append(record)
        self._ticks.append(record.tick)
        self._by_actor[record.actor].append(record.action_id)
        self._by_actor_ticks[record.actor].append(record.tick)
        if record.target_account is not None:
            self._by_target[record.target_account].append(record.action_id)
            self._by_target_ticks[record.target_account].append(record.tick)
        key = (record.endpoint.asn, record.action_type, record.endpoint.fingerprint.variant)
        self._by_signature[key].append(record.action_id)
        self._by_signature_ticks[key].append(record.tick)
        self._obs_appends.inc()
        for observer in self._observers:
            observer(record)

    def append_batch(self, rows: list) -> int:
        """Append many actions in one call; returns the first action id.

        ``rows`` holds :meth:`log_action` argument tuples
        ``(action_type, actor, tick, endpoint, api, status,
        target_account, target_media, comment_text)``. Semantically this
        is exactly ``for row in rows: log_action(*row)`` — same records,
        same indices, same observer ingestion order, same "log" cost
        units — and in reference mode it *is* that loop (the oracle the
        batch property suite replays against). Columnar mode takes the
        amortized path: one :meth:`ActionColumns.push_batch`, index
        updates with locals hoisted out of the loop, counters charged
        once per batch, and observers offered the whole row range
        (batch-capable observers consume it in bulk; plain observers
        still see one view per row).
        """
        if not rows:
            return len(self)
        if not self._columnar:
            start = len(self._records)
            for row in rows:
                self.log_action(*row)
            return start
        cols = self._cols
        ticks = cols.ticks
        prev_tick = ticks[-1] if ticks else None
        start = cols.push_batch(rows)
        by_actor = self._by_actor
        by_actor_ticks = self._by_actor_ticks
        by_target = self._by_target
        by_target_ticks = self._by_target_ticks
        sig_fast = self._sig_fast
        endpoint_ids = cols.endpoint_ids
        monotonic = self._monotonic
        # One pass over the original row tuples — cheaper than re-reading
        # the freshly pushed columns — folding the monotonic check into
        # the index walk. Run-length memos keyed by *object identity*
        # (the interner guarantees one id per endpoint object, and enum
        # members are singletons) skip the per-row dict probes when
        # consecutive rows share an actor or an (endpoint, type) pair —
        # the common shape for AAS delivery bursts.
        last_actor = last_target = last_endpoint = last_type = None
        a_ids = a_ticks = t_ids = t_ticks = bucket = None
        i = start
        for row in rows:
            action_type = row[0]
            actor = row[1]
            tick = row[2]
            if monotonic and prev_tick is not None and tick < prev_tick:
                monotonic = False
            prev_tick = tick
            if actor != last_actor:
                last_actor = actor
                a_ids = by_actor.get(actor)
                if a_ids is None:
                    a_ids = by_actor[actor] = array("q")
                    by_actor_ticks[actor] = array("q")
                a_ticks = by_actor_ticks[actor]
            a_ids.append(i)
            a_ticks.append(tick)
            target = row[6]
            if target is not None:
                if target != last_target:
                    last_target = target
                    t_ids = by_target.get(target)
                    if t_ids is None:
                        t_ids = by_target[target] = array("q")
                        by_target_ticks[target] = array("q")
                    t_ticks = by_target_ticks[target]
                t_ids.append(i)
                t_ticks.append(tick)
            endpoint = row[3]
            if endpoint is not last_endpoint or action_type is not last_type:
                last_endpoint = endpoint
                last_type = action_type
                fast_key = endpoint_ids[i] * N_ACTION_TYPES + action_type.col_code
                bucket = sig_fast.get(fast_key)
                if bucket is None:
                    key = (endpoint.asn, action_type, endpoint.fingerprint.variant)
                    sig = self._sig_ids.get(key)
                    if sig is None:
                        sig = len(self._sig_keys)
                        self._sig_ids[key] = sig
                        self._sig_keys.append(key)
                        self._by_signature[sig] = array("q")
                        self._by_signature_ticks[sig] = array("q")
                    bucket = sig_fast[fast_key] = (
                        self._by_signature[sig],
                        self._by_signature_ticks[sig],
                    )
            bucket[0].append(i)
            bucket[1].append(tick)
            i += 1
        self._monotonic = monotonic
        end = i
        count = end - start
        self._obs_appends.add(count)
        self._obs_batch_rows.add(count)
        self._obs_batch_fill.observe(count)
        if self._observers:
            batch_impls = self._batch_impls
            for observer in self._observers:
                bulk = batch_impls.get(observer)
                if bulk is not None:
                    bulk(cols, start, end)
                else:
                    for i in range(start, end):
                        observer(ActionView(cols, i))
        return start

    def _push(
        self,
        action_type: ActionType,
        actor: AccountId,
        tick: int,
        endpoint: ClientEndpoint,
        api: ApiSurface,
        status: ActionStatus,
        target_account: Optional[AccountId],
        target_media: Optional[MediaId],
        comment_text: Optional[str],
        removed_at: Optional[int],
    ) -> ActionView:
        """The columnar append: column pushes + int-keyed index updates."""
        cols = self._cols
        ticks = cols.ticks
        if self._monotonic and ticks and tick < ticks[-1]:
            self._monotonic = False
        action_id, endpoint_id = cols.push(
            action_type, actor, tick, endpoint, api, status,
            target_account, target_media, comment_text,
        )
        if removed_at is not None:
            cols.removed_ats[action_id] = removed_at
        ids = self._by_actor.get(actor)
        if ids is None:
            ids = self._by_actor[actor] = array("q")
            self._by_actor_ticks[actor] = array("q")
        ids.append(action_id)
        self._by_actor_ticks[actor].append(tick)
        if target_account is not None:
            ids = self._by_target.get(target_account)
            if ids is None:
                ids = self._by_target[target_account] = array("q")
                self._by_target_ticks[target_account] = array("q")
            ids.append(action_id)
            self._by_target_ticks[target_account].append(tick)
        fast_key = endpoint_id * N_ACTION_TYPES + action_type.col_code
        bucket = self._sig_fast.get(fast_key)
        if bucket is None:
            key = (endpoint.asn, action_type, endpoint.fingerprint.variant)
            sig = self._sig_ids.get(key)
            if sig is None:
                sig = len(self._sig_keys)
                self._sig_ids[key] = sig
                self._sig_keys.append(key)
                self._by_signature[sig] = array("q")
                self._by_signature_ticks[sig] = array("q")
            bucket = self._sig_fast[fast_key] = (
                self._by_signature[sig],
                self._by_signature_ticks[sig],
            )
        bucket[0].append(action_id)
        bucket[1].append(tick)
        self._obs_appends.inc()
        view = ActionView(cols, action_id)
        for observer in self._observers:
            observer(view)
        return view

    def next_id(self) -> int:
        return len(self)

    def __len__(self) -> int:
        return len(self._cols) if self._columnar else len(self._records)

    def __iter__(self) -> Iterator[StoredAction]:
        if self._columnar:
            cols = self._cols
            return (ActionView(cols, i) for i in range(len(cols)))
        return iter(self._records)

    def get(self, action_id: int) -> StoredAction:
        if self._columnar:
            if not 0 <= action_id < len(self._cols):
                raise IndexError(f"action_id {action_id} out of range")
            return ActionView(self._cols, action_id)
        return self._records[action_id]

    def _tick_of(self, action_id: int) -> int:
        return self._ticks[action_id]

    # ------------------------------------------------------------------
    # Observers (streaming consumers, e.g. incremental attribution)
    # ------------------------------------------------------------------

    def add_observer(
        self,
        observer: Callable[[StoredAction], None],
        batch: Optional[Callable[[ActionColumns, int, int], None]] = None,
    ) -> None:
        """Call ``observer(record)`` after every future append.

        Observers see records already indexed; they must not append to
        the log themselves. ``batch`` optionally registers a bulk
        implementation ``batch(cols, start, end)`` used in place of the
        per-row callable whenever rows arrive via :meth:`append_batch` —
        it must ingest rows ``[start, end)`` exactly as ``end - start``
        scalar calls would (the streaming classifier's contract).
        """
        if observer not in self._observers:
            self._observers.append(observer)
        if batch is not None:
            self._batch_impls[observer] = batch

    def remove_observer(self, observer: Callable[[StoredAction], None]) -> None:
        if observer in self._observers:
            self._observers.remove(observer)
        self._batch_impls.pop(observer, None)

    # ------------------------------------------------------------------
    # Window queries (bisect fast path)
    # ------------------------------------------------------------------

    @property
    def ticks_monotonic(self) -> bool:
        """Whether appends arrived in tick order (enables bisect paths)."""
        return self._monotonic

    def offsets_between(
        self, start_tick: Optional[int] = None, end_tick: Optional[int] = None
    ) -> tuple[int, int]:
        """``(lo, hi)`` record-id offsets covering ``[start_tick, end_tick)``.

        Only meaningful while :attr:`ticks_monotonic` holds; raises
        otherwise so callers cannot silently read a wrong slice.
        """
        if not self._monotonic:
            raise ValueError("tick offsets undefined: log was appended out of tick order")
        self._obs_query_index.inc()
        return _window(self._ticks, start_tick, end_tick)

    def records_between(
        self, start_tick: Optional[int] = None, end_tick: Optional[int] = None
    ) -> list[StoredAction]:
        """All records in ``[start_tick, end_tick)``, in log order."""
        if self._monotonic:
            self._obs_query_index.inc()
            lo, hi = _window(self._ticks, start_tick, end_tick)
            if self._columnar:
                cols = self._cols
                return [ActionView(cols, i) for i in range(lo, hi)]
            return self._records[lo:hi]
        return self.select(start_tick=start_tick, end_tick=end_tick)

    def _indexed_between(
        self,
        ids: dict,
        ticks: dict,
        key: AccountId,
        start_tick: Optional[int],
        end_tick: Optional[int],
    ) -> list[StoredAction]:
        (self._obs_query_index if self._monotonic else self._obs_query_scan).inc()
        indices = ids.get(key)
        if not indices:
            return []
        if self._monotonic:
            lo, hi = _window(ticks[key], start_tick, end_tick)
            indices = indices[lo:hi]
            if self._columnar:
                cols = self._cols
                return [ActionView(cols, i) for i in indices]
            return [self._records[i] for i in indices]
        out = []
        for i in indices:
            tick = self._tick_of(i)
            if start_tick is not None and tick < start_tick:
                continue
            if end_tick is not None and tick >= end_tick:
                continue
            out.append(self.get(i))
        return out

    def by_actor(self, actor: AccountId) -> list[StoredAction]:
        """All actions performed by ``actor`` (any status), in time order."""
        return [self.get(i) for i in self._by_actor.get(actor, ())]

    def by_actor_between(
        self,
        actor: AccountId,
        start_tick: Optional[int] = None,
        end_tick: Optional[int] = None,
    ) -> list[StoredAction]:
        """``actor``'s actions within ``[start_tick, end_tick)``."""
        return self._indexed_between(
            self._by_actor, self._by_actor_ticks, actor, start_tick, end_tick
        )

    def by_target(self, target: AccountId) -> list[StoredAction]:
        """All actions directed at ``target`` (any status), in time order."""
        return [self.get(i) for i in self._by_target.get(target, ())]

    def by_target_between(
        self,
        target: AccountId,
        start_tick: Optional[int] = None,
        end_tick: Optional[int] = None,
    ) -> list[StoredAction]:
        """Actions directed at ``target`` within ``[start_tick, end_tick)``."""
        return self._indexed_between(
            self._by_target, self._by_target_ticks, target, start_tick, end_tick
        )

    def signature_keys(self) -> list[SignatureKey]:
        """Every (ASN, action type, variant) bucket present, sorted."""
        keys: Iterable[SignatureKey] = (
            self._sig_keys if self._columnar else self._by_signature
        )
        return sorted(keys, key=lambda k: (k[0], k[1].value, k[2]))

    def _signature_bucket(self, key: SignatureKey):
        """The (ids, ticks) bucket arrays for a signature key, if present."""
        if self._columnar:
            sig = self._sig_ids.get(key)
            if sig is None:
                return None, None
            return self._by_signature[sig], self._by_signature_ticks[sig]
        indices = self._by_signature.get(key)
        if not indices:
            return None, None
        return indices, self._by_signature_ticks[key]

    def ids_by_signature(
        self,
        asn: int,
        variant: str,
        action_type: Optional[ActionType] = None,
        start_tick: Optional[int] = None,
        end_tick: Optional[int] = None,
    ) -> list[int]:
        """Record ids in the (asn, action_type, variant) bucket(s), sorted.

        With ``action_type=None`` the per-type buckets are merged back
        into log order.
        """
        (self._obs_query_index if self._monotonic else self._obs_query_scan).inc()
        if action_type is not None:
            keys = [(asn, action_type, variant)]
        else:
            keys = [(asn, t, variant) for t in ActionType]
        selected: list = []
        for key in keys:
            indices, ticks = self._signature_bucket(key)
            if not indices:
                continue
            if self._monotonic:
                lo, hi = _window(ticks, start_tick, end_tick)
                selected.append(indices[lo:hi])
            else:
                selected.append(
                    [
                        i
                        for i in indices
                        if (start_tick is None or self._tick_of(i) >= start_tick)
                        and (end_tick is None or self._tick_of(i) < end_tick)
                    ]
                )
        if not selected:
            return []
        if len(selected) == 1:
            return list(selected[0])
        merged: list[int] = []
        for ids in selected:
            merged.extend(ids)
        merged.sort()
        return merged

    def by_signature(
        self,
        asn: int,
        variant: str,
        action_type: Optional[ActionType] = None,
        start_tick: Optional[int] = None,
        end_tick: Optional[int] = None,
    ) -> list[StoredAction]:
        """Records matching an (ASN, variant[, action type]) signature."""
        return [
            self.get(i)
            for i in self.ids_by_signature(asn, variant, action_type, start_tick, end_tick)
        ]

    def inbound(self, target: AccountId, *, delivered_only: bool = True) -> list[StoredAction]:
        """Actions received by ``target``; by default only ones that landed."""
        records = self.by_target(target)
        if delivered_only:
            records = [r for r in records if r.status is not ActionStatus.BLOCKED]
        return records

    def outbound(self, actor: AccountId, *, delivered_only: bool = True) -> list[StoredAction]:
        """Actions issued by ``actor``; by default only ones that landed."""
        records = self.by_actor(actor)
        if delivered_only:
            records = [r for r in records if r.status is not ActionStatus.BLOCKED]
        return records

    def select(
        self,
        *,
        action_type: Optional[ActionType] = None,
        status: Optional[ActionStatus] = None,
        start_tick: Optional[int] = None,
        end_tick: Optional[int] = None,
        predicate: Optional[Callable[[StoredAction], bool]] = None,
    ) -> list[StoredAction]:
        """Filter the full log. ``end_tick`` is exclusive."""
        records: Iterable[StoredAction] = self
        if self._monotonic and (start_tick is not None or end_tick is not None):
            self._obs_query_index.inc()
            lo, hi = _window(self._ticks, start_tick, end_tick)
            if self._columnar:
                cols = self._cols
                records = [ActionView(cols, i) for i in range(lo, hi)]
            else:
                records = self._records[lo:hi]
            start_tick = end_tick = None
        elif start_tick is not None or end_tick is not None:
            self._obs_query_scan.inc()
        out = []
        for record in records:
            if action_type is not None and record.action_type is not action_type:
                continue
            if status is not None and record.status is not status:
                continue
            if start_tick is not None and record.tick < start_tick:
                continue
            if end_tick is not None and record.tick >= end_tick:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def daily_count(
        self, actor: AccountId, day: int, action_type: Optional[ActionType] = None
    ) -> int:
        """Number of non-blocked actions by ``actor`` on zero-based ``day``."""
        count = 0
        for record in self.by_actor_between(actor, day * 24, (day + 1) * 24):
            if record.status is ActionStatus.BLOCKED:
                continue
            if action_type is not None and record.action_type is not action_type:
                continue
            count += 1
        return count

    def actors(self) -> Iterable[AccountId]:
        """Every account that has issued at least one action."""
        return self._by_actor.keys()
