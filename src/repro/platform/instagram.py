"""The platform facade: everything callers touch goes through here.

:class:`InstagramPlatform` wires together the clock, auth, follower
graph, media store, action log, notification center, and countermeasure
engine. The API surfaces in :mod:`repro.platform.api` are thin wrappers
over this facade that add the public-API rate limits and the private-API
spoofing semantics.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.netsim.client import ClientEndpoint
from repro.obs import NULL_OBS, Observability
from repro.platform.actions import ActionLog
from repro.platform.auth import AuthService, Session
from repro.platform.clock import SimClock
from repro.platform.countermeasures import (
    ActionContext,
    CountermeasureDecision,
    CountermeasureEngine,
)
from repro.platform.errors import (
    ActionBlockedError,
    InvalidActionError,
    UnknownAccountError,
)
from repro.platform.graph import FollowerGraph, SetFollowerGraph
from repro.platform.mediastore import MediaStore
from repro.platform.models import (
    Account,
    AccountId,
    ActionRecord,
    ActionStatus,
    ActionType,
    ApiSurface,
    Media,
    MediaId,
    Profile,
)
from repro.platform.notifications import Notification, NotificationCenter
from repro.util.timeutils import days


class _PendingBatch:
    """Deferred log rows for one open action-batch scope.

    ``base`` is the log length at scope entry (or after the last
    intra-scope flush): pending row *i* will become action id
    ``base + i``, which is how the facade hands out final action ids —
    for notifications, e.g. — before the rows are written.
    """

    __slots__ = ("base", "rows")

    def __init__(self, base: int):
        self.base = base
        self.rows: list[tuple] = []


class InstagramPlatform:
    """The simulated social network."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        removal_delay_ticks: int = days(1),
        obs: Optional[Observability] = None,
        fast_path: bool = False,
    ):
        self.clock = clock if clock is not None else SimClock()
        #: telemetry handle; platform-adjacent layers (action log, API
        #: limiters, AAS emission counters) pick their instruments off it
        self.obs = obs if obs is not None else NULL_OBS
        #: columnar data plane (DESIGN.md §11): the SoA follower graph and
        #: column-backed action log. Off by default so bare platforms run
        #: the brute-force reference stores — the bit-equivalence oracle;
        #: ``Study`` forwards its ``StudyConfig.fast_path`` switch here.
        self.fast_path = fast_path
        self.auth = AuthService()
        self.graph = (
            FollowerGraph(obs=self.obs) if fast_path else SetFollowerGraph(obs=self.obs)
        )
        self.media = MediaStore(cache_owner_views=fast_path)
        self.log = ActionLog(obs=self.obs, columnar=fast_path)
        self.notifications = NotificationCenter()
        self.countermeasures = CountermeasureEngine(self.clock, removal_delay_ticks)
        #: whether :meth:`action_batch` scopes actually defer (DESIGN.md
        #: §15). On by default on the fast path; the equivalence suite
        #: toggles it off to prove batching changes nothing.
        self.batching = fast_path
        self._batch: Optional[_PendingBatch] = None
        self._accounts: dict[AccountId, Account] = {}
        self._by_username: dict[str, AccountId] = {}
        self._account_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Account lifecycle
    # ------------------------------------------------------------------

    def create_account(
        self, username: str, password: str, profile: Optional[Profile] = None
    ) -> Account:
        """Register a new account."""
        if username in self._by_username:
            raise ValueError(f"username {username!r} is taken")
        account = Account(
            account_id=next(self._account_ids),
            username=username,
            created_at=self.clock.now,
            profile=profile if profile is not None else Profile(),
        )
        self._accounts[account.account_id] = account
        self._by_username[username] = account.account_id
        self.auth.register(account.account_id, password)
        return account

    def get_account(self, account_id: AccountId) -> Account:
        account = self._accounts.get(account_id)
        if account is None or account.is_deleted:
            raise UnknownAccountError(f"account {account_id} not found")
        return account

    def account_exists(self, account_id: AccountId) -> bool:
        account = self._accounts.get(account_id)
        return account is not None and not account.is_deleted

    def resolve_username(self, username: str) -> AccountId:
        account_id = self._by_username.get(username)
        if account_id is None or not self.account_exists(account_id):
            raise UnknownAccountError(f"username {username!r} not found")
        return account_id

    def all_account_ids(self, include_deleted: bool = False) -> list[AccountId]:
        if include_deleted:
            return sorted(self._accounts)
        return sorted(a for a, acc in self._accounts.items() if not acc.is_deleted)

    def delete_account(self, account_id: AccountId) -> None:
        """Delete an account and scrub its platform footprint.

        "When deleting a honeypot account, all actions to or from the
        account are eventually removed from Instagram" (Section 4.1.1):
        follow edges in both directions, the account's likes, and its
        media all go away. The action *log* is retained — it is the
        measurement dataset, not user-visible platform state.
        """
        account = self.get_account(account_id)
        self.graph.drop_account(account_id)
        self.media.drop_likes_by(account_id)
        self.media.remove_account_media(account_id)
        self.notifications.clear_account(account_id)
        self.auth.drop(account_id)
        account.is_deleted = True
        account.deleted_at = self.clock.now

    def login(self, username: str, password: str, endpoint: ClientEndpoint) -> Session:
        account_id = self.resolve_username(username)
        return self.auth.login(account_id, password, endpoint, self.clock.now)

    def reset_password(self, account_id: AccountId, new_password: str) -> None:
        self.get_account(account_id)
        self.auth.reset_password(account_id, new_password)

    # ------------------------------------------------------------------
    # Action batching (DESIGN.md §15)
    # ------------------------------------------------------------------

    @contextmanager
    def action_batch(self) -> Iterator[None]:
        """Open one actor-tick's batch scope.

        Inside the scope, delivered like/follow actions apply their
        platform mutations (graph edges, media likes, notifications)
        immediately — later actions in the same scope depend on them —
        but their log rows accumulate and land in one
        :meth:`ActionLog.append_batch` at scope exit, in exact submission
        order with the same action ids the per-action path would have
        assigned.

        The scope only defers when it can do so invisibly: batching must
        be enabled, the log columnar, and no countermeasure policy
        installed (policies need per-action contexts, BLOCK rows, and
        removal scheduling — the scalar path). Otherwise, and when
        nested inside an open scope, this is a no-op context. Policies
        are only ever (un)installed between agent runs, so the entry
        check cannot go stale mid-scope.
        """
        if (
            self._batch is not None
            or not self.batching
            or self.countermeasures.has_policies
            or not self.log.columnar
        ):
            yield
            return
        batch = self._batch = _PendingBatch(self.log.next_id())
        try:
            yield
        finally:
            self._batch = None
            if batch.rows:
                self.log.append_batch(batch.rows)

    def _flush_batch(self) -> None:
        """Write pending rows out mid-scope, preserving log order.

        Called by the action paths that do not defer (unfollow, comment,
        post, and any path needing a materialized record): their scalar
        append must not overtake rows already submitted in this scope.
        """
        batch = self._batch
        if batch is not None and batch.rows:
            self.log.append_batch(batch.rows)
            batch.rows = []
            batch.base = self.log.next_id()

    # ------------------------------------------------------------------
    # Social actions
    # ------------------------------------------------------------------

    def _authorize(self, session: Session) -> AccountId:
        actor = self.auth.validate(session)
        self.get_account(actor)  # deleted accounts cannot act
        return actor

    def _log_action(
        self,
        action_type: ActionType,
        actor: AccountId,
        endpoint: ClientEndpoint,
        api: ApiSurface,
        status: ActionStatus,
        target_account: Optional[AccountId] = None,
        target_media: Optional[MediaId] = None,
        comment_text: Optional[str] = None,
    ) -> ActionRecord:
        return self.log.log_action(
            action_type,
            actor,
            self.clock.now,
            endpoint,
            api,
            status,
            target_account=target_account,
            target_media=target_media,
            comment_text=comment_text,
        )

    def _consult_countermeasures(
        self,
        action_type: ActionType,
        actor: AccountId,
        endpoint: ClientEndpoint,
        api: ApiSurface,
        target_account: Optional[AccountId],
        target_media: Optional[MediaId],
    ) -> CountermeasureDecision:
        if self.fast_path and not self.countermeasures.has_policies:
            # with no policy installed every decision is vacuously ALLOW
            # (and decide() is side-effect free), so the fast path skips
            # building the frozen per-action context; the naive path
            # keeps exercising the full decision machinery as the oracle
            return CountermeasureDecision.ALLOW
        context = ActionContext(
            actor=actor,
            action_type=action_type,
            endpoint=endpoint,
            tick=self.clock.now,
            target_account=target_account,
            target_media=target_media,
        )
        decision = self.countermeasures.decide(context)
        if decision is CountermeasureDecision.BLOCK:
            self.countermeasures.note_block()
            self._log_action(
                action_type,
                actor,
                endpoint,
                api,
                ActionStatus.BLOCKED,
                target_account=target_account,
                target_media=target_media,
            )
            raise ActionBlockedError(f"{action_type.value} by {actor} blocked")
        return decision

    def _notify(self, record: ActionRecord, recipient: AccountId) -> None:
        self.notifications.push(
            Notification(
                recipient=recipient,
                actor=record.actor,
                action_type=record.action_type,
                tick=record.tick,
                media_id=record.target_media,
                action_id=record.action_id,
            )
        )

    def like(
        self,
        session: Session,
        media_id: MediaId,
        endpoint: ClientEndpoint,
        api: ApiSurface = ApiSurface.PRIVATE_MOBILE,
    ) -> ActionRecord:
        """Like a media item; notifies the owner."""
        batch = self._batch
        if batch is not None:
            # batched fast path: same checks and mutations in the same
            # order (validate, account/media lookups, dup-like reject,
            # vacuous ALLOW, like, notify) with the log row deferred
            actor = self.auth.validate(session)
            account = self._accounts.get(actor)
            if account is None or account.is_deleted:
                raise UnknownAccountError(f"account {actor} not found")
            media = self.media.like_new(media_id, actor)
            owner = media.owner
            rows = batch.rows
            action_id = batch.base + len(rows)
            tick = self.clock.now
            rows.append(
                (
                    ActionType.LIKE,
                    actor,
                    tick,
                    endpoint,
                    api,
                    ActionStatus.DELIVERED,
                    owner,
                    media_id,
                    None,
                )
            )
            if owner != actor:
                self.notifications.push(
                    Notification(
                        recipient=owner,
                        actor=actor,
                        action_type=ActionType.LIKE,
                        tick=tick,
                        media_id=media_id,
                        action_id=action_id,
                    )
                )
            return None
        actor = self._authorize(session)
        media = self.media.get(media_id)
        if self.media.has_liked(media_id, actor):
            raise InvalidActionError(f"{actor} already likes media {media_id}")
        decision = self._consult_countermeasures(
            ActionType.LIKE, actor, endpoint, api, media.owner, media_id
        )
        self.media.like(media_id, actor)
        record = self._log_action(
            ActionType.LIKE,
            actor,
            endpoint,
            api,
            ActionStatus.DELIVERED,
            target_account=media.owner,
            target_media=media_id,
        )
        if decision is CountermeasureDecision.DELAY_REMOVE:
            self.countermeasures.schedule_removal(record, self._undo_like)
        if media.owner != actor:
            self._notify(record, media.owner)
        return record

    def follow(
        self,
        session: Session,
        target: AccountId,
        endpoint: ClientEndpoint,
        api: ApiSurface = ApiSurface.PRIVATE_MOBILE,
    ) -> ActionRecord:
        """Follow another account; notifies the target."""
        batch = self._batch
        if batch is not None:
            actor = self.auth.validate(session)
            accounts = self._accounts
            account = accounts.get(actor)
            if account is None or account.is_deleted:
                raise UnknownAccountError(f"account {actor} not found")
            target_account = accounts.get(target)
            if target_account is None or target_account.is_deleted:
                raise UnknownAccountError(f"account {target} not found")
            if self.graph.is_following(actor, target):
                raise InvalidActionError(f"{actor} already follows {target}")
            self.graph.follow(actor, target)
            rows = batch.rows
            action_id = batch.base + len(rows)
            tick = self.clock.now
            rows.append(
                (
                    ActionType.FOLLOW,
                    actor,
                    tick,
                    endpoint,
                    api,
                    ActionStatus.DELIVERED,
                    target,
                    None,
                    None,
                )
            )
            self.notifications.push(
                Notification(
                    recipient=target,
                    actor=actor,
                    action_type=ActionType.FOLLOW,
                    tick=tick,
                    media_id=None,
                    action_id=action_id,
                )
            )
            return None
        actor = self._authorize(session)
        self.get_account(target)
        if self.graph.is_following(actor, target):
            raise InvalidActionError(f"{actor} already follows {target}")
        decision = self._consult_countermeasures(
            ActionType.FOLLOW, actor, endpoint, api, target, None
        )
        self.graph.follow(actor, target)
        record = self._log_action(
            ActionType.FOLLOW,
            actor,
            endpoint,
            api,
            ActionStatus.DELIVERED,
            target_account=target,
        )
        if decision is CountermeasureDecision.DELAY_REMOVE:
            self.countermeasures.schedule_removal(record, self._undo_follow)
        self._notify(record, target)
        return record

    def unfollow(
        self,
        session: Session,
        target: AccountId,
        endpoint: ClientEndpoint,
        api: ApiSurface = ApiSurface.PRIVATE_MOBILE,
    ) -> ActionRecord:
        """Withdraw a follow. No notification (Instagram is silent here)."""
        if self._batch is not None:
            self._flush_batch()  # scalar append must not overtake the scope
        actor = self._authorize(session)
        if not self.graph.is_following(actor, target):
            raise InvalidActionError(f"{actor} does not follow {target}")
        self._consult_countermeasures(ActionType.UNFOLLOW, actor, endpoint, api, target, None)
        self.graph.unfollow(actor, target)
        return self._log_action(
            ActionType.UNFOLLOW,
            actor,
            endpoint,
            api,
            ActionStatus.DELIVERED,
            target_account=target,
        )

    def comment(
        self,
        session: Session,
        media_id: MediaId,
        text: str,
        endpoint: ClientEndpoint,
        api: ApiSurface = ApiSurface.PRIVATE_MOBILE,
    ) -> ActionRecord:
        """Comment on a media item; notifies the owner."""
        if self._batch is not None:
            self._flush_batch()  # scalar append must not overtake the scope
        actor = self._authorize(session)
        media = self.media.get(media_id)
        if not text:
            raise InvalidActionError("comment text must be non-empty")
        self._consult_countermeasures(
            ActionType.COMMENT, actor, endpoint, api, media.owner, media_id
        )
        self.media.comment(media_id, actor, text)
        record = self._log_action(
            ActionType.COMMENT,
            actor,
            endpoint,
            api,
            ActionStatus.DELIVERED,
            target_account=media.owner,
            target_media=media_id,
            comment_text=text,
        )
        if media.owner != actor:
            self._notify(record, media.owner)
        return record

    def post(
        self,
        session: Session,
        endpoint: ClientEndpoint,
        caption: str = "",
        hashtags: tuple[str, ...] = (),
        api: ApiSurface = ApiSurface.PRIVATE_MOBILE,
    ) -> tuple[ActionRecord, Media]:
        """Publish a new media item."""
        if self._batch is not None:
            self._flush_batch()  # scalar append must not overtake the scope
        actor = self._authorize(session)
        self._consult_countermeasures(ActionType.POST, actor, endpoint, api, None, None)
        media = self.media.create(actor, self.clock.now, caption=caption, hashtags=hashtags)
        record = self._log_action(
            ActionType.POST,
            actor,
            endpoint,
            api,
            ActionStatus.DELIVERED,
            target_media=media.media_id,
        )
        return record, media

    # ------------------------------------------------------------------
    # Delayed-removal undo hooks
    # ------------------------------------------------------------------

    def _undo_follow(self, record: ActionRecord) -> bool:
        if record.target_account is None:
            return False
        if not self.account_exists(record.actor) or not self.account_exists(record.target_account):
            return False
        if not self.graph.is_following(record.actor, record.target_account):
            return False
        self.graph.unfollow(record.actor, record.target_account)
        return True

    def _undo_like(self, record: ActionRecord) -> bool:
        if record.target_media is None:
            return False
        try:
            self.media.get(record.target_media)
        except Exception:
            return False
        if not self.media.has_liked(record.target_media, record.actor):
            return False
        self.media.unlike(record.target_media, record.actor)
        return True

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------

    def follower_count(self, account_id: AccountId) -> int:
        return self.graph.in_degree(account_id)

    def following_count(self, account_id: AccountId) -> int:
        return self.graph.out_degree(account_id)

    def engagement_rate(self, account_id: AccountId) -> Optional[float]:
        """ER = (likes + comments) / followers (Section 2)."""
        return self.media.engagement_rate(account_id, self.follower_count(account_id))
