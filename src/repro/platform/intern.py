"""Dense value interning for the columnar hot paths.

The columnar stores (:mod:`repro.platform.graph`,
:mod:`repro.platform.actions`) keep their hot columns as flat
``array``-backed integer vectors. Anything that is not naturally a small
int — client endpoints, fingerprint variants, signature keys — goes
through an :class:`Interner`, which assigns ids densely in first-seen
order. First-seen order is a pure function of the simulation event
sequence, so interned ids are as deterministic as the records they
encode and snapshot/restore cycles (``repro.fleet``) preserve them: the
id table is plain dict state and pickles in insertion order.

``AccountId`` itself needs no table: the platform mints account ids from
a dense counter starting at 1 (``InstagramPlatform._account_ids``), so
account-keyed columns index lists directly (see
``FollowerGraph``'s row storage) — the degenerate, zero-cost interner.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, Optional, TypeVar

from repro.obs import NULL_OBS, Observability

T = TypeVar("T", bound=Hashable)


class Interner(Generic[T]):
    """Bidirectional value <-> dense-int mapping, first-seen order.

    ``intern()`` is the hot call: a single dict probe when the value is
    already known (the overwhelmingly common case — endpoints and
    variants repeat across millions of records). The reverse table is a
    list, so decoding an id back to its value is one index.
    """

    __slots__ = ("_ids", "_values", "_id_memo", "_obs_hits", "_obs_misses")

    def __init__(self, obs: Optional[Observability] = None, name: str = "interner"):
        _obs = obs if obs is not None else NULL_OBS
        self._ids: dict[T, int] = {}
        self._values: list[T] = []
        #: identity-keyed overlay: ``id(value) -> (value, id)``. Interned
        #: values are frozen dataclasses whose generated ``__hash__``
        #: re-hashes every field on each probe; the overlay resolves a
        #: repeat sighting of the *same object* with one int-keyed get.
        #: Entries hold a strong reference, so a memoized ``id()`` can
        #: never be recycled by another object. Process-local by nature —
        #: dropped from pickles and rebuilt lazily after restore.
        self._id_memo: dict[int, tuple[T, int]] = {}
        self._obs_hits = _obs.counter("platform.intern.lookups", table=name, path="hit")
        self._obs_misses = _obs.counter("platform.intern.lookups", table=name, path="miss")

    def intern(self, value: T) -> int:
        """The dense id for ``value``, allocating on first sight."""
        entry = self._id_memo.get(id(value))
        if entry is not None and entry[0] is value:
            self._obs_hits.inc()
            return entry[1]
        ident = self._ids.get(value)
        if ident is not None:
            self._obs_hits.inc()
        else:
            ident = len(self._values)
            self._ids[value] = ident
            self._values.append(value)
            self._obs_misses.inc()
        self._id_memo[id(value)] = (value, ident)
        return ident

    def note_memoized_hits(self, count: int) -> None:
        """Count ``count`` probes a caller short-circuited by identity memo.

        The batch append path (:meth:`ActionColumns.push_batch`) skips
        ``intern()`` when consecutive rows carry the *same* endpoint
        object. A value eligible for that memo was necessarily interned
        already, so each skipped probe would have been a hit — charging
        them here keeps the hit/miss series byte-identical to the
        per-call path (the batch-toggle equivalence relies on it).
        """
        if count:
            self._obs_hits.inc(count)

    def __getstate__(self) -> dict:
        # the identity overlay is keyed by process-local id() values;
        # drop it and let the restored interner rebuild it lazily
        return {
            "_ids": self._ids,
            "_values": self._values,
            "_obs_hits": self._obs_hits,
            "_obs_misses": self._obs_misses,
        }

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._id_memo = {}

    def lookup(self, value: T) -> Optional[int]:
        """The id for ``value`` if already interned, else ``None``."""
        return self._ids.get(value)

    def value(self, ident: int) -> T:
        """Decode an id back to its value."""
        return self._values[ident]

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[T]:
        """Values in id order (deterministic: first-seen order)."""
        return iter(self._values)
