"""The Instagram-like platform simulator.

This package is the stand-in for the live Instagram service that the
paper measured from the inside. It provides:

* account lifecycle (creation, login, password reset, deletion — and
  deletion removes the account's actions, as the paper's honeypot
  cleanup relies on),
* the follower graph and media store,
* the five social actions the AASs traffic in: ``like``, ``follow``,
  ``comment``, ``post``, ``unfollow``,
* an append-only, signal-annotated action log (the event stream every
  downstream measurement consumes),
* two API surfaces: the public OAuth API (rate limited so it "precludes
  broad abusive use") and the private mobile API that AASs spoof,
* a notification system that drives organic reciprocity, and
* a countermeasure engine supporting synchronous blocks and delayed
  removal (Section 6.1).
"""

from repro.platform.clock import SimClock
from repro.platform.errors import (
    ActionBlockedError,
    AuthenticationError,
    PlatformError,
    RateLimitExceededError,
    UnknownAccountError,
    UnknownMediaError,
)
from repro.platform.models import (
    Account,
    AccountId,
    ActionRecord,
    ActionStatus,
    ActionType,
    Media,
    MediaId,
)
from repro.platform.graph import FollowerGraph
from repro.platform.actions import ActionLog
from repro.platform.notifications import Notification, NotificationCenter
from repro.platform.ratelimit import SlidingWindowLimiter
from repro.platform.auth import AuthService, Session
from repro.platform.countermeasures import (
    CountermeasureDecision,
    CountermeasureEngine,
    CountermeasurePolicy,
)
from repro.platform.instagram import InstagramPlatform
from repro.platform.api import PrivateMobileAPI, PublicGraphAPI

__all__ = [
    "SimClock",
    "PlatformError",
    "AuthenticationError",
    "RateLimitExceededError",
    "ActionBlockedError",
    "UnknownAccountError",
    "UnknownMediaError",
    "Account",
    "AccountId",
    "ActionRecord",
    "ActionStatus",
    "ActionType",
    "Media",
    "MediaId",
    "FollowerGraph",
    "ActionLog",
    "Notification",
    "NotificationCenter",
    "SlidingWindowLimiter",
    "AuthService",
    "Session",
    "CountermeasureDecision",
    "CountermeasureEngine",
    "CountermeasurePolicy",
    "InstagramPlatform",
    "PublicGraphAPI",
    "PrivateMobileAPI",
]
