"""The follower graph.

A directed graph over accounts: an edge A -> B means "A follows B".
Out-degree is "number followed" (Figure 3's metric); in-degree is
"number of followers" (Figure 4's metric).

Two implementations share one API (equivalence is property-tested in
``tests/test_platform_graph_columnar.py``):

* :class:`FollowerGraph` — the columnar store the fast path runs on.
  The two sides are stored asymmetrically, matching how the simulation
  reads them:

  - **Out-rows** are insertion-ordered dicts used as sets (``dst ->
    None``), indexed directly by account id in a dense list (account ids
    are minted from a counter starting at 1, so the id *is* the row
    index — no interner table needed). ``is_following`` — the hottest
    graph call — is one list index and one dict probe, and the world
    wirer's ``bulk_follow_new`` builds a whole row with a single
    ``dict.fromkeys`` call instead of one set insert per edge.
  - **In-rows** are never membership-probed, only counted and iterated,
    so the follower side keeps no per-account containers at all for
    bulk-wired edges: the raw (src, dst) pairs accumulate in flat
    ``array('q')`` columns and are lexsorted into a CSR index (offsets +
    sorted sources) on first read. Post-build ``follow``/``unfollow``
    mutations land in small per-account overlay sets merged at read
    time, so the CSR never has to be rebuilt for them.

  Sorted ``array('q')`` snapshots backing the non-copying view accessors
  are cached per account in side tables and dropped on mutation.
* :class:`SetFollowerGraph` — the brute-force ``defaultdict(set)``
  reference, the bit-equivalence oracle the naive execution mode uses.

Both expose, beyond the original mutation/degree API:

* ``following_view`` / ``followers_view`` — **sorted** integer
  sequences. The columnar graph returns its cached ``array('q')``
  without copying; the reference graph sorts a copy per call. Callers
  must not mutate the result and must not hold it across graph
  mutations. Sorted order (not hash order) is the contract: RNG-indexed
  picks over a view are then reproducible across snapshot/restore
  cycles, which do not preserve set iteration order.
* ``bulk_follow_new`` — the population wirer's edge loop pushed down
  into the store: add edges from one source over a candidate stream,
  skipping self-picks and duplicates, up to a limit. Same skip
  semantics as calling ``follow`` per edge (and that is literally what
  the reference implementation does).
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from typing import Iterable, Sequence

import numpy as np

from repro.obs import NULL_OBS, Observability
from repro.platform.errors import InvalidActionError
from repro.platform.models import AccountId

#: typecode of adjacency arrays: signed 64-bit, matching AccountId's range
_ID_TYPECODE = "q"

_EMPTY_VIEW: Sequence[AccountId] = array(_ID_TYPECODE)


class FollowerGraph:
    """Directed follow edges on columnar, dense-indexed adjacency rows.

    Edge mutations count into ``platform.graph.edge_ops{op=...}`` — the
    "graph" work units the cost profiler (:mod:`repro.obs.prof`)
    attributes to phase spans. CSR rebuilds are deliberately *not*
    counted: the lazy index re-derives after every snapshot restore, so
    its rebuild count depends on how many envelope boundaries a study
    crossed (a scheduling artifact), which would break the
    reuse-vs-rebuild trace equivalence. Write-only telemetry: obs-off
    runs are bit-identical.
    """

    def __init__(self, obs: Observability | None = None):
        _obs = obs if obs is not None else NULL_OBS
        self._obs_follows = _obs.counter("platform.graph.edge_ops", op="follow")
        self._obs_unfollows = _obs.counter("platform.graph.edge_ops", op="unfollow")
        self._obs_bulk = _obs.counter("platform.graph.edge_ops", op="bulk")
        #: out-rows indexed directly by account id (dense: ids are
        #: counter-minted); each row is an insertion-ordered dict used as
        #: a set of followed accounts
        self._out: list[dict[AccountId, None] | None] = []
        #: cached sorted array('q') snapshots of rows, dropped on
        #: mutation; only accounts whose views were read carry an entry
        self._out_views: dict[AccountId, array] = {}
        self._in_views: dict[AccountId, array] = {}
        self._edge_count = 0
        #: append-only raw edge columns from ``bulk_follow_new`` — the
        #: follower side's storage of record for bulk-wired edges
        self._bulk_src = array(_ID_TYPECODE)
        self._bulk_dst = array(_ID_TYPECODE)
        #: CSR over the raw columns, rebuilt lazily when they have grown
        #: (see :meth:`_refresh_csr`): ``_csr_srcs`` is the source column
        #: lexsorted by (dst, src); ``_csr_indptr[dst] ..
        #: _csr_indptr[dst + 1]`` bounds dst's slice
        self._csr_indptr: np.ndarray | None = None
        self._csr_srcs: np.ndarray | None = None
        self._csr_edges = -1  # raw-edge count the CSR covers; -1 = never built
        #: follower-side overlays for ``follow``/``unfollow`` after (or
        #: independent of) bulk wiring: per-account sources added on top
        #: of the CSR, and CSR sources tombstoned by unfollow. Invariants
        #: kept by the mutators: extra is disjoint from the CSR slice,
        #: removed is a subset of it.
        self._in_extra: dict[AccountId, set[AccountId]] = {}
        self._in_removed: dict[AccountId, set[AccountId]] = {}

    # -- out-side plumbing ---------------------------------------------

    def _out_row(self, account: AccountId) -> dict[AccountId, None]:
        out = self._out
        if account >= len(out):
            out.extend([None] * (account + 1 - len(out)))
        row = out[account]
        if row is None:
            row = out[account] = {}
        return row

    # -- in-side plumbing ----------------------------------------------

    def _refresh_csr(self) -> None:
        """Re-derive the follower-side CSR if the raw columns have grown.

        One lexsort over the whole edge list; in production the raw
        columns stop growing once world wiring ends, so this runs once.
        Cached follower views may predate the new edges, so they are all
        dropped here.
        """
        dsts = self._bulk_dst
        if self._csr_edges == len(dsts):
            return
        self._in_views.clear()
        if not dsts:
            self._csr_indptr = np.zeros(1, dtype=np.int64)
            self._csr_srcs = np.empty(0, dtype=np.int64)
            self._csr_edges = 0
            return
        dst_arr = np.frombuffer(dsts, dtype=np.int64)
        src_arr = np.frombuffer(self._bulk_src, dtype=np.int64)
        order = np.lexsort((src_arr, dst_arr))
        self._csr_srcs = src_arr[order]
        counts = np.bincount(dst_arr, minlength=int(dst_arr.max()) + 1)
        indptr = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._csr_indptr = indptr
        self._csr_edges = len(dsts)

    def _csr_slice(self, account: AccountId) -> np.ndarray:
        """``account``'s bulk-wired followers (sorted source ids)."""
        indptr = self._csr_indptr
        if account + 1 >= len(indptr):
            return self._csr_srcs[:0]
        return self._csr_srcs[indptr[account] : indptr[account + 1]]

    def _in_row_ids(self, account: AccountId) -> list[AccountId]:
        """``account``'s followers as a sorted id list (CSR + overlays)."""
        base = self._csr_slice(account)
        extra = self._in_extra.get(account)
        removed = self._in_removed.get(account)
        if not extra and not removed:
            return base.tolist()
        ids = set(base.tolist())
        if removed:
            ids -= removed
        if extra:
            ids |= extra
        return sorted(ids)

    # -- mutation ------------------------------------------------------

    def follow(self, src: AccountId, dst: AccountId) -> None:
        """Add edge src -> dst. Self-follows and duplicates are invalid."""
        if src == dst:
            raise InvalidActionError("accounts cannot follow themselves")
        out = self._out_row(src)
        if dst in out:
            raise InvalidActionError(f"{src} already follows {dst}")
        out[dst] = None
        removed = self._in_removed.get(dst)
        if removed is not None and src in removed:
            removed.remove(src)  # re-follow of a tombstoned CSR edge
        else:
            extra = self._in_extra.get(dst)
            if extra is None:
                extra = self._in_extra[dst] = set()
            extra.add(src)
        self._out_views.pop(src, None)
        self._in_views.pop(dst, None)
        self._edge_count += 1
        self._obs_follows.inc()

    def unfollow(self, src: AccountId, dst: AccountId) -> None:
        """Remove edge src -> dst; removing a missing edge is invalid."""
        out = self._out[src] if src < len(self._out) else None
        if out is None or dst not in out:
            raise InvalidActionError(f"{src} does not follow {dst}")
        del out[dst]
        extra = self._in_extra.get(dst)
        if extra is not None and src in extra:
            extra.remove(src)
        else:
            # the edge lives in the raw bulk columns: tombstone it
            self._in_removed.setdefault(dst, set()).add(src)
        self._out_views.pop(src, None)
        self._in_views.pop(dst, None)
        self._edge_count -= 1
        self._obs_unfollows.inc()

    def bulk_follow_new(
        self, src: AccountId, candidates: Iterable[AccountId], limit: int
    ) -> int:
        """Add up to ``limit`` edges src -> candidate, skipping self-picks
        and already-present edges; returns how many were added.

        Candidate order is respected, so the result is identical to
        calling :meth:`follow` per surviving candidate — the world-build
        hot loop without per-edge call overhead: one ``dict.fromkeys``
        builds (or extends) the out-row, and the follower side is two
        flat array extends.
        """
        if limit <= 0:
            return 0
        # first-occurrence-ordered dedup at C speed, then the same
        # self-pick/existing-edge skips and limit cut as the per-edge loop
        fresh = dict.fromkeys(candidates)
        fresh.pop(src, None)
        row = self._out[src] if src < len(self._out) else None
        if row:
            new = [dst for dst in fresh if dst not in row]
            del new[limit:]
            if not new:
                return 0
            row.update(dict.fromkeys(new))
        else:
            if len(fresh) > limit:
                for dst in list(fresh)[limit:]:
                    del fresh[dst]
            if not fresh:
                return 0
            new = list(fresh)
            if src >= len(self._out):
                self._out.extend([None] * (src + 1 - len(self._out)))
            self._out[src] = fresh
        self._out_views.pop(src, None)
        # follower-side update is two array extends; the CSR index over
        # them refreshes on the next follower-side read. A pair already
        # in the raw columns but tombstoned by an earlier unfollow is
        # resurrected by clearing its tombstone instead — appending it
        # again would leave a duplicate raw pair that the tombstone
        # cancels, losing the live edge from follower reads.
        if self._in_removed:
            appended = []
            for dst in new:
                tombstones = self._in_removed.get(dst)
                if tombstones is not None and src in tombstones:
                    tombstones.remove(src)
                    self._in_views.pop(dst, None)
                else:
                    appended.append(dst)
        else:
            appended = new
        self._bulk_dst.extend(appended)
        self._bulk_src.extend([src] * len(appended))
        self._edge_count += len(new)
        self._obs_bulk.inc(len(new))
        return len(new)

    # -- queries -------------------------------------------------------

    def is_following(self, src: AccountId, dst: AccountId) -> bool:
        try:
            row = self._out[src]
        except IndexError:
            return False
        return row is not None and dst in row

    def out_rows(self) -> list:
        """Read-only peek at the raw out-edge rows, indexed by account id.

        ``out_rows()[src]`` is the dict whose keys ``src`` follows (or
        ``None``/out-of-range for accounts with no out-edges), so
        ``dst in row`` answers :meth:`is_following` without the method
        call — the AAS follow-scan probes this ~10^6 times per run. The
        list is the live storage (mutated in place, identity stable
        across follows); callers must never write through it.
        """
        return self._out

    def following(self, account: AccountId) -> frozenset[AccountId]:
        """Accounts that ``account`` follows (an immutable snapshot)."""
        row = self._out[account] if account < len(self._out) else None
        return frozenset(row) if row is not None else frozenset()

    def followers(self, account: AccountId) -> frozenset[AccountId]:
        """Accounts following ``account`` (an immutable snapshot)."""
        self._refresh_csr()
        return frozenset(self._in_row_ids(account))

    def following_view(self, account: AccountId) -> Sequence[AccountId]:
        """Sorted, non-copying view of who ``account`` follows.

        Valid only until the next graph mutation; do not mutate.
        """
        view = self._out_views.get(account)
        if view is None:
            row = self._out[account] if account < len(self._out) else None
            if not row:
                return _EMPTY_VIEW
            view = self._out_views[account] = array(_ID_TYPECODE, sorted(row))
        return view

    def followers_view(self, account: AccountId) -> Sequence[AccountId]:
        """Sorted, non-copying view of ``account``'s followers."""
        self._refresh_csr()
        view = self._in_views.get(account)
        if view is None:
            ids = self._in_row_ids(account)
            if not ids:
                return _EMPTY_VIEW
            view = self._in_views[account] = array(_ID_TYPECODE, ids)
        return view

    def out_degree(self, account: AccountId) -> int:
        row = self._out[account] if account < len(self._out) else None
        return len(row) if row is not None else 0

    def in_degree(self, account: AccountId) -> int:
        self._refresh_csr()
        indptr = self._csr_indptr
        if account + 1 < len(indptr):
            count = int(indptr[account + 1] - indptr[account])
        else:
            count = 0
        extra = self._in_extra.get(account)
        if extra:
            count += len(extra)
        removed = self._in_removed.get(account)
        if removed:
            count -= len(removed)
        return count

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def drop_account(self, account: AccountId) -> int:
        """Remove every edge incident to ``account``; returns edges dropped.

        Used by account deletion: "when deleting a honeypot account, all
        actions to or from the account are eventually removed".
        """
        removed = 0
        for dst in list(self.following_view(account)):
            self.unfollow(account, dst)
            removed += 1
        for src in list(self.followers_view(account)):
            self.unfollow(src, account)
            removed += 1
        return removed

    def __getstate__(self) -> dict:
        # view caches and the CSR are derived state; rebuilding them on
        # demand after a restore keeps the pickle small and consistent
        state = dict(self.__dict__)
        state["_out_views"] = {}
        state["_in_views"] = {}
        state["_csr_indptr"] = None
        state["_csr_srcs"] = None
        state["_csr_edges"] = -1
        return state

    def __setstate__(self, state: dict) -> None:
        # the explicit twin of __getstate__ (SNAP003): restore the raw
        # columns as-is; views and the CSR rebuild lazily on first read.
        # Graphs pickled before the edge-op counters existed resurface
        # un-instrumented rather than failing to unpickle.
        self.__dict__.update(state)
        if "_obs_follows" not in state:
            self._obs_follows = NULL_OBS.counter("platform.graph.edge_ops", op="follow")
            self._obs_unfollows = NULL_OBS.counter("platform.graph.edge_ops", op="unfollow")
            self._obs_bulk = NULL_OBS.counter("platform.graph.edge_ops", op="bulk")


class SetFollowerGraph:
    """The brute-force reference graph (the naive path's oracle).

    Counts the same ``platform.graph.edge_ops`` work units as the
    columnar graph — its bulk wiring is literally ``follow`` per edge,
    so its bulk op count lands under ``op=follow`` (honest per-edge
    work), not ``op=bulk``.
    """

    def __init__(self, obs: Observability | None = None):
        _obs = obs if obs is not None else NULL_OBS
        self._obs_follows = _obs.counter("platform.graph.edge_ops", op="follow")
        self._obs_unfollows = _obs.counter("platform.graph.edge_ops", op="unfollow")
        self._following: dict[AccountId, set[AccountId]] = defaultdict(set)
        self._followers: dict[AccountId, set[AccountId]] = defaultdict(set)
        self._edge_count = 0

    def follow(self, src: AccountId, dst: AccountId) -> None:
        """Add edge src -> dst. Self-follows and duplicates are invalid."""
        if src == dst:
            raise InvalidActionError("accounts cannot follow themselves")
        if dst in self._following[src]:
            raise InvalidActionError(f"{src} already follows {dst}")
        self._following[src].add(dst)
        self._followers[dst].add(src)
        self._edge_count += 1
        self._obs_follows.inc()

    def unfollow(self, src: AccountId, dst: AccountId) -> None:
        """Remove edge src -> dst; removing a missing edge is invalid."""
        if dst not in self._following[src]:
            raise InvalidActionError(f"{src} does not follow {dst}")
        self._following[src].remove(dst)
        self._followers[dst].remove(src)
        self._edge_count -= 1
        self._obs_unfollows.inc()

    def bulk_follow_new(
        self, src: AccountId, candidates: Iterable[AccountId], limit: int
    ) -> int:
        """Reference bulk wiring: literally ``follow`` per new candidate."""
        added = 0
        for dst in candidates:
            if added >= limit:
                break
            if dst == src or self.is_following(src, dst):
                continue
            self.follow(src, dst)
            added += 1
        return added

    def is_following(self, src: AccountId, dst: AccountId) -> bool:
        return dst in self._following[src]

    def following(self, account: AccountId) -> frozenset[AccountId]:
        """Accounts that ``account`` follows."""
        return frozenset(self._following[account])

    def followers(self, account: AccountId) -> frozenset[AccountId]:
        """Accounts following ``account``."""
        return frozenset(self._followers[account])

    def following_view(self, account: AccountId) -> Sequence[AccountId]:
        """Sorted snapshot of who ``account`` follows (copying: oracle)."""
        return tuple(sorted(self._following[account]))

    def followers_view(self, account: AccountId) -> Sequence[AccountId]:
        """Sorted snapshot of ``account``'s followers (copying: oracle)."""
        return tuple(sorted(self._followers[account]))

    def out_degree(self, account: AccountId) -> int:
        return len(self._following[account])

    def in_degree(self, account: AccountId) -> int:
        return len(self._followers[account])

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def drop_account(self, account: AccountId) -> int:
        """Remove every edge incident to ``account``; returns edges dropped.

        Used by account deletion: "when deleting a honeypot account, all
        actions to or from the account are eventually removed".
        """
        removed = 0
        for dst in list(self._following[account]):
            self.unfollow(account, dst)
            removed += 1
        for src in list(self._followers[account]):
            self.unfollow(src, account)
            removed += 1
        return removed
