"""The follower graph.

A directed graph over accounts: an edge A -> B means "A follows B".
Out-degree is "number followed" (Figure 3's metric); in-degree is
"number of followers" (Figure 4's metric).
"""

from __future__ import annotations

from collections import defaultdict

from repro.platform.errors import InvalidActionError
from repro.platform.models import AccountId


class FollowerGraph:
    """Directed follow edges with O(1) degree queries."""

    def __init__(self):
        self._following: dict[AccountId, set[AccountId]] = defaultdict(set)
        self._followers: dict[AccountId, set[AccountId]] = defaultdict(set)
        self._edge_count = 0

    def follow(self, src: AccountId, dst: AccountId) -> None:
        """Add edge src -> dst. Self-follows and duplicates are invalid."""
        if src == dst:
            raise InvalidActionError("accounts cannot follow themselves")
        if dst in self._following[src]:
            raise InvalidActionError(f"{src} already follows {dst}")
        self._following[src].add(dst)
        self._followers[dst].add(src)
        self._edge_count += 1

    def unfollow(self, src: AccountId, dst: AccountId) -> None:
        """Remove edge src -> dst; removing a missing edge is invalid."""
        if dst not in self._following[src]:
            raise InvalidActionError(f"{src} does not follow {dst}")
        self._following[src].remove(dst)
        self._followers[dst].remove(src)
        self._edge_count -= 1

    def is_following(self, src: AccountId, dst: AccountId) -> bool:
        return dst in self._following[src]

    def following(self, account: AccountId) -> frozenset[AccountId]:
        """Accounts that ``account`` follows."""
        return frozenset(self._following[account])

    def followers(self, account: AccountId) -> frozenset[AccountId]:
        """Accounts following ``account``."""
        return frozenset(self._followers[account])

    def out_degree(self, account: AccountId) -> int:
        return len(self._following[account])

    def in_degree(self, account: AccountId) -> int:
        return len(self._followers[account])

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def drop_account(self, account: AccountId) -> int:
        """Remove every edge incident to ``account``; returns edges dropped.

        Used by account deletion: "when deleting a honeypot account, all
        actions to or from the account are eventually removed".
        """
        removed = 0
        for dst in list(self._following[account]):
            self.unfollow(account, dst)
            removed += 1
        for src in list(self._followers[account]):
            self.unfollow(src, account)
            removed += 1
        return removed
