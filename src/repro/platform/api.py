"""API surfaces over the platform facade.

Section 2: "Instagram provides a public OAuth-based API ... However,
this API is rate limited in a manner that precludes broad abusive use.
Thus, most commercial account automation services bypass these
limitations by reverse engineering the private API used by the Instagram
mobile client and generating spoofed requests to appear as valid mobile
client actions."

* :class:`PublicGraphAPI` — per-account sliding-window rate limits on
  write actions; requests carry a ``web-oauth`` fingerprint family.
* :class:`PrivateMobileAPI` — the mobile-client surface. It accepts
  whatever fingerprint the caller presents (spoofed or stock) and has
  only a very high sanity ceiling, so abuse prevention must happen in
  countermeasures, exactly as in the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.netsim.client import ClientEndpoint
from repro.platform.auth import Session
from repro.platform.errors import RateLimitExceededError
from repro.platform.instagram import InstagramPlatform
from repro.platform.models import AccountId, ActionRecord, ApiSurface, Media, MediaId
from repro.platform.ratelimit import SlidingWindowLimiter
from repro.util.timeutils import hours

#: Public-API budget: 60 write actions per account per hour — generous for
#: humans, useless for an AAS that needs hundreds of actions per day
#: across thousands of accounts without attribution.
PUBLIC_API_LIMIT_PER_HOUR = 60

#: Private-API sanity ceiling per account per hour. Real clients never get
#: near it; it exists so runaway automation cannot wedge the simulation.
PRIVATE_API_CEILING_PER_HOUR = 2000


class _BaseAPI:
    """Shared dispatch into the platform facade."""

    surface: ApiSurface

    def __init__(self, platform: InstagramPlatform, limiter: SlidingWindowLimiter):
        self._platform = platform
        self._limiter = limiter

    def _charge(self, session: Session) -> None:
        now = self._platform.clock.now
        if not self._limiter.allow(session.account_id, now):
            raise RateLimitExceededError(
                f"account {session.account_id} exceeded {self.surface.value} rate limit"
            )

    def like(self, session: Session, media_id: MediaId, endpoint: ClientEndpoint) -> ActionRecord:
        self._charge(session)
        return self._platform.like(session, media_id, endpoint, api=self.surface)

    def follow(self, session: Session, target: AccountId, endpoint: ClientEndpoint) -> ActionRecord:
        self._charge(session)
        return self._platform.follow(session, target, endpoint, api=self.surface)

    def unfollow(self, session: Session, target: AccountId, endpoint: ClientEndpoint) -> ActionRecord:
        self._charge(session)
        return self._platform.unfollow(session, target, endpoint, api=self.surface)

    def comment(
        self, session: Session, media_id: MediaId, text: str, endpoint: ClientEndpoint
    ) -> ActionRecord:
        self._charge(session)
        return self._platform.comment(session, media_id, text, endpoint, api=self.surface)

    def post(
        self,
        session: Session,
        endpoint: ClientEndpoint,
        caption: str = "",
        hashtags: tuple[str, ...] = (),
    ) -> tuple[ActionRecord, Media]:
        self._charge(session)
        return self._platform.post(session, endpoint, caption=caption, hashtags=hashtags, api=self.surface)

    def submit_batch(
        self, session: Session, requests: Sequence[tuple], endpoint: ClientEndpoint
    ) -> list:
        """Submit one client's burst of actions as a single request.

        ``requests`` holds ``("like", media_id)``, ``("follow", target)``,
        ``("unfollow", target)`` and ``("comment", media_id, text)``
        tuples, dispatched in order. The rate limiter is charged for the
        whole burst in one :meth:`SlidingWindowLimiter.allow_batch` call —
        the same quota bookkeeping as per-action charging — and the
        granted prefix executes inside the platform's action-batch scope,
        so the log appends land via the bulk path. If the window cannot
        cover the burst, the granted prefix still executes (exactly what
        a per-action loop would have delivered before hitting the limit)
        and :class:`RateLimitExceededError` is raised afterwards.

        Returns the per-request results (records; ``None`` per row while
        an enclosing batch scope defers materialization).
        """
        n = len(requests)
        granted = self._limiter.allow_batch(session.account_id, self._platform.clock.now, n)
        platform = self._platform
        results: list = []
        with platform.action_batch():
            for kind, *args in requests[:granted]:
                if kind == "like":
                    results.append(platform.like(session, args[0], endpoint, api=self.surface))
                elif kind == "follow":
                    results.append(platform.follow(session, args[0], endpoint, api=self.surface))
                elif kind == "unfollow":
                    results.append(platform.unfollow(session, args[0], endpoint, api=self.surface))
                elif kind == "comment":
                    results.append(
                        platform.comment(session, args[0], args[1], endpoint, api=self.surface)
                    )
                else:
                    raise ValueError(f"unknown batch request kind {kind!r}")
        if granted < n:
            raise RateLimitExceededError(
                f"account {session.account_id} exceeded {self.surface.value} rate limit "
                f"({granted}/{n} batch requests granted)"
            )
        return results


class PublicGraphAPI(_BaseAPI):
    """The OAuth API: strongly rate limited, clearly fingerprinted."""

    surface = ApiSurface.PUBLIC_OAUTH

    def __init__(self, platform: InstagramPlatform, limit_per_hour: Optional[int] = None):
        limit = limit_per_hour if limit_per_hour is not None else PUBLIC_API_LIMIT_PER_HOUR
        super().__init__(
            platform,
            SlidingWindowLimiter(limit, hours(1), obs=platform.obs, name=self.surface.value),
        )


class PrivateMobileAPI(_BaseAPI):
    """The reverse-engineered mobile surface AASs spoof requests against."""

    surface = ApiSurface.PRIVATE_MOBILE

    def __init__(self, platform: InstagramPlatform, ceiling_per_hour: Optional[int] = None):
        ceiling = ceiling_per_hour if ceiling_per_hour is not None else PRIVATE_API_CEILING_PER_HOUR
        super().__init__(
            platform,
            SlidingWindowLimiter(ceiling, hours(1), obs=platform.obs, name=self.surface.value),
        )
