"""Core platform data types: accounts, media, and action records."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.netsim.client import ClientEndpoint

AccountId = int
MediaId = int


class ActionType(enum.Enum):
    """The social actions AASs automate (paper Table 1)."""

    LIKE = "like"
    FOLLOW = "follow"
    COMMENT = "comment"
    POST = "post"
    UNFOLLOW = "unfollow"


class ActionStatus(enum.Enum):
    """Lifecycle of a logged action under countermeasures."""

    DELIVERED = "delivered"
    BLOCKED = "blocked"
    REMOVED = "removed"  # delivered, then undone by delayed removal


class ApiSurface(enum.Enum):
    """Which API surface carried the request."""

    PUBLIC_OAUTH = "public-oauth"
    PRIVATE_MOBILE = "private-mobile"


@dataclass
class Profile:
    """Public profile fields; lived-in honeypots fill all of them."""

    display_name: str = ""
    biography: str = ""
    has_profile_picture: bool = False

    @property
    def completeness(self) -> float:
        """Fraction of profile fields populated, in [0, 1]."""
        filled = sum([bool(self.display_name), bool(self.biography), self.has_profile_picture])
        return filled / 3.0


@dataclass
class Account:
    """A platform account."""

    account_id: AccountId
    username: str
    created_at: int
    profile: Profile = field(default_factory=Profile)
    is_deleted: bool = False
    deleted_at: Optional[int] = None

    def __post_init__(self):
        if not self.username:
            raise ValueError("username must be non-empty")


@dataclass
class Media:
    """A photo/video post."""

    media_id: MediaId
    owner: AccountId
    created_at: int
    caption: str = ""
    hashtags: tuple[str, ...] = ()
    is_removed: bool = False


@dataclass(slots=True)
class ActionRecord:
    """One logged social action with full attribution signals.

    This is the event-stream row every measurement in the paper consumes:
    who acted, on whom/what, when, from which network origin, over which
    API surface. ``status`` evolves if a delayed countermeasure later
    removes the action.
    """

    action_id: int
    action_type: ActionType
    actor: AccountId
    tick: int
    endpoint: ClientEndpoint
    api: ApiSurface
    status: ActionStatus
    target_account: Optional[AccountId] = None
    target_media: Optional[MediaId] = None
    removed_at: Optional[int] = None
    comment_text: Optional[str] = None

    @property
    def asn(self) -> int:
        return self.endpoint.asn

    @property
    def day(self) -> int:
        return self.tick // 24

    def mark_removed(self, tick: int) -> None:
        if self.status is not ActionStatus.DELIVERED:
            raise ValueError(f"cannot remove action in state {self.status}")
        self.status = ActionStatus.REMOVED
        self.removed_at = tick
